//! # linux-pagecache-sim
//!
//! A discrete-event simulation library for studying the effect of the **Linux
//! page cache** on the I/O performance of data-intensive applications — a
//! from-scratch Rust reproduction of *"Modeling the Linux page cache for
//! accurate simulation of data-intensive applications"* (CLUSTER 2021), whose
//! original implementation (WRENCH-cache) lives inside the WRENCH/SimGrid C++
//! stack.
//!
//! The workspace is organised in layers, re-exported here for convenience:
//!
//! * [`des`] — deterministic discrete-event engine with an async process model;
//! * [`storage_model`] — flow-level disk/memory/network models with fair
//!   bandwidth sharing;
//! * [`pagecache`] — the paper's page cache model (LRU lists of data blocks,
//!   Memory Manager, I/O Controller);
//! * [`simfs`] — cached, cacheless and NFS filesystems;
//! * [`kernel_emu`] — a page-granularity kernel emulator used as the
//!   "real system" ground truth;
//! * [`workflow`] — platforms, applications, and the scenario runner;
//! * [`experiments`] — the reproduction of every table and figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use linux_pagecache_sim::prelude::*;
//!
//! let platform = PlatformSpec::uniform(
//!     8.0 * GB,
//!     DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
//!     DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
//! );
//! let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
//! let report = run_scenario(&Scenario::new(platform, app, SimulatorKind::PageCache)).unwrap();
//! println!("simulated makespan: {:.1}s", report.mean_makespan());
//! ```

pub use des;
pub use experiments;
pub use kernel_emu;
pub use pagecache;
pub use simfs;
pub use storage_model;
pub use workflow;

/// Convenient glob import for examples and quick experiments.
pub mod prelude {
    pub use des::{SimContext, SimTime, Simulation};
    pub use pagecache::{
        FileId, IoController, IoOpStats, MemoryManager, PageCacheConfig, WriteMode,
    };
    pub use simfs::{CachedFileSystem, DirectFileSystem, FileSystem, NfsFileSystem, NfsServer};
    pub use storage_model::units::{GB, GIB, MB};
    pub use storage_model::{DeviceSpec, Disk, MemoryDevice, NetworkLink, SharedResource};
    pub use workflow::{
        run_scenario, ApplicationSpec, ClientPolicy, CrashReport, ErrorMode, FaultEvent, FaultPlan,
        FileSpec, FleetSpec, IoBackend, IoErrorSpec, NetReport, Op, OpClass, PlatformSpec,
        RetryPolicy, RunStats, Scenario, ScenarioReport, SimulatorKind, StorageKind, TaskSpec,
        TaskStatus, TenantSpec, TrafficGenReport, TrafficReport, TrafficSpec, Trigger,
        WritebackCounters,
    };
}
