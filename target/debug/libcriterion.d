/root/repo/target/debug/libcriterion.rlib: /root/repo/crates/criterion-shim/src/lib.rs
