/root/repo/target/debug/deps/integration_pagecache-b8a70d2469c752cd.d: tests/integration_pagecache.rs

/root/repo/target/debug/deps/integration_pagecache-b8a70d2469c752cd: tests/integration_pagecache.rs

tests/integration_pagecache.rs:
