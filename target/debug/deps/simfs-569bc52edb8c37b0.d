/root/repo/target/debug/deps/simfs-569bc52edb8c37b0.d: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs

/root/repo/target/debug/deps/libsimfs-569bc52edb8c37b0.rlib: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs

/root/repo/target/debug/deps/libsimfs-569bc52edb8c37b0.rmeta: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs

crates/filesystem/src/lib.rs:
crates/filesystem/src/error.rs:
crates/filesystem/src/fs.rs:
crates/filesystem/src/local.rs:
crates/filesystem/src/nfs.rs:
crates/filesystem/src/registry.rs:
