/root/repo/target/debug/deps/storage_model-734096f27797b836.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs

/root/repo/target/debug/deps/libstorage_model-734096f27797b836.rlib: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs

/root/repo/target/debug/deps/libstorage_model-734096f27797b836.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/resource.rs:
crates/storage/src/units.rs:
