/root/repo/target/debug/deps/aggregate_consistency-94710fc56940d825.d: crates/pagecache/tests/aggregate_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libaggregate_consistency-94710fc56940d825.rmeta: crates/pagecache/tests/aggregate_consistency.rs Cargo.toml

crates/pagecache/tests/aggregate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
