/root/repo/target/debug/deps/pagecache-88a055d2f4a615c0.d: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpagecache-88a055d2f4a615c0.rmeta: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs Cargo.toml

crates/pagecache/src/lib.rs:
crates/pagecache/src/block.rs:
crates/pagecache/src/config.rs:
crates/pagecache/src/controller.rs:
crates/pagecache/src/lru.rs:
crates/pagecache/src/manager.rs:
crates/pagecache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
