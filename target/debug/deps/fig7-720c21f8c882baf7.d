/root/repo/target/debug/deps/fig7-720c21f8c882baf7.d: crates/experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-720c21f8c882baf7: crates/experiments/src/bin/fig7.rs

crates/experiments/src/bin/fig7.rs:
