/root/repo/target/debug/deps/storage_model-d977202f6f0de15c.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs

/root/repo/target/debug/deps/storage_model-d977202f6f0de15c: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/resource.rs:
crates/storage/src/units.rs:
