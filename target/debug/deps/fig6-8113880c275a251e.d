/root/repo/target/debug/deps/fig6-8113880c275a251e.d: crates/experiments/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-8113880c275a251e: crates/experiments/src/bin/fig6.rs

crates/experiments/src/bin/fig6.rs:
