/root/repo/target/debug/deps/linux_pagecache_sim-b4065b52b5506d49.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblinux_pagecache_sim-b4065b52b5506d49.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
