/root/repo/target/debug/deps/des-f4d20d202203a403.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libdes-f4d20d202203a403.rlib: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libdes-f4d20d202203a403.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/sync.rs:
crates/des/src/time.rs:
