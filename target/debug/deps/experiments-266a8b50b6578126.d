/root/repo/target/debug/deps/experiments-266a8b50b6578126.d: crates/experiments/src/lib.rs crates/experiments/src/exp1.rs crates/experiments/src/exp4.rs crates/experiments/src/exp_concurrent.rs crates/experiments/src/platform.rs crates/experiments/src/simtime.rs crates/experiments/src/table.rs

/root/repo/target/debug/deps/experiments-266a8b50b6578126: crates/experiments/src/lib.rs crates/experiments/src/exp1.rs crates/experiments/src/exp4.rs crates/experiments/src/exp_concurrent.rs crates/experiments/src/platform.rs crates/experiments/src/simtime.rs crates/experiments/src/table.rs

crates/experiments/src/lib.rs:
crates/experiments/src/exp1.rs:
crates/experiments/src/exp4.rs:
crates/experiments/src/exp_concurrent.rs:
crates/experiments/src/platform.rs:
crates/experiments/src/simtime.rs:
crates/experiments/src/table.rs:
