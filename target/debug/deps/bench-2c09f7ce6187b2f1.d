/root/repo/target/debug/deps/bench-2c09f7ce6187b2f1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-2c09f7ce6187b2f1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
