/root/repo/target/debug/deps/table3-10abb6617aed021e.d: crates/experiments/src/bin/table3.rs

/root/repo/target/debug/deps/table3-10abb6617aed021e: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
