/root/repo/target/debug/deps/aggregate_consistency-06bb773394049913.d: crates/pagecache/tests/aggregate_consistency.rs

/root/repo/target/debug/deps/aggregate_consistency-06bb773394049913: crates/pagecache/tests/aggregate_consistency.rs

crates/pagecache/tests/aggregate_consistency.rs:
