/root/repo/target/debug/deps/failure_injection-b69169d6d1fd0bda.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-b69169d6d1fd0bda: tests/failure_injection.rs

tests/failure_injection.rs:
