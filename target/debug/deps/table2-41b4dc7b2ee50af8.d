/root/repo/target/debug/deps/table2-41b4dc7b2ee50af8.d: crates/experiments/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-41b4dc7b2ee50af8.rmeta: crates/experiments/src/bin/table2.rs Cargo.toml

crates/experiments/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
