/root/repo/target/debug/deps/criterion-d5fd34bf92887efd.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d5fd34bf92887efd.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d5fd34bf92887efd.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
