/root/repo/target/debug/deps/storage_model-4f7586cc3372b782.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_model-4f7586cc3372b782.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/resource.rs:
crates/storage/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
