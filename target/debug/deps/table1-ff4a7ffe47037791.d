/root/repo/target/debug/deps/table1-ff4a7ffe47037791.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-ff4a7ffe47037791: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
