/root/repo/target/debug/deps/fig5-9739d767387b8a18.d: crates/experiments/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-9739d767387b8a18.rmeta: crates/experiments/src/bin/fig5.rs Cargo.toml

crates/experiments/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
