/root/repo/target/debug/deps/fig6-eadd6935fb50dcab.d: crates/experiments/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-eadd6935fb50dcab.rmeta: crates/experiments/src/bin/fig6.rs Cargo.toml

crates/experiments/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
