/root/repo/target/debug/deps/fig5-af233cb9d8842af8.d: crates/experiments/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-af233cb9d8842af8.rmeta: crates/experiments/src/bin/fig5.rs Cargo.toml

crates/experiments/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
