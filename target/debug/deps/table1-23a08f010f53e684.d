/root/repo/target/debug/deps/table1-23a08f010f53e684.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-23a08f010f53e684: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
