/root/repo/target/debug/deps/fig4b-64c1a71964d775aa.d: crates/experiments/src/bin/fig4b.rs

/root/repo/target/debug/deps/fig4b-64c1a71964d775aa: crates/experiments/src/bin/fig4b.rs

crates/experiments/src/bin/fig4b.rs:
