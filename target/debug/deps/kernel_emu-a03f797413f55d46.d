/root/repo/target/debug/deps/kernel_emu-a03f797413f55d46.d: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_emu-a03f797413f55d46.rmeta: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs Cargo.toml

crates/kernel-emu/src/lib.rs:
crates/kernel-emu/src/cache.rs:
crates/kernel-emu/src/fs.rs:
crates/kernel-emu/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
