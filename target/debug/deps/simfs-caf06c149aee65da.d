/root/repo/target/debug/deps/simfs-caf06c149aee65da.d: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libsimfs-caf06c149aee65da.rmeta: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs Cargo.toml

crates/filesystem/src/lib.rs:
crates/filesystem/src/error.rs:
crates/filesystem/src/fs.rs:
crates/filesystem/src/local.rs:
crates/filesystem/src/nfs.rs:
crates/filesystem/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
