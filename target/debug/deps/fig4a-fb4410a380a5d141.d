/root/repo/target/debug/deps/fig4a-fb4410a380a5d141.d: crates/experiments/src/bin/fig4a.rs

/root/repo/target/debug/deps/fig4a-fb4410a380a5d141: crates/experiments/src/bin/fig4a.rs

crates/experiments/src/bin/fig4a.rs:
