/root/repo/target/debug/deps/ablations-b6384b2832d85a98.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-b6384b2832d85a98: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
