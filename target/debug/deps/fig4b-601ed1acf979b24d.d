/root/repo/target/debug/deps/fig4b-601ed1acf979b24d.d: crates/experiments/src/bin/fig4b.rs Cargo.toml

/root/repo/target/debug/deps/libfig4b-601ed1acf979b24d.rmeta: crates/experiments/src/bin/fig4b.rs Cargo.toml

crates/experiments/src/bin/fig4b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
