/root/repo/target/debug/deps/linux_pagecache_sim-df8de8d6829e15b0.d: src/lib.rs

/root/repo/target/debug/deps/liblinux_pagecache_sim-df8de8d6829e15b0.rlib: src/lib.rs

/root/repo/target/debug/deps/liblinux_pagecache_sim-df8de8d6829e15b0.rmeta: src/lib.rs

src/lib.rs:
