/root/repo/target/debug/deps/criterion-29ac2b9fc9ba7b57.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-29ac2b9fc9ba7b57.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
