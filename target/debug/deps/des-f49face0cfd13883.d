/root/repo/target/debug/deps/des-f49face0cfd13883.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs

/root/repo/target/debug/deps/des-f49face0cfd13883: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/sync.rs:
crates/des/src/time.rs:
