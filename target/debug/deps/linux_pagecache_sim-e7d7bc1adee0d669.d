/root/repo/target/debug/deps/linux_pagecache_sim-e7d7bc1adee0d669.d: src/lib.rs

/root/repo/target/debug/deps/linux_pagecache_sim-e7d7bc1adee0d669: src/lib.rs

src/lib.rs:
