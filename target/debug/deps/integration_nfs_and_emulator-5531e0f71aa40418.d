/root/repo/target/debug/deps/integration_nfs_and_emulator-5531e0f71aa40418.d: tests/integration_nfs_and_emulator.rs

/root/repo/target/debug/deps/integration_nfs_and_emulator-5531e0f71aa40418: tests/integration_nfs_and_emulator.rs

tests/integration_nfs_and_emulator.rs:
