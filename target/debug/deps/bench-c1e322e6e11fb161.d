/root/repo/target/debug/deps/bench-c1e322e6e11fb161.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-c1e322e6e11fb161.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-c1e322e6e11fb161.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
