/root/repo/target/debug/deps/fig6-12f71d6a28d72fc5.d: crates/experiments/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-12f71d6a28d72fc5.rmeta: crates/experiments/src/bin/fig6.rs Cargo.toml

crates/experiments/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
