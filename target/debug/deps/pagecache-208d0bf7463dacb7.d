/root/repo/target/debug/deps/pagecache-208d0bf7463dacb7.d: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs

/root/repo/target/debug/deps/libpagecache-208d0bf7463dacb7.rlib: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs

/root/repo/target/debug/deps/libpagecache-208d0bf7463dacb7.rmeta: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs

crates/pagecache/src/lib.rs:
crates/pagecache/src/block.rs:
crates/pagecache/src/config.rs:
crates/pagecache/src/controller.rs:
crates/pagecache/src/lru.rs:
crates/pagecache/src/manager.rs:
crates/pagecache/src/stats.rs:
