/root/repo/target/debug/deps/kernel_emu-4cc31b8936229850.d: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_emu-4cc31b8936229850.rmeta: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs Cargo.toml

crates/kernel-emu/src/lib.rs:
crates/kernel-emu/src/cache.rs:
crates/kernel-emu/src/fs.rs:
crates/kernel-emu/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
