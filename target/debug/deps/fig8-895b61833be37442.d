/root/repo/target/debug/deps/fig8-895b61833be37442.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-895b61833be37442: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
