/root/repo/target/debug/deps/fig8-ea74a2bf68c0450b.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-ea74a2bf68c0450b: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
