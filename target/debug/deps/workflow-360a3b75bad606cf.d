/root/repo/target/debug/deps/workflow-360a3b75bad606cf.d: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libworkflow-360a3b75bad606cf.rmeta: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs Cargo.toml

crates/workflow/src/lib.rs:
crates/workflow/src/backend.rs:
crates/workflow/src/platform.rs:
crates/workflow/src/report.rs:
crates/workflow/src/runner.rs:
crates/workflow/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
