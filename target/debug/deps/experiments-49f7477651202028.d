/root/repo/target/debug/deps/experiments-49f7477651202028.d: crates/experiments/src/lib.rs crates/experiments/src/exp1.rs crates/experiments/src/exp4.rs crates/experiments/src/exp_concurrent.rs crates/experiments/src/platform.rs crates/experiments/src/simtime.rs crates/experiments/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-49f7477651202028.rmeta: crates/experiments/src/lib.rs crates/experiments/src/exp1.rs crates/experiments/src/exp4.rs crates/experiments/src/exp_concurrent.rs crates/experiments/src/platform.rs crates/experiments/src/simtime.rs crates/experiments/src/table.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/exp1.rs:
crates/experiments/src/exp4.rs:
crates/experiments/src/exp_concurrent.rs:
crates/experiments/src/platform.rs:
crates/experiments/src/simtime.rs:
crates/experiments/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
