/root/repo/target/debug/deps/table1-bd4feb7b18e193d3.d: crates/experiments/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-bd4feb7b18e193d3.rmeta: crates/experiments/src/bin/table1.rs Cargo.toml

crates/experiments/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
