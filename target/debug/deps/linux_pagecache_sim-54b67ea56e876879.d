/root/repo/target/debug/deps/linux_pagecache_sim-54b67ea56e876879.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblinux_pagecache_sim-54b67ea56e876879.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
