/root/repo/target/debug/deps/integration_nfs_and_emulator-9d101b3d91c0be35.d: tests/integration_nfs_and_emulator.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_nfs_and_emulator-9d101b3d91c0be35.rmeta: tests/integration_nfs_and_emulator.rs Cargo.toml

tests/integration_nfs_and_emulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
