/root/repo/target/debug/deps/fig4c-351c11fc387fb7b5.d: crates/experiments/src/bin/fig4c.rs

/root/repo/target/debug/deps/fig4c-351c11fc387fb7b5: crates/experiments/src/bin/fig4c.rs

crates/experiments/src/bin/fig4c.rs:
