/root/repo/target/debug/deps/des-10518c946ada94e4.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdes-10518c946ada94e4.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/sync.rs:
crates/des/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
