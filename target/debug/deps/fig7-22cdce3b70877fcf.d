/root/repo/target/debug/deps/fig7-22cdce3b70877fcf.d: crates/experiments/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-22cdce3b70877fcf.rmeta: crates/experiments/src/bin/fig7.rs Cargo.toml

crates/experiments/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
