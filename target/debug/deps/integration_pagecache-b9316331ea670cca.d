/root/repo/target/debug/deps/integration_pagecache-b9316331ea670cca.d: tests/integration_pagecache.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_pagecache-b9316331ea670cca.rmeta: tests/integration_pagecache.rs Cargo.toml

tests/integration_pagecache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
