/root/repo/target/debug/deps/property_tests-a9de5cd5fa195d7c.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-a9de5cd5fa195d7c: tests/property_tests.rs

tests/property_tests.rs:
