/root/repo/target/debug/deps/kernel_emu-5c4e90aa05cc6461.d: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs

/root/repo/target/debug/deps/kernel_emu-5c4e90aa05cc6461: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs

crates/kernel-emu/src/lib.rs:
crates/kernel-emu/src/cache.rs:
crates/kernel-emu/src/fs.rs:
crates/kernel-emu/src/tuning.rs:
