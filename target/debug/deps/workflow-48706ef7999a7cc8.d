/root/repo/target/debug/deps/workflow-48706ef7999a7cc8.d: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs

/root/repo/target/debug/deps/libworkflow-48706ef7999a7cc8.rlib: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs

/root/repo/target/debug/deps/libworkflow-48706ef7999a7cc8.rmeta: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs

crates/workflow/src/lib.rs:
crates/workflow/src/backend.rs:
crates/workflow/src/platform.rs:
crates/workflow/src/report.rs:
crates/workflow/src/runner.rs:
crates/workflow/src/spec.rs:
