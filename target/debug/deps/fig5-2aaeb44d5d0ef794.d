/root/repo/target/debug/deps/fig5-2aaeb44d5d0ef794.d: crates/experiments/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-2aaeb44d5d0ef794: crates/experiments/src/bin/fig5.rs

crates/experiments/src/bin/fig5.rs:
