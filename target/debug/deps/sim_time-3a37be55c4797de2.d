/root/repo/target/debug/deps/sim_time-3a37be55c4797de2.d: crates/bench/benches/sim_time.rs Cargo.toml

/root/repo/target/debug/deps/libsim_time-3a37be55c4797de2.rmeta: crates/bench/benches/sim_time.rs Cargo.toml

crates/bench/benches/sim_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
