/root/repo/target/debug/deps/kernel_emu-7b1cfb127ba94cb6.d: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs

/root/repo/target/debug/deps/libkernel_emu-7b1cfb127ba94cb6.rlib: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs

/root/repo/target/debug/deps/libkernel_emu-7b1cfb127ba94cb6.rmeta: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs

crates/kernel-emu/src/lib.rs:
crates/kernel-emu/src/cache.rs:
crates/kernel-emu/src/fs.rs:
crates/kernel-emu/src/tuning.rs:
