/root/repo/target/debug/deps/simfs-c04a7b833d3ea86f.d: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs

/root/repo/target/debug/deps/simfs-c04a7b833d3ea86f: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs

crates/filesystem/src/lib.rs:
crates/filesystem/src/error.rs:
crates/filesystem/src/fs.rs:
crates/filesystem/src/local.rs:
crates/filesystem/src/nfs.rs:
crates/filesystem/src/registry.rs:
