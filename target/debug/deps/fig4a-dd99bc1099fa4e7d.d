/root/repo/target/debug/deps/fig4a-dd99bc1099fa4e7d.d: crates/experiments/src/bin/fig4a.rs Cargo.toml

/root/repo/target/debug/deps/libfig4a-dd99bc1099fa4e7d.rmeta: crates/experiments/src/bin/fig4a.rs Cargo.toml

crates/experiments/src/bin/fig4a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
