/root/repo/target/debug/deps/workflow-b145736aae42f48e.d: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs

/root/repo/target/debug/deps/workflow-b145736aae42f48e: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs

crates/workflow/src/lib.rs:
crates/workflow/src/backend.rs:
crates/workflow/src/platform.rs:
crates/workflow/src/report.rs:
crates/workflow/src/runner.rs:
crates/workflow/src/spec.rs:
