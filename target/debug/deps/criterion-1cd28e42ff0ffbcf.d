/root/repo/target/debug/deps/criterion-1cd28e42ff0ffbcf.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/criterion-1cd28e42ff0ffbcf: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
