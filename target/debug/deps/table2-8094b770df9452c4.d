/root/repo/target/debug/deps/table2-8094b770df9452c4.d: crates/experiments/src/bin/table2.rs

/root/repo/target/debug/deps/table2-8094b770df9452c4: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
