/root/repo/target/debug/deps/fig4a-2bc1d422d1ba494e.d: crates/experiments/src/bin/fig4a.rs Cargo.toml

/root/repo/target/debug/deps/libfig4a-2bc1d422d1ba494e.rmeta: crates/experiments/src/bin/fig4a.rs Cargo.toml

crates/experiments/src/bin/fig4a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
