/root/repo/target/debug/deps/table2-4a618b3b4a14bf3b.d: crates/experiments/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-4a618b3b4a14bf3b.rmeta: crates/experiments/src/bin/table2.rs Cargo.toml

crates/experiments/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
