/root/repo/target/debug/deps/criterion-5cda5ee5d23c9624.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-5cda5ee5d23c9624.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
