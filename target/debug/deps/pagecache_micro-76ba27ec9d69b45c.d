/root/repo/target/debug/deps/pagecache_micro-76ba27ec9d69b45c.d: crates/bench/benches/pagecache_micro.rs

/root/repo/target/debug/deps/pagecache_micro-76ba27ec9d69b45c: crates/bench/benches/pagecache_micro.rs

crates/bench/benches/pagecache_micro.rs:
