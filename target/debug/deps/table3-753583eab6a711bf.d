/root/repo/target/debug/deps/table3-753583eab6a711bf.d: crates/experiments/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-753583eab6a711bf.rmeta: crates/experiments/src/bin/table3.rs Cargo.toml

crates/experiments/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
