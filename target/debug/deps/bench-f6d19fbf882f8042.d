/root/repo/target/debug/deps/bench-f6d19fbf882f8042.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-f6d19fbf882f8042: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
