/root/repo/target/debug/deps/fig7-1f74a29c1db1c279.d: crates/experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-1f74a29c1db1c279: crates/experiments/src/bin/fig7.rs

crates/experiments/src/bin/fig7.rs:
