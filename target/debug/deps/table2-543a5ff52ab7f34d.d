/root/repo/target/debug/deps/table2-543a5ff52ab7f34d.d: crates/experiments/src/bin/table2.rs

/root/repo/target/debug/deps/table2-543a5ff52ab7f34d: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
