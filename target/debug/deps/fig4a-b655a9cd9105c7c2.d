/root/repo/target/debug/deps/fig4a-b655a9cd9105c7c2.d: crates/experiments/src/bin/fig4a.rs

/root/repo/target/debug/deps/fig4a-b655a9cd9105c7c2: crates/experiments/src/bin/fig4a.rs

crates/experiments/src/bin/fig4a.rs:
