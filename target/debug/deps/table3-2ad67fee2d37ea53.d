/root/repo/target/debug/deps/table3-2ad67fee2d37ea53.d: crates/experiments/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-2ad67fee2d37ea53.rmeta: crates/experiments/src/bin/table3.rs Cargo.toml

crates/experiments/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
