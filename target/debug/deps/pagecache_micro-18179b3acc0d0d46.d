/root/repo/target/debug/deps/pagecache_micro-18179b3acc0d0d46.d: crates/bench/benches/pagecache_micro.rs Cargo.toml

/root/repo/target/debug/deps/libpagecache_micro-18179b3acc0d0d46.rmeta: crates/bench/benches/pagecache_micro.rs Cargo.toml

crates/bench/benches/pagecache_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
