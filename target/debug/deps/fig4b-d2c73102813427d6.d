/root/repo/target/debug/deps/fig4b-d2c73102813427d6.d: crates/experiments/src/bin/fig4b.rs Cargo.toml

/root/repo/target/debug/deps/libfig4b-d2c73102813427d6.rmeta: crates/experiments/src/bin/fig4b.rs Cargo.toml

crates/experiments/src/bin/fig4b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
