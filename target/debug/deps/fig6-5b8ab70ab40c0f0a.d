/root/repo/target/debug/deps/fig6-5b8ab70ab40c0f0a.d: crates/experiments/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-5b8ab70ab40c0f0a: crates/experiments/src/bin/fig6.rs

crates/experiments/src/bin/fig6.rs:
