/root/repo/target/debug/deps/pagecache-24d3e60af2a41e3f.d: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs

/root/repo/target/debug/deps/pagecache-24d3e60af2a41e3f: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs

crates/pagecache/src/lib.rs:
crates/pagecache/src/block.rs:
crates/pagecache/src/config.rs:
crates/pagecache/src/controller.rs:
crates/pagecache/src/lru.rs:
crates/pagecache/src/manager.rs:
crates/pagecache/src/stats.rs:
