/root/repo/target/debug/deps/fig4c-a005f105da2271db.d: crates/experiments/src/bin/fig4c.rs

/root/repo/target/debug/deps/fig4c-a005f105da2271db: crates/experiments/src/bin/fig4c.rs

crates/experiments/src/bin/fig4c.rs:
