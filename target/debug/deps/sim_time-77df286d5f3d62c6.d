/root/repo/target/debug/deps/sim_time-77df286d5f3d62c6.d: crates/bench/benches/sim_time.rs

/root/repo/target/debug/deps/sim_time-77df286d5f3d62c6: crates/bench/benches/sim_time.rs

crates/bench/benches/sim_time.rs:
