/root/repo/target/debug/deps/table3-ab3727670ba28b7e.d: crates/experiments/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ab3727670ba28b7e: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
