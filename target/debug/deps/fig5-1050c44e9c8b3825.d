/root/repo/target/debug/deps/fig5-1050c44e9c8b3825.d: crates/experiments/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-1050c44e9c8b3825: crates/experiments/src/bin/fig5.rs

crates/experiments/src/bin/fig5.rs:
