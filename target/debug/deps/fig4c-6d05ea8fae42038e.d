/root/repo/target/debug/deps/fig4c-6d05ea8fae42038e.d: crates/experiments/src/bin/fig4c.rs Cargo.toml

/root/repo/target/debug/deps/libfig4c-6d05ea8fae42038e.rmeta: crates/experiments/src/bin/fig4c.rs Cargo.toml

crates/experiments/src/bin/fig4c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
