/root/repo/target/debug/deps/fig4b-6915b054a18e1d70.d: crates/experiments/src/bin/fig4b.rs

/root/repo/target/debug/deps/fig4b-6915b054a18e1d70: crates/experiments/src/bin/fig4b.rs

crates/experiments/src/bin/fig4b.rs:
