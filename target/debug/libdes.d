/root/repo/target/debug/libdes.rlib: /root/repo/crates/des/src/engine.rs /root/repo/crates/des/src/lib.rs /root/repo/crates/des/src/sync.rs /root/repo/crates/des/src/time.rs
