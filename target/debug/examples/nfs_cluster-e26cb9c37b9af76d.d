/root/repo/target/debug/examples/nfs_cluster-e26cb9c37b9af76d.d: examples/nfs_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libnfs_cluster-e26cb9c37b9af76d.rmeta: examples/nfs_cluster.rs Cargo.toml

examples/nfs_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
