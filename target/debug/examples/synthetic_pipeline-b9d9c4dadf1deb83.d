/root/repo/target/debug/examples/synthetic_pipeline-b9d9c4dadf1deb83.d: examples/synthetic_pipeline.rs

/root/repo/target/debug/examples/synthetic_pipeline-b9d9c4dadf1deb83: examples/synthetic_pipeline.rs

examples/synthetic_pipeline.rs:
