/root/repo/target/debug/examples/synthetic_pipeline-aa1bd46891629356.d: examples/synthetic_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libsynthetic_pipeline-aa1bd46891629356.rmeta: examples/synthetic_pipeline.rs Cargo.toml

examples/synthetic_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
