/root/repo/target/debug/examples/nfs_cluster-704da238284b68ec.d: examples/nfs_cluster.rs

/root/repo/target/debug/examples/nfs_cluster-704da238284b68ec: examples/nfs_cluster.rs

examples/nfs_cluster.rs:
