/root/repo/target/debug/examples/nighres_workflow-5021888ad074d074.d: examples/nighres_workflow.rs

/root/repo/target/debug/examples/nighres_workflow-5021888ad074d074: examples/nighres_workflow.rs

examples/nighres_workflow.rs:
