/root/repo/target/debug/examples/concurrent_instances-6396b7fa20f42370.d: examples/concurrent_instances.rs Cargo.toml

/root/repo/target/debug/examples/libconcurrent_instances-6396b7fa20f42370.rmeta: examples/concurrent_instances.rs Cargo.toml

examples/concurrent_instances.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
