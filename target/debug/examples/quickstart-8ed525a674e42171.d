/root/repo/target/debug/examples/quickstart-8ed525a674e42171.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8ed525a674e42171: examples/quickstart.rs

examples/quickstart.rs:
