/root/repo/target/debug/examples/concurrent_instances-916b6dd71f63da18.d: examples/concurrent_instances.rs

/root/repo/target/debug/examples/concurrent_instances-916b6dd71f63da18: examples/concurrent_instances.rs

examples/concurrent_instances.rs:
