/root/repo/target/debug/examples/nighres_workflow-dad67d1e7dc4bd2b.d: examples/nighres_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libnighres_workflow-dad67d1e7dc4bd2b.rmeta: examples/nighres_workflow.rs Cargo.toml

examples/nighres_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
