/root/repo/target/release/deps/fig4a-cc8236ad876354ea.d: crates/experiments/src/bin/fig4a.rs

/root/repo/target/release/deps/fig4a-cc8236ad876354ea: crates/experiments/src/bin/fig4a.rs

crates/experiments/src/bin/fig4a.rs:
