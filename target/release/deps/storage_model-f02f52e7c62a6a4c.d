/root/repo/target/release/deps/storage_model-f02f52e7c62a6a4c.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs

/root/repo/target/release/deps/libstorage_model-f02f52e7c62a6a4c.rlib: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs

/root/repo/target/release/deps/libstorage_model-f02f52e7c62a6a4c.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/resource.rs crates/storage/src/units.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/resource.rs:
crates/storage/src/units.rs:
