/root/repo/target/release/deps/linux_pagecache_sim-3ff117564d01a56e.d: src/lib.rs

/root/repo/target/release/deps/liblinux_pagecache_sim-3ff117564d01a56e.rlib: src/lib.rs

/root/repo/target/release/deps/liblinux_pagecache_sim-3ff117564d01a56e.rmeta: src/lib.rs

src/lib.rs:
