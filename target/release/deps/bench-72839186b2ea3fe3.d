/root/repo/target/release/deps/bench-72839186b2ea3fe3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-72839186b2ea3fe3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-72839186b2ea3fe3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
