/root/repo/target/release/deps/kernel_emu-b60e53f33134b546.d: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs

/root/repo/target/release/deps/libkernel_emu-b60e53f33134b546.rlib: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs

/root/repo/target/release/deps/libkernel_emu-b60e53f33134b546.rmeta: crates/kernel-emu/src/lib.rs crates/kernel-emu/src/cache.rs crates/kernel-emu/src/fs.rs crates/kernel-emu/src/tuning.rs

crates/kernel-emu/src/lib.rs:
crates/kernel-emu/src/cache.rs:
crates/kernel-emu/src/fs.rs:
crates/kernel-emu/src/tuning.rs:
