/root/repo/target/release/deps/des-e3072e61447d0d88.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs

/root/repo/target/release/deps/libdes-e3072e61447d0d88.rlib: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs

/root/repo/target/release/deps/libdes-e3072e61447d0d88.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/sync.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/sync.rs:
crates/des/src/time.rs:
