/root/repo/target/release/deps/pagecache-401034edbb992c57.d: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs

/root/repo/target/release/deps/libpagecache-401034edbb992c57.rlib: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs

/root/repo/target/release/deps/libpagecache-401034edbb992c57.rmeta: crates/pagecache/src/lib.rs crates/pagecache/src/block.rs crates/pagecache/src/config.rs crates/pagecache/src/controller.rs crates/pagecache/src/lru.rs crates/pagecache/src/manager.rs crates/pagecache/src/stats.rs

crates/pagecache/src/lib.rs:
crates/pagecache/src/block.rs:
crates/pagecache/src/config.rs:
crates/pagecache/src/controller.rs:
crates/pagecache/src/lru.rs:
crates/pagecache/src/manager.rs:
crates/pagecache/src/stats.rs:
