/root/repo/target/release/deps/criterion-64c8ef140b3bb2f2.d: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libcriterion-64c8ef140b3bb2f2.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libcriterion-64c8ef140b3bb2f2.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
