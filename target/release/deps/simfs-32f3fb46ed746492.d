/root/repo/target/release/deps/simfs-32f3fb46ed746492.d: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs

/root/repo/target/release/deps/libsimfs-32f3fb46ed746492.rlib: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs

/root/repo/target/release/deps/libsimfs-32f3fb46ed746492.rmeta: crates/filesystem/src/lib.rs crates/filesystem/src/error.rs crates/filesystem/src/fs.rs crates/filesystem/src/local.rs crates/filesystem/src/nfs.rs crates/filesystem/src/registry.rs

crates/filesystem/src/lib.rs:
crates/filesystem/src/error.rs:
crates/filesystem/src/fs.rs:
crates/filesystem/src/local.rs:
crates/filesystem/src/nfs.rs:
crates/filesystem/src/registry.rs:
