/root/repo/target/release/deps/experiments-84899e1f71d7c690.d: crates/experiments/src/lib.rs crates/experiments/src/exp1.rs crates/experiments/src/exp4.rs crates/experiments/src/exp_concurrent.rs crates/experiments/src/platform.rs crates/experiments/src/simtime.rs crates/experiments/src/table.rs

/root/repo/target/release/deps/libexperiments-84899e1f71d7c690.rlib: crates/experiments/src/lib.rs crates/experiments/src/exp1.rs crates/experiments/src/exp4.rs crates/experiments/src/exp_concurrent.rs crates/experiments/src/platform.rs crates/experiments/src/simtime.rs crates/experiments/src/table.rs

/root/repo/target/release/deps/libexperiments-84899e1f71d7c690.rmeta: crates/experiments/src/lib.rs crates/experiments/src/exp1.rs crates/experiments/src/exp4.rs crates/experiments/src/exp_concurrent.rs crates/experiments/src/platform.rs crates/experiments/src/simtime.rs crates/experiments/src/table.rs

crates/experiments/src/lib.rs:
crates/experiments/src/exp1.rs:
crates/experiments/src/exp4.rs:
crates/experiments/src/exp_concurrent.rs:
crates/experiments/src/platform.rs:
crates/experiments/src/simtime.rs:
crates/experiments/src/table.rs:
