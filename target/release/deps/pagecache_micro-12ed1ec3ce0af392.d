/root/repo/target/release/deps/pagecache_micro-12ed1ec3ce0af392.d: crates/bench/benches/pagecache_micro.rs

/root/repo/target/release/deps/pagecache_micro-12ed1ec3ce0af392: crates/bench/benches/pagecache_micro.rs

crates/bench/benches/pagecache_micro.rs:
