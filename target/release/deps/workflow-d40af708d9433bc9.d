/root/repo/target/release/deps/workflow-d40af708d9433bc9.d: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs

/root/repo/target/release/deps/libworkflow-d40af708d9433bc9.rlib: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs

/root/repo/target/release/deps/libworkflow-d40af708d9433bc9.rmeta: crates/workflow/src/lib.rs crates/workflow/src/backend.rs crates/workflow/src/platform.rs crates/workflow/src/report.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs

crates/workflow/src/lib.rs:
crates/workflow/src/backend.rs:
crates/workflow/src/platform.rs:
crates/workflow/src/report.rs:
crates/workflow/src/runner.rs:
crates/workflow/src/spec.rs:
