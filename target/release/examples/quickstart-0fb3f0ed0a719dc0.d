/root/repo/target/release/examples/quickstart-0fb3f0ed0a719dc0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0fb3f0ed0a719dc0: examples/quickstart.rs

examples/quickstart.rs:
