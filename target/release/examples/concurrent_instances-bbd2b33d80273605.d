/root/repo/target/release/examples/concurrent_instances-bbd2b33d80273605.d: examples/concurrent_instances.rs

/root/repo/target/release/examples/concurrent_instances-bbd2b33d80273605: examples/concurrent_instances.rs

examples/concurrent_instances.rs:
