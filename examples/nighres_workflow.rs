//! The Nighres cortical-reconstruction workflow (the paper's Exp 4, Table II):
//! four steps with realistic neuroimaging file sizes and CPU times.
//!
//! Run with: `cargo run --release --example nighres_workflow`

use linux_pagecache_sim::prelude::*;

fn main() {
    let platform = PlatformSpec::uniform(
        16.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let app = ApplicationSpec::nighres();
    println!("Nighres cortical reconstruction (Exp 4)\n");
    for kind in [
        SimulatorKind::KernelEmu,
        SimulatorKind::Cacheless,
        SimulatorKind::PageCache,
    ] {
        let report =
            run_scenario(&Scenario::new(platform.clone(), app.clone(), kind)).expect("run failed");
        println!("--- {} ---", kind.label());
        for t in &report.instance_reports[0].tasks {
            println!(
                "  {:<26} read {:>6.2}s  compute {:>7.1}s  write {:>6.2}s",
                t.task_name, t.read_time, t.compute_time, t.write_time
            );
        }
        println!(
            "  end-to-end makespan: {:.1}s\n",
            report.instance_reports[0].makespan()
        );
    }
}
