//! The paper's synthetic three-task pipeline (Exp 1): each task reads the file
//! produced by the previous one, computes, and writes a new file. This example
//! runs it under all four back-ends and prints per-phase I/O times and the
//! memory profile of the page cache run.
//!
//! Run with: `cargo run --release --example synthetic_pipeline [file_size_gb]`

use linux_pagecache_sim::prelude::*;

fn main() {
    let file_size_gb: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4.0);
    let platform = PlatformSpec::uniform(
        16.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let app = ApplicationSpec::synthetic_pipeline(file_size_gb * GB);
    println!("Synthetic pipeline, {file_size_gb} GB files, 16 GB of RAM\n");

    for kind in [
        SimulatorKind::KernelEmu,
        SimulatorKind::Prototype,
        SimulatorKind::Cacheless,
        SimulatorKind::PageCache,
    ] {
        let report =
            run_scenario(&Scenario::new(platform.clone(), app.clone(), kind)).expect("run failed");
        println!("--- {} ---", kind.label());
        for t in &report.instance_reports[0].tasks {
            println!(
                "  {:<8} read {:>7.2}s  compute {:>7.2}s  write {:>7.2}s",
                t.task_name, t.read_time, t.compute_time, t.write_time
            );
        }
        if let Some(trace) = &report.memory_trace {
            println!(
                "  peak cache {:.2} GB, peak dirty {:.2} GB over {} samples",
                trace.max_cached() / GB,
                trace.max_dirty() / GB,
                trace.len()
            );
        }
        println!();
    }
}
