//! Concurrent application instances contending for one node's disk and page
//! cache (the paper's Exp 2). Prints the read/write time plateau that appears
//! once the page cache saturates with dirty data.
//!
//! Run with: `cargo run --release --example concurrent_instances`

use linux_pagecache_sim::prelude::*;

fn main() {
    let platform = PlatformSpec::uniform(
        32.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    println!("Concurrent 1 GB pipelines on a 32 GB node (local disk)\n");
    println!(
        "{:>10} {:>16} {:>16} {:>16} {:>16}",
        "instances", "cacheless read", "cacheless write", "cached read", "cached write"
    );
    for instances in [1usize, 2, 4, 8, 16] {
        let mut row = Vec::new();
        for kind in [SimulatorKind::Cacheless, SimulatorKind::PageCache] {
            let report = run_scenario(
                &Scenario::new(platform.clone(), app.clone(), kind)
                    .with_instances(instances)
                    .expect("at least one instance")
                    .with_sample_interval(None),
            )
            .expect("run failed");
            row.push((
                report.mean_total_read_time(),
                report.mean_total_write_time(),
            ));
        }
        println!(
            "{:>10} {:>16.1} {:>16.1} {:>16.1} {:>16.1}",
            instances, row[0].0, row[0].1, row[1].0, row[1].1
        );
    }
    println!("\nThe cacheless model scales every write with the disk, while the page");
    println!("cache model only slows down once the dirty-data limit is reached.");
}
