//! Readahead and access patterns: two strided read passes over one file on
//! the macroscopic page-cache model vs the kernel emulator with a
//! Linux-style readahead window.
//!
//! * At a **contiguous** stride the emulator's sequentiality detector keeps
//!   the window open and prefetches ahead of demand — without ever reading
//!   a byte twice, so the disk traffic matches plain demand paging.
//! * At **sparse** strides the window collapses, and on the second pass the
//!   emulator's resident page ranges hit exactly the strided bytes it kept,
//!   while the amount-based macroscopic model still sees a half-uncached
//!   file and keeps going to disk — the access-pattern divergence the
//!   emulator exists to expose.
//!
//! Run with: `cargo run --release --example readahead_strided`

use linux_pagecache_sim::prelude::*;

fn strided_pass(file_size: f64, request: f64, stride: f64) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut offset = 0.0;
    while offset + request <= file_size {
        ops.push(Op::read_range("data", offset, request));
        ops.push(Op::ReleaseMemory(request));
        offset += stride;
    }
    ops
}

fn main() {
    let file_size = 2.0 * GB;
    let request = 64.0 * MB;
    let platform = PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
    // Windows scaled to the 64 MB request size, the way quick-scale
    // experiments scale file sizes (a stock kernel: 64 KiB..128 KiB).
    .with_readahead(32.0 * MB, 256.0 * MB);

    println!("two strided passes over a 2 GB file, 64 MB requests\n");
    println!(
        "{:<8} {:<12} {:>10} {:>14} {:>12}",
        "stride", "back-end", "hit ratio", "disk read", "prefetched"
    );
    for factor in [1u32, 2, 4] {
        let mut ops = strided_pass(file_size, request, factor as f64 * request);
        ops.extend(strided_pass(file_size, request, factor as f64 * request));
        let app = ApplicationSpec::new("strided")
            .with_initial_file(FileSpec::new("data", file_size))
            .with_task(TaskSpec::program("passes", ops));
        for (label, kind) in [
            ("model", SimulatorKind::PageCache),
            ("emulator", SimulatorKind::KernelEmu),
        ] {
            let report = run_scenario(&Scenario::new(platform.clone(), app.clone(), kind)).unwrap();
            let stats = report.run_stats();
            println!(
                "{:<8} {:<12} {:>10.3} {:>11.0} MB {:>9.0} MB",
                format!("{}x", factor),
                label,
                stats.cache_hit_ratio,
                stats.bytes_from_disk / MB,
                stats.bytes_prefetched / MB,
            );
        }
    }
    println!("\n(emulator hit ratios are strictly higher on sparse strides: resident");
    println!("page ranges re-hit what the amount-based model re-reads from disk)");
}
