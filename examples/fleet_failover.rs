//! A replicated storage fleet losing its busiest server mid write-back
//! storm: eight clients each push a 256 MB file onto three write-back
//! servers (replication 2), and the primary of client 0's file crashes
//! while every server's page cache is still dirty.
//!
//! Writes racing the crash surface as failed replica writes in the net
//! report (the surviving replica absorbs them), the read-back phase fails
//! over to the survivors, and the per-server durability oracle records the
//! byte-exact ranges the dead server's disk retained.
//!
//! Run with: `cargo run --release --example fleet_failover`

use linux_pagecache_sim::prelude::*;
use workflow::net::{primary_server, server_host};

fn main() {
    let mut platform = PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    // A 500 MB/s ingress link per server: the eight-client storm keeps the
    // fabric busy for a few seconds, so the crash lands mid-transfer.
    platform.simulated.network_bandwidth = 500.0 * MB;
    platform.real.network_bandwidth = 500.0 * MB;
    let platform = platform.with_fleet(FleetSpec::new(8, 3, 2));

    // Each client writes its own 256 MB output (write-back: the servers
    // buffer it dirty), then reads it straight back — close-to-open
    // consistency forces the read to the servers.
    let app = ApplicationSpec::new("fleet-failover").with_task(TaskSpec::program(
        "store-and-check",
        vec![Op::write("out", 256.0 * MB), Op::read("out")],
    ));

    // Aim the crash at the primary of client 0's file, mid-storm.
    let victim = server_host(primary_server(3, "i00_out"));
    let plan = FaultPlan::none().with_event(FaultEvent::ServerCrash {
        host: victim.clone(),
        at: 1.0,
    });

    println!("8 clients x 256 MB onto 3 write-back servers (replication 2)");
    println!("{victim} (primary of client 0's file) crashes at t = 1.0 s\n");

    let scenario = Scenario::new(platform, app, SimulatorKind::PageCache)
        .with_instances(8)
        .expect("8 instances are valid")
        .with_faults(plan);
    let report = run_scenario(&scenario).expect("the degraded run still completes");
    let net = report.net.as_ref().expect("fleet runs carry a net report");

    for (host, crash) in &net.server_crashes {
        println!("--- {host} crashed: what its disk retained ---");
        for (file, d) in &crash.files {
            print!(
                "  {file:<8} {:>4.0} MB replicated, {:>4.0} MB durable, {:>4.0} MB lost",
                d.size / MB,
                d.durable_bytes / MB,
                d.lost_bytes / MB
            );
            if !d.durable_ranges.is_empty() && d.lost_bytes > 0.0 {
                let spans: Vec<String> = d
                    .durable_ranges
                    .iter()
                    .map(|(s, e)| format!("[{:.0}, {:.0}) MB", s / MB, e / MB))
                    .collect();
                print!("  durable ranges: {}", spans.join(" "));
            }
            println!();
        }
    }

    println!("\n--- per-client degraded reads ---");
    for c in &net.per_client {
        println!(
            "  {}: {} degraded, {} stale",
            c.host, c.degraded_reads, c.stale_reads
        );
    }

    println!("\n--- fleet totals ---");
    println!("  failed replica writes : {:.0}", net.failed_writes);
    println!("  read failovers        : {:.0}", net.failovers);
    println!("  network retries       : {:.0}", net.net_retries);
    let completed: usize = report
        .instance_reports
        .iter()
        .flat_map(|i| &i.tasks)
        .filter(|t| t.status.is_completed())
        .count();
    println!(
        "  tasks completed       : {completed}/8 in {:.2}s simulated",
        report.simulated_duration
    );
    println!("\nEvery client finished: writes to the dead replica surfaced in the");
    println!("net report instead of failing the task (the surviving replica has the");
    println!("data), and the read-back phase failed over to the survivors.");
}
