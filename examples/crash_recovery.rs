//! A database-style commit loop hit by a simulated power loss, then
//! restarted: the fsync'd WAL records survive the crash, the un-synced
//! checkpoint image does not — the page cache's dirty/written-back split is
//! exactly the durability boundary.
//!
//! The fault plan schedules one `Crash` mid-run; `with_restart_after_crash`
//! makes the runner re-run the whole application against the post-crash
//! durable state (warm cache lost, surviving bytes re-read from disk). The
//! crash report prints per-file durable vs lost bytes — on the kernel
//! emulator as byte-exact ranges from its dirty-range ledger.
//!
//! Run with: `cargo run --release --example crash_recovery`

use linux_pagecache_sim::prelude::*;

fn main() {
    let platform = PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );

    // Twelve committed transactions (each appends a 16 MB WAL record and
    // fsyncs it), then a 1.2 GB checkpoint image written WITHOUT a sync —
    // the classic "did my data hit the platter?" split.
    let record = 16.0 * MB;
    let mut commit_ops = Vec::new();
    for i in 0..12 {
        commit_ops.push(Op::write_range("wal", i as f64 * record, record));
        commit_ops.push(Op::fsync("wal"));
        commit_ops.push(Op::compute(0.2));
    }
    let app = ApplicationSpec::new("crash-recovery")
        .with_task(TaskSpec::program("commit loop", commit_ops))
        .with_task(TaskSpec::program(
            "checkpoint",
            vec![
                Op::write_range("table", 0.0, 1200.0 * MB),
                Op::compute(10.0),
            ],
        ));

    // Power loss at t = 9 s: all twelve commits and the checkpoint write
    // have happened. 1.2 GB of dirty data exceeds this host's 800 MB
    // background-writeback threshold, so the kernel emulator's flusher
    // threads have drained part of the image by then — the crash lands
    // mid-writeback and a durable prefix survives.
    let plan = FaultPlan::crash_at(9.0);

    println!("12 x (append 16 MB WAL record + fsync) + un-synced 1.2 GB checkpoint");
    println!("power loss at t = 9.0 s, then restart against the durable state\n");
    for kind in [
        SimulatorKind::Cacheless,
        SimulatorKind::PageCache,
        SimulatorKind::KernelEmu,
    ] {
        let scenario = Scenario::new(platform.clone(), app.clone(), kind)
            .with_faults(plan.clone())
            .with_restart_after_crash();
        let report = run_scenario(&scenario).expect("simulation failed");
        println!("--- {} ---", kind.label());
        let crash = report.crash.as_ref().expect("the planned crash fired");
        for (file, d) in &crash.files {
            print!(
                "  {file:<6} {:>4.0} MB written, {:>4.0} MB durable, {:>4.0} MB lost",
                d.size / MB,
                d.durable_bytes / MB,
                d.lost_bytes / MB
            );
            if d.lost_bytes > 0.0 && !d.durable_ranges.is_empty() {
                let spans: Vec<String> = d
                    .durable_ranges
                    .iter()
                    .map(|(s, e)| format!("[{:.0}, {:.0}) MB", s / MB, e / MB))
                    .collect();
                print!("  durable ranges: {}", spans.join(" "));
            }
            println!();
        }
        let restart = &report.restart_reports[0];
        println!(
            "  restart: {}/{} tasks completed in {:.2}s (the WAL re-read comes from disk)",
            restart
                .tasks
                .iter()
                .filter(|t| t.status.is_completed())
                .count(),
            restart.tasks.len(),
            restart.makespan()
        );
    }
    println!("\nThe fsync'd WAL always survives; the cacheless baseline writes");
    println!("synchronously and loses nothing. The un-synced checkpoint splits the");
    println!("write-back back-ends: the kernel emulator's background flusher saved a");
    println!("byte-exact durable prefix before the crash, while the macroscopic model");
    println!("(no early background flushing, only dirty-expiry) loses the whole image.");
}
