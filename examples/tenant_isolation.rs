//! Two tenants on one 512 MB host: a latency-sensitive Zipf logger and a
//! bulk ingest scan. Without cache isolation the scan's dirty pages drive
//! the host to its `dirty_ratio` throttle threshold and every writer — the
//! logger included — stalls in synchronous writeback; with memcg-style
//! group limits on the scan the logger's tail latency recovers.
//!
//! Run with: `cargo run --release --example tenant_isolation`

use linux_pagecache_sim::prelude::*;

fn report(label: &str, gen: &TrafficGenReport) {
    println!(
        "  {label:<8} p50 {:>8.3} ms   p99 {:>8.3} ms   {:>6.1} req/s   hit {:>5.1}%   evicted-by-limit {:>6.1} MB",
        1e3 * gen.read_latency.p50.max(gen.write_latency.p50),
        1e3 * gen.read_latency.p99.max(gen.write_latency.p99),
        gen.throughput_rps,
        100.0 * gen.cache_hit_ratio,
        gen.limit_evicted / MB,
    );
}

fn main() {
    let platform = PlatformSpec::uniform(
        0.5 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );

    println!("two tenants, 512 MB host, isolation off vs on\n");
    for isolated in [false, true] {
        // Tenant 1: a closed-loop Zipf(1.1) logger — 4 clients rewriting a
        // small hot catalog. Warmup excludes the cold start from the
        // percentiles.
        let server = TrafficSpec::closed("server", 4, 0.005, 1500)
            .with_catalog(8, 4.0 * MB)
            .with_request_bytes(1.0 * MB)
            .with_zipf(1.1)
            .with_read_fraction(0.0)
            .with_seed(31)
            .with_warmup(200);
        // Tenant 2: a bulk ingest stream — 8 clients pushing 8 MB writes
        // over a catalog far larger than memory.
        let mut scan = TrafficSpec::closed("scan", 8, 0.0, 600)
            .with_catalog(48, 64.0 * MB)
            .with_request_bytes(8.0 * MB)
            .with_zipf(0.0)
            .with_read_fraction(0.0)
            .with_seed(32);
        if isolated {
            scan = scan.with_tenant(TenantSpec {
                max_cache_bytes: 192.0 * MB,
                max_dirty_bytes: 48.0 * MB,
            });
        }

        let scenario = Scenario::new(
            platform.clone(),
            ApplicationSpec::new("tenants"),
            SimulatorKind::PageCache,
        )
        .with_sample_interval(None)
        .with_traffic(vec![server, scan]);
        let traffic = run_scenario(&scenario)
            .expect("scenario runs")
            .traffic
            .expect("traffic report");

        println!(
            "isolation {}:",
            if isolated {
                "ON  (scan capped at 192 MB cache / 48 MB dirty)"
            } else {
                "OFF"
            }
        );
        report("server", traffic.generator("server").unwrap());
        report("scan", traffic.generator("scan").unwrap());
        println!();
    }
    println!(
        "the capped scan keeps global dirty below the host's throttle threshold,\n\
         so the server's writes never stall in synchronous writeback."
    );
}
