//! A CAWL-style "database" workload on the workload-program API: a commit
//! loop that rewrites a WAL record and fsyncs it after every commit, with a
//! little think time in between — the small-interleaved-writes + sync
//! pattern that write-pattern studies (e.g. CAWL, arXiv:2306.05701) show
//! dominates cache-aware I/O performance, and that the whole-file pipeline
//! API could not express.
//!
//! Run with: `cargo run --release --example database_workload`

use linux_pagecache_sim::prelude::*;

fn main() {
    let platform = PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );

    // 32 commits: rewrite a 16 MB WAL record, fsync it, think for 50 ms.
    // Then checkpoint: write the 512 MB table image and sync everything.
    let commits = 32;
    let record = 16.0 * MB;
    let app = ApplicationSpec::new("database").with_task(TaskSpec::program(
        "commit loop + checkpoint",
        vec![
            Op::repeat(
                commits,
                vec![
                    Op::write_range("wal", 0.0, record),
                    Op::fsync("wal"),
                    Op::compute(0.05),
                ],
            ),
            Op::write_range("table", 0.0, 512.0 * MB),
            Op::Sync,
        ],
    ));

    println!("commit loop: {commits} x (write 16 MB + fsync) + 512 MB checkpoint + sync\n");
    for kind in [
        SimulatorKind::Cacheless,
        SimulatorKind::PageCache,
        SimulatorKind::KernelEmu,
    ] {
        let report = run_scenario(&Scenario::new(platform.clone(), app.clone(), kind))
            .expect("simulation failed");
        let task = &report.instance_reports[0].tasks[0];
        let wb = report.writeback;
        println!("--- {} ---", kind.label());
        println!(
            "  write+fsync time {:>6.2}s  think {:>5.2}s  makespan {:>6.2}s",
            task.write_time,
            task.compute_time,
            report.instance_reports[0].makespan()
        );
        println!(
            "  to cache {:>6.0} MB   to disk {:>6.0} MB",
            task.write_stats.bytes_to_cache / MB,
            task.write_stats.bytes_to_disk / MB
        );
        if let Some(wb) = wb {
            println!(
                "  synchronous writeback {:>6.0} MB   background {:>6.0} MB",
                wb.synchronous_flushed / MB,
                wb.background_flushed / MB
            );
        }
    }
    println!("\nEvery fsync forces the 16 MB record to disk: the cacheless and cached");
    println!("back-ends converge on the WAL (sync writes), while the checkpoint still");
    println!("enjoys writeback caching where a cache exists.");
}
