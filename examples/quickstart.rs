//! Quickstart: read a file twice through the simulated page cache and observe
//! the cache hit, then compare with a cacheless run.
//!
//! Run with: `cargo run --release --example quickstart`

use linux_pagecache_sim::prelude::*;

fn main() {
    // A host with 8 GB of RAM, a 465 MB/s SSD and a 4.8 GB/s memory bus
    // (the bandwidths the paper uses to configure its simulators).
    let platform = PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );

    // A tiny application: one task that reads a 2 GB input twice.
    let input = FileSpec::new("input.dat", 2.0 * GB);
    let app = ApplicationSpec::new("quickstart")
        .with_initial_file(input.clone())
        .with_task(TaskSpec::new("first read", 1.0).reads(input.clone()))
        .with_task(TaskSpec::new("second read", 1.0).reads(input));

    for kind in [SimulatorKind::Cacheless, SimulatorKind::PageCache] {
        let report = run_scenario(&Scenario::new(platform.clone(), app.clone(), kind))
            .expect("simulation failed");
        let tasks = &report.instance_reports[0].tasks;
        println!("--- {} ---", kind.label());
        for t in tasks {
            println!(
                "  {:<12} read {:>6.2}s ({:.0}% served from cache)",
                t.task_name,
                t.read_time,
                t.read_stats.cache_hit_ratio() * 100.0
            );
        }
    }
    println!("\nWith the page cache model the second read is served from memory;");
    println!("the cacheless simulator pays the full disk cost twice.");
}
