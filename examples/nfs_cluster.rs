//! NFS scenario (the paper's Exp 3): applications on a client node read and
//! write files on an NFS server with a writethrough cache. Reads benefit from
//! both client and server caches; writes always pay the network + disk cost.
//!
//! Run with: `cargo run --release --example nfs_cluster`

use linux_pagecache_sim::prelude::*;

fn main() {
    let platform = PlatformSpec::uniform(
        32.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
    .with_nfs();
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);

    println!("NFS scenario: 1 GB pipelines against a writethrough NFS server\n");
    for instances in [1usize, 4, 8] {
        for kind in [SimulatorKind::Cacheless, SimulatorKind::PageCache] {
            let report = run_scenario(
                &Scenario::new(platform.clone(), app.clone(), kind)
                    .with_instances(instances)
                    .expect("at least one instance")
                    .with_sample_interval(None),
            )
            .expect("run failed");
            println!(
                "{:>2} instances | {:<20} read {:>7.1}s  write {:>7.1}s",
                instances,
                kind.label(),
                report.mean_total_read_time(),
                report.mean_total_write_time()
            );
        }
        println!();
    }
    println!("Writes are similar in both models (writethrough server cache), while");
    println!("reads are heavily overestimated without a page cache model.");
}
