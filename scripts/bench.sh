#!/usr/bin/env bash
# Runs the micro-benchmark suite and emits a machine-readable map of
# benchmark id to nanoseconds per iteration at the repository root, so the
# perf trajectory of the simulator can be tracked across PRs
# (BENCH_PR1.json, BENCH_PR3.json, ...).
#
# Usage:
#   scripts/bench.sh [output.json]        full run (default: BENCH_PR10.json)
#   BENCH_SMOKE=1 scripts/bench.sh out    one tiny sample per bench — fast CI
#                                         smoke, numbers are noisy and must
#                                         never be compared with full runs
#
# CI diffs a smoke run against baselines/bench_reference.json with
# `cargo run -p harness --bin bench_trend`; regenerate that baseline with
#   BENCH_SMOKE=1 scripts/bench.sh baselines/bench_reference.json
# whenever benchmarks are added or intentionally change cost class.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR10.json}"

BENCH_JSON="$(pwd)/$out" cargo bench -p bench --bench pagecache_micro
echo "wrote $out"
