#!/usr/bin/env bash
# Scenario-sweep entry point: builds the harness in release mode and runs
# every registered scenario in parallel, writing RESULTS.json at the repo
# root.
#
# Usage:
#   scripts/sweep.sh                  run the sweep, write RESULTS.json
#   scripts/sweep.sh --check          also diff against baselines/golden.json
#                                     and exit non-zero on any drift (CI gate)
#   scripts/sweep.sh --update-golden  regenerate the golden baseline (do this
#                                     in the same commit that legitimately
#                                     changes predictions, and say why)
#   scripts/sweep.sh --list           list registered scenarios; composes with
#                                     --filter, e.g.
#                                     scripts/sweep.sh --list --filter eviction
#
# All other flags (--threads, --seed, --filter, --out, --golden, --timings)
# are forwarded to the sweep binary; see `sweep --help`. --filter matches the
# scenario name or group, so `--filter eviction` selects the whole
# policy-comparison group.
set -euo pipefail

cd "$(dirname "$0")/.."
cargo build --release -p harness
exec target/release/sweep "$@"
