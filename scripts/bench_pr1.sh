#!/usr/bin/env bash
# Runs the pagecache_micro benchmark suite and emits BENCH_PR1.json — a
# machine-readable map of benchmark id to nanoseconds per iteration — at the
# repository root, so the perf trajectory of the simulator can be tracked
# across PRs.
#
# Usage: scripts/bench_pr1.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR1.json}"

BENCH_JSON="$(pwd)/$out" cargo bench -p bench --bench pagecache_micro
echo "wrote $out"
