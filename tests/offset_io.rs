//! Differential tests of the offset-granular I/O API across all four
//! simulator back-ends:
//!
//! * `read_file ≡ read_range(0, size)` — whole-file operations are
//!   corollaries of the range operations;
//! * a whole-file operation split into arbitrary chunked ranges produces
//!   identical `IoOpStats` totals and simulated duration;
//! * a legacy three-phase `TaskSpec` and its explicitly lowered workload
//!   program produce bit-identical scenario reports (randomized).

use des::Simulation;
use pagecache::IoOpStats;
use storage_model::units::{GB, MB};
use storage_model::DeviceSpec;
use workflow::{
    run_scenario, ApplicationSpec, Backend, FileSpec, IoBackend, PlatformSpec, Scenario,
    SimulatorKind, TaskSpec,
};

fn platform() -> PlatformSpec {
    PlatformSpec::uniform(
        32.0 * GB, // roomy: no memory pressure, so split points cannot shift reclaim
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
}

fn assert_stats_eq(a: &IoOpStats, b: &IoOpStats, what: &str) {
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * y.abs().max(1.0);
    assert!(
        close(a.bytes_from_disk, b.bytes_from_disk),
        "{what}: from_disk {} vs {}",
        a.bytes_from_disk,
        b.bytes_from_disk
    );
    assert!(
        close(a.bytes_from_cache, b.bytes_from_cache),
        "{what}: from_cache {} vs {}",
        a.bytes_from_cache,
        b.bytes_from_cache
    );
    assert!(
        close(a.bytes_to_cache, b.bytes_to_cache),
        "{what}: to_cache {} vs {}",
        a.bytes_to_cache,
        b.bytes_to_cache
    );
    assert!(
        close(a.bytes_to_disk, b.bytes_to_disk),
        "{what}: to_disk {} vs {}",
        a.bytes_to_disk,
        b.bytes_to_disk
    );
    assert!(
        close(a.duration, b.duration),
        "{what}: duration {} vs {}",
        a.duration,
        b.duration
    );
}

/// Runs `body` against a freshly built backend of `kind` and returns its
/// result.
fn with_backend<R: 'static, F, Fut>(kind: SimulatorKind, nfs: bool, body: F) -> R
where
    F: FnOnce(Backend) -> Fut + 'static,
    Fut: std::future::Future<Output = R> + 'static,
{
    let sim = Simulation::new();
    let ctx = sim.context();
    let platform = if nfs {
        platform().with_nfs()
    } else {
        platform()
    };
    let backend = Backend::build(&ctx, &platform, kind).unwrap();
    let h = sim.spawn(body(backend));
    sim.run();
    h.try_take_result().unwrap()
}

/// Every (kind, nfs) combination that can be built.
fn all_backends() -> Vec<(SimulatorKind, bool)> {
    let mut v: Vec<(SimulatorKind, bool)> = SimulatorKind::all()
        .into_iter()
        .map(|k| (k, false))
        .collect();
    v.extend([
        (SimulatorKind::Cacheless, true),
        (SimulatorKind::PageCache, true),
        (SimulatorKind::KernelEmu, true),
    ]);
    v
}

#[test]
fn read_file_equals_read_range_of_the_whole_file() {
    for (kind, nfs) in all_backends() {
        let size = 700.0 * MB;
        let whole = with_backend(kind, nfs, move |b| async move {
            b.create_file(&"f".into(), size).unwrap();
            b.read_file(&"f".into()).await.unwrap()
        });
        let range = with_backend(kind, nfs, move |b| async move {
            b.create_file(&"f".into(), size).unwrap();
            b.read_range(&"f".into(), 0.0, f64::INFINITY).await.unwrap()
        });
        assert_stats_eq(&whole, &range, &format!("{kind:?} nfs={nfs} cold"));
        // And warm (re-read) too: the cache state after one whole read is
        // the same either way.
        let whole = with_backend(kind, nfs, move |b| async move {
            b.create_file(&"f".into(), size).unwrap();
            b.read_file(&"f".into()).await.unwrap();
            b.release_anonymous_memory(size);
            b.read_file(&"f".into()).await.unwrap()
        });
        let range = with_backend(kind, nfs, move |b| async move {
            b.create_file(&"f".into(), size).unwrap();
            b.read_range(&"f".into(), 0.0, f64::INFINITY).await.unwrap();
            b.release_anonymous_memory(size);
            b.read_range(&"f".into(), 0.0, f64::INFINITY).await.unwrap()
        });
        assert_stats_eq(&whole, &range, &format!("{kind:?} nfs={nfs} warm"));
    }
}

#[test]
fn chunked_ranges_match_whole_file_reads() {
    // Split points deliberately unaligned with the 100 MB request size.
    let splits: [&[f64]; 3] = [
        &[350.0, 350.0],
        &[130.0, 270.0, 300.0],
        &[37.0, 263.0, 150.0, 250.0],
    ];
    for (kind, nfs) in all_backends() {
        let whole = with_backend(kind, nfs, move |b| async move {
            b.create_file(&"f".into(), 700.0 * MB).unwrap();
            b.read_file(&"f".into()).await.unwrap()
        });
        for split in splits {
            let split: Vec<f64> = split.to_vec();
            let total: f64 = split.iter().sum();
            assert_eq!(total, 700.0);
            let chunked = with_backend(kind, nfs, move |b| async move {
                b.create_file(&"f".into(), 700.0 * MB).unwrap();
                let mut merged = IoOpStats::default();
                let mut offset = 0.0;
                for len in split {
                    let s = b.read_range(&"f".into(), offset, len * MB).await.unwrap();
                    merged.merge(&s);
                    offset += len * MB;
                }
                merged
            });
            assert_stats_eq(&whole, &chunked, &format!("{kind:?} nfs={nfs} read"));
        }
    }
}

#[test]
fn chunked_ranges_match_whole_file_writes() {
    let splits: [&[f64]; 2] = [&[350.0, 350.0], &[37.0, 263.0, 150.0, 250.0]];
    for (kind, nfs) in all_backends() {
        let whole = with_backend(kind, nfs, move |b| async move {
            let s = b.write_range(&"g".into(), 0.0, 700.0 * MB).await.unwrap();
            let fsync = b.fsync(&"g".into()).await.unwrap();
            (s, fsync)
        });
        for split in splits {
            let split: Vec<f64> = split.to_vec();
            let chunked = with_backend(kind, nfs, move |b| async move {
                let mut merged = IoOpStats::default();
                let mut offset = 0.0;
                for len in split {
                    let s = b.write_range(&"g".into(), offset, len * MB).await.unwrap();
                    merged.merge(&s);
                    offset += len * MB;
                }
                let fsync = b.fsync(&"g".into()).await.unwrap();
                (merged, fsync)
            });
            assert_stats_eq(&whole.0, &chunked.0, &format!("{kind:?} nfs={nfs} write"));
            // The post-state is identical too: fsync flushes the same bytes.
            assert_stats_eq(&whole.1, &chunked.1, &format!("{kind:?} nfs={nfs} fsync"));
        }
    }
}

/// Minimal xorshift64 for deterministic randomized cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

/// A random chain-shaped legacy application: task i reads the previous
/// task's output (or an initial file) plus sometimes a second initial file,
/// computes, and sometimes writes an output.
fn random_app(rng: &mut Rng, app_idx: usize) -> ApplicationSpec {
    let tasks = rng.usize(1, 3);
    let initial = FileSpec::new(format!("in_{app_idx}"), rng.range(50.0, 600.0) * MB);
    let extra = FileSpec::new(format!("extra_{app_idx}"), rng.range(50.0, 300.0) * MB);
    let mut app = ApplicationSpec::new(format!("random-{app_idx}"))
        .with_initial_file(initial.clone())
        .with_initial_file(extra.clone());
    let mut prev = initial;
    for t in 0..tasks {
        let mut task = TaskSpec::new(format!("t{t}"), rng.range(0.0, 1.5)).reads(prev.clone());
        if rng.usize(0, 1) == 1 {
            task = task.reads(extra.clone());
        }
        task.release_memory_after = rng.usize(0, 1) == 1;
        if rng.usize(0, 3) > 0 {
            let out = FileSpec::new(format!("out_{app_idx}_{t}"), rng.range(50.0, 600.0) * MB);
            task = task.writes(out.clone());
            prev = out;
        }
        app = app.with_task(task);
    }
    app
}

/// Lowers every task of a legacy app into an explicit program task.
fn lowered(app: &ApplicationSpec) -> ApplicationSpec {
    let mut out = ApplicationSpec::new(app.name.clone());
    for f in &app.initial_files {
        out = out.with_initial_file(f.clone());
    }
    for (idx, task) in app.tasks.iter().enumerate() {
        out = out.with_task(TaskSpec::program(task.name.clone(), task.lower(idx)));
    }
    out
}

#[test]
fn randomized_program_vs_legacy_spec_equivalence() {
    let mut rng = Rng(0x0ff5_e710);
    for app_idx in 0..6 {
        let app = random_app(&mut rng, app_idx);
        let program_app = lowered(&app);
        for kind in SimulatorKind::all() {
            let legacy = run_scenario(&Scenario::new(platform(), app.clone(), kind)).unwrap();
            let program =
                run_scenario(&Scenario::new(platform(), program_app.clone(), kind)).unwrap();
            assert_eq!(
                legacy.simulated_duration, program.simulated_duration,
                "{kind:?} app {app_idx}: simulated duration"
            );
            let (a, b) = (&legacy.instance_reports[0], &program.instance_reports[0]);
            assert_eq!(a.tasks.len(), b.tasks.len());
            for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
                assert_eq!(ta.read_time, tb.read_time, "{kind:?} {}", ta.task_name);
                assert_eq!(
                    ta.compute_time, tb.compute_time,
                    "{kind:?} {}",
                    ta.task_name
                );
                assert_eq!(ta.write_time, tb.write_time, "{kind:?} {}", ta.task_name);
                assert_eq!(ta.read_stats, tb.read_stats, "{kind:?} {}", ta.task_name);
                assert_eq!(ta.write_stats, tb.write_stats, "{kind:?} {}", ta.task_name);
            }
            assert_eq!(
                legacy.cache_snapshots.len(),
                program.cache_snapshots.len(),
                "{kind:?}: snapshot count"
            );
            if let (Some(lt), Some(pt)) = (&legacy.memory_trace, &program.memory_trace) {
                assert_eq!(lt.len(), pt.len(), "{kind:?}: sample count");
                assert_eq!(lt.max_cached(), pt.max_cached(), "{kind:?}");
                assert_eq!(lt.max_dirty(), pt.max_dirty(), "{kind:?}");
            }
        }
    }
}
