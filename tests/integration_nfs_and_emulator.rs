//! Integration tests focused on the NFS substrate and the kernel emulator
//! ground truth, complementing `integration_pagecache.rs`.

use linux_pagecache_sim::prelude::*;

fn platform(memory_gb: f64) -> PlatformSpec {
    PlatformSpec::uniform(
        memory_gb * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
}

#[test]
fn nfs_reads_become_cheaper_once_both_caches_are_warm() {
    // Build the NFS stack directly from the public API (not via the runner).
    let sim = Simulation::new();
    let ctx = sim.context();
    let client_memory =
        MemoryDevice::new(&ctx, DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY));
    let client_disk = Disk::new(
        &ctx,
        "client",
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let client_mm = MemoryManager::new(
        &ctx,
        PageCacheConfig::with_memory(8.0 * GB),
        client_memory,
        client_disk,
    );
    let server_memory =
        MemoryDevice::new(&ctx, DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY));
    let server_disk = Disk::new(
        &ctx,
        "server",
        DeviceSpec::symmetric(445.0 * MB, 0.0, f64::INFINITY),
    );
    let server_mm = MemoryManager::new(
        &ctx,
        PageCacheConfig::with_memory(8.0 * GB).writethrough(),
        server_memory,
        server_disk.clone(),
    );
    let link = NetworkLink::new(&ctx, "net", 3000.0 * MB, 0.0);
    let fs = NfsFileSystem::new(
        &ctx,
        client_mm,
        link,
        NfsServer::new(server_mm, server_disk),
    );
    fs.create_file(&FileId::new("data"), 1.0 * GB).unwrap();

    let h = sim.spawn({
        let fs = fs.clone();
        async move {
            let cold = fs.read_file(&FileId::new("data")).await.unwrap();
            let warm = fs.read_file(&FileId::new("data")).await.unwrap();
            (cold.duration, warm.duration)
        }
    });
    sim.run();
    let (cold, warm) = h.try_take_result().unwrap();
    // Cold: server disk + network; warm: client memory only.
    assert!(cold > 2.0, "cold NFS read took {cold}s");
    assert!(warm < cold / 4.0, "warm {warm}s vs cold {cold}s");
}

#[test]
fn kernel_emulator_flushes_dirty_data_faster_than_the_macroscopic_model() {
    // The paper observes that "dirty data seemed to be flushing faster in real
    // life than in simulation": the emulator implements the background dirty
    // threshold, the macroscopic model does not. Verify that the emulator's
    // dirty data drains sooner after a large write.
    let app = ApplicationSpec::new("write-heavy")
        .with_task(TaskSpec::new("writer", 60.0).writes(FileSpec::new("out", 4.0 * GB)));
    // Write first, then idle for 60 s of CPU time so background mechanisms act.
    let app = ApplicationSpec {
        name: app.name.clone(),
        initial_files: vec![],
        tasks: vec![
            TaskSpec::new("writer", 0.0).writes(FileSpec::new("out", 4.0 * GB)),
            TaskSpec::new("idle", 60.0),
        ],
    };
    let emu = run_scenario(&Scenario::new(
        platform(64.0),
        app.clone(),
        SimulatorKind::KernelEmu,
    ))
    .unwrap();
    let model = run_scenario(&Scenario::new(
        platform(64.0),
        app,
        SimulatorKind::PageCache,
    ))
    .unwrap();
    let emu_trace = emu.memory_trace.unwrap();
    let model_trace = model.memory_trace.unwrap();
    // 20 seconds after the write, the emulator (background writeback at 10 %
    // of 64 GB = 6.4 GB... here 4 GB < 6.4 GB so only expiration applies) —
    // use 45 s, past the 30 s expiration, where both have flushed, and 15 s,
    // where neither threshold has passed in the macroscopic model.
    let t15 = des::SimTime::from_secs(15.0);
    assert!(model_trace.dirty_at(t15) >= emu_trace.dirty_at(t15) - 1.0);
    // At the very end both have little dirty data left (expiration + final
    // flush), and neither exceeded the dirty ratio.
    assert!(model_trace.max_dirty() <= 0.2 * 64.0 * GB + 1.0);
    assert!(emu_trace.max_dirty() <= 0.2 * 64.0 * GB + 1.0);
}

#[test]
fn emulator_protects_files_being_written_from_eviction() {
    // Reproduce the paper's Fig. 4c observation: after Write 2, File 3 stays
    // fully cached in the real system because the kernel does not evict pages
    // of files currently being written. Use a node small enough that writing
    // file_3 forces eviction.
    let app = ApplicationSpec::synthetic_pipeline(2.0 * GB);
    let emu = run_scenario(&Scenario::new(platform(6.0), app, SimulatorKind::KernelEmu)).unwrap();
    // Snapshot taken right after Write 2 (index 3: Read1, Write1, Read2, Write2).
    let after_write2 = &emu.cache_snapshots[3];
    let file3: FileId = FileId::new("file_3");
    let cached = after_write2.cached(&file3);
    assert!(
        cached >= 1.9 * GB,
        "file_3 should stay (almost) fully cached after Write 2, got {} GB",
        cached / GB
    );
}

#[test]
fn four_backends_agree_on_a_cold_sequential_read() {
    // The very first read of a cold file involves no caching at all, so every
    // back-end should report approximately size / disk_read_bandwidth
    // (465 MB/s for the simulators, 510 MB/s for the emulator's real disks).
    let app = ApplicationSpec::new("cold-read")
        .with_initial_file(FileSpec::new("in", 2.0 * GB))
        .with_task(TaskSpec::new("reader", 0.0).reads(FileSpec::new("in", 2.0 * GB)));
    let mut platform = platform(16.0);
    // Give the emulator the same symmetric bandwidths so all four agree.
    platform.real = platform.simulated;
    for kind in [
        SimulatorKind::Cacheless,
        SimulatorKind::Prototype,
        SimulatorKind::PageCache,
        SimulatorKind::KernelEmu,
    ] {
        let report = run_scenario(&Scenario::new(platform.clone(), app.clone(), kind)).unwrap();
        let read = report.instance_reports[0].tasks[0].read_time;
        let expected = 2.0 * GB / (465.0 * MB);
        assert!(
            (read - expected).abs() < 0.05 * expected,
            "{kind:?}: read {read}s, expected {expected}s"
        );
    }
}
