//! Differential tests for the kernel emulator's readahead model and writer
//! throttling, asserted through the scenario runner's [`RunStats`]:
//!
//! * a **sequential whole-file scan** with readahead enabled must read
//!   exactly as many bytes from disk as plain demand paging — prefetch never
//!   reads a byte twice;
//! * a **pure-random program** must keep the readahead window collapsed —
//!   zero prefetched bytes over ten thousand requests;
//! * **writer pacing** stalls writers between the dirty thresholds without
//!   flushing anything extra by itself.

use storage_model::units::{GB, KB, MB};
use storage_model::DeviceSpec;
use workflow::{
    run_scenario, ApplicationSpec, FileSpec, Op, PlatformSpec, RunStats, Scenario, SimulatorKind,
    TaskSpec,
};

/// Tiny xorshift PRNG, the same dependency-free generator family the
/// harness uses.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn platform() -> PlatformSpec {
    PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
}

fn kernel_stats(platform: PlatformSpec, app: &ApplicationSpec) -> RunStats {
    let scenario =
        Scenario::new(platform, app.clone(), SimulatorKind::KernelEmu).with_sample_interval(None);
    run_scenario(&scenario).unwrap().run_stats()
}

/// 10 000 sequential 64 KB reads covering a 640 MB file exactly once.
fn sequential_scan_app(file_size: f64, request: f64) -> ApplicationSpec {
    let requests = (file_size / request) as usize;
    assert_eq!(requests, 10_000);
    let mut ops = Vec::with_capacity(requests);
    for i in 0..requests {
        ops.push(Op::read_range("data", i as f64 * request, request));
    }
    ApplicationSpec::new("seq-scan")
        .with_initial_file(FileSpec::new("data", file_size))
        .with_task(TaskSpec::program("scan", ops))
}

#[test]
fn sequential_scan_reads_the_same_disk_bytes_with_and_without_readahead() {
    let request = 64.0 * KB;
    let file_size = 10_000.0 * request;
    let app = sequential_scan_app(file_size, request);
    let demand = kernel_stats(platform(), &app);
    let ra = kernel_stats(platform().with_readahead(1.0 * MB, 16.0 * MB), &app);

    // Demand paging reads the file exactly once.
    assert!(
        (demand.bytes_from_disk - file_size).abs() < 1.0,
        "demand read {} of {file_size}",
        demand.bytes_from_disk
    );
    assert_eq!(demand.bytes_prefetched, 0.0);

    // Readahead fired on the sequential stream...
    assert!(
        ra.bytes_prefetched > 100.0 * MB,
        "prefetched only {}",
        ra.bytes_prefetched
    );
    // ...but the total disk traffic is identical: prefetch reads only gaps,
    // so not a single byte is read twice.
    assert!(
        (ra.bytes_from_disk - demand.bytes_from_disk).abs() < 1.0,
        "readahead disk bytes {} vs demand {}",
        ra.bytes_from_disk,
        demand.bytes_from_disk
    );
    // The prefetched bytes resurface as cache hits when demanded.
    assert!(
        (ra.bytes_from_cache - ra.bytes_prefetched).abs() < 1.0,
        "cache hits {} vs prefetched {}",
        ra.bytes_from_cache,
        ra.bytes_prefetched
    );
}

#[test]
fn pure_random_program_keeps_the_readahead_window_collapsed() {
    let request = 64.0 * KB;
    let file_size = 2.0 * GB;
    let mut rng = XorShift::new(0xC0FFEE);
    let mut ops = Vec::with_capacity(10_000);
    let mut prev_end = 0.0;
    for _ in 0..10_000 {
        // Random page-aligned offsets; re-draw the rare offset that would
        // continue the previous request (or start a fresh stream at 0),
        // since either would legitimately count as sequential.
        let mut offset;
        loop {
            let page = rng.next_u64() % ((file_size - request) / (4.0 * KB)) as u64;
            offset = page as f64 * 4.0 * KB;
            if offset != prev_end && offset != 0.0 {
                break;
            }
        }
        ops.push(Op::read_range("data", offset, request));
        prev_end = offset + request;
    }
    let app = ApplicationSpec::new("random-reads")
        .with_initial_file(FileSpec::new("data", file_size))
        .with_task(TaskSpec::program("random", ops));
    let stats = kernel_stats(platform().with_readahead(1.0 * MB, 16.0 * MB), &app);
    // Ten thousand random requests: the sequentiality detector never opened
    // a window.
    assert_eq!(stats.bytes_prefetched, 0.0);
    assert!(stats.bytes_from_disk > 0.0);
}

#[test]
fn pacing_stalls_writers_between_the_thresholds_at_runner_level() {
    // 4 GB host: background threshold 400 MB, dirty threshold 800 MB. A
    // 700 MB write ends inside the band.
    let small = PlatformSpec::uniform(
        4.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let app = ApplicationSpec::new("burst").with_task(TaskSpec::program(
        "write burst",
        vec![Op::write_range("out", 0.0, 700.0 * MB)],
    ));
    let unpaced = kernel_stats(small.clone(), &app);
    let paced = kernel_stats(small.with_throttle_pacing(1.0), &app);
    assert_eq!(unpaced.throttle_stall_s, 0.0);
    assert!(paced.throttle_stall_s > 0.0, "{paced:?}");
    // Pacing stalls the writer; it does not flush anything extra by itself.
    assert_eq!(paced.bytes_to_disk, unpaced.bytes_to_disk);
    assert!(paced.peak_dirty <= 0.2 * 4.0 * GB + 1.0);
}
