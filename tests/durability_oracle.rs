//! Differential tests of the crash durability oracle.
//!
//! A **naive per-byte model** shadows every operation of a randomized
//! workload: a write marks its byte range dirty, `fsync` clears one file,
//! `sync` clears everything. Crashing at a random operation boundary must
//! then agree with the model on every back-end:
//!
//! * the kernel emulator's durable ranges are **byte-exact** complements of
//!   the naive dirty ranges;
//! * the amount-based back-ends lose exactly the naive dirty byte count
//!   (their positions are approximated, their amounts are not);
//! * synchronous and writethrough back-ends never lose anything.
//!
//! Deterministic companions pin the three canonical crash shapes: before an
//! fsync, after an fsync, and in the middle of background writeback.

use des::Simulation;
use pagecache::FileId;
use storage_model::units::{GB, MB};
use storage_model::DeviceSpec;
use workflow::{
    run_scenario, ApplicationSpec, Backend, CrashReport, FaultPlan, IoBackend, Op, PlatformSpec,
    Scenario, SimulatorKind, TaskSpec,
};

const FILE_SIZE: f64 = 64.0 * MB;
const FILES: usize = 4;
/// Comparisons are byte-exact up to float noise.
const EPS: f64 = 1e-3;

fn platform() -> PlatformSpec {
    PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
}

/// Deterministic xorshift64 PRNG, as used by the sweep harness.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The naive model's view of one file: dirty byte ranges, sorted and
/// disjoint. Offsets are whole megabytes, so every bound is float-exact.
#[derive(Clone, Default)]
struct NaiveFile {
    dirty: Vec<(f64, f64)>,
}

impl NaiveFile {
    fn mark_dirty(&mut self, a: f64, b: f64) {
        let mut merged = Vec::with_capacity(self.dirty.len() + 1);
        let (mut a, mut b) = (a, b);
        for &(x, y) in &self.dirty {
            if y < a || x > b {
                merged.push((x, y));
            } else {
                a = a.min(x);
                b = b.max(y);
            }
        }
        merged.push((a, b));
        merged.sort_by(|p, q| p.0.partial_cmp(&q.0).unwrap());
        self.dirty = merged;
    }

    fn dirty_bytes(&self) -> f64 {
        self.dirty.iter().map(|(a, b)| b - a).sum()
    }

    /// The complement of the dirty ranges within `[0, size)`: what must
    /// survive a crash.
    fn durable_ranges(&self, size: f64) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut cursor = 0.0;
        for &(a, b) in &self.dirty {
            if a > cursor {
                out.push((cursor, a));
            }
            cursor = cursor.max(b);
        }
        if cursor < size {
            out.push((cursor, size));
        }
        out
    }
}

enum RandOp {
    Write(usize, f64, f64),
    Fsync(usize),
    Sync,
    Read(usize, f64, f64),
}

/// Generates a deterministic random op stream. With `overlapping` false,
/// writes only touch megabyte blocks that are currently clean in the naive
/// model, so position-blind dirty aggregates stay exact.
fn gen_ops(seed: u64, n: usize, overlapping: bool) -> Vec<RandOp> {
    let mut rng = XorShift::new(seed);
    let blocks = (FILE_SIZE / MB) as u64;
    let mut dirty_blocks: Vec<Vec<bool>> = vec![vec![false; blocks as usize]; FILES];
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let file = rng.below(FILES as u64) as usize;
        match rng.below(10) {
            0..=4 => {
                if overlapping {
                    let len = (1 + rng.below(8)) as f64 * MB;
                    let off = rng.below(blocks.saturating_sub(8).max(1)) as f64 * MB;
                    ops.push(RandOp::Write(file, off, len.min(FILE_SIZE - off)));
                } else {
                    // One clean megabyte block, if the file has any left.
                    let start = rng.below(blocks) as usize;
                    let Some(block) = (0..blocks as usize)
                        .map(|i| (start + i) % blocks as usize)
                        .find(|&b| !dirty_blocks[file][b])
                    else {
                        ops.push(RandOp::Fsync(file));
                        dirty_blocks[file].fill(false);
                        continue;
                    };
                    dirty_blocks[file][block] = true;
                    ops.push(RandOp::Write(file, block as f64 * MB, MB));
                }
            }
            5..=6 => {
                ops.push(RandOp::Fsync(file));
                dirty_blocks[file].fill(false);
            }
            7 => {
                ops.push(RandOp::Sync);
                dirty_blocks.iter_mut().for_each(|f| f.fill(false));
            }
            _ => {
                let len = (1 + rng.below(16)) as f64 * MB;
                let off = rng.below(blocks) as f64 * MB;
                ops.push(RandOp::Read(file, off, len.min(FILE_SIZE - off)));
            }
        }
    }
    ops
}

fn file_name(i: usize) -> String {
    format!("f{i}")
}

/// Runs `crash_at_op` operations of the stream against a freshly built
/// back-end, crashes, and returns the oracle's report next to the naive
/// model's state.
fn run_differential(
    kind: SimulatorKind,
    nfs: bool,
    seed: u64,
    n_ops: usize,
    crash_at_op: usize,
    overlapping: bool,
) -> (CrashReport, Vec<NaiveFile>) {
    let platform = if nfs {
        platform().with_nfs()
    } else {
        platform()
    };
    let sim = Simulation::new();
    let ctx = sim.context();
    let backend = Backend::build(&ctx, &platform, kind).unwrap();
    let ops = gen_ops(seed, n_ops, overlapping);
    let handle = sim.spawn(async move {
        for i in 0..FILES {
            backend
                .create_file(&FileId::new(file_name(i)), FILE_SIZE)
                .unwrap();
        }
        let mut naive = vec![NaiveFile::default(); FILES];
        for op in ops.iter().take(crash_at_op) {
            match op {
                RandOp::Write(file, off, len) => {
                    backend
                        .write_range(&FileId::new(file_name(*file)), *off, *len)
                        .await
                        .unwrap();
                    naive[*file].mark_dirty(*off, *off + *len);
                }
                RandOp::Fsync(file) => {
                    backend.fsync(&FileId::new(file_name(*file))).await.unwrap();
                    naive[*file].dirty.clear();
                }
                RandOp::Sync => {
                    backend.sync().await.unwrap();
                    naive.iter_mut().for_each(|f| f.dirty.clear());
                }
                RandOp::Read(file, off, len) => {
                    let stats = backend
                        .read_range(&FileId::new(file_name(*file)), *off, *len)
                        .await
                        .unwrap();
                    backend
                        .release_anonymous_memory(stats.bytes_from_disk + stats.bytes_from_cache);
                }
            }
        }
        (backend.crash(), naive)
    });
    sim.run();
    handle.try_take_result().expect("simulation deadlocked")
}

fn ranges_eq(a: &[(f64, f64)], b: &[(f64, f64)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: {a:?} vs {b:?}");
    for ((a0, a1), (b0, b1)) in a.iter().zip(b) {
        assert!(
            (a0 - b0).abs() < EPS && (a1 - b1).abs() < EPS,
            "{what}: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn kernel_durable_ranges_match_the_naive_model_byte_exactly() {
    // 10k-op random streams (overlapping writes allowed) crashed at three
    // different instants each: the kernel emulator's dirty-range ledger must
    // reproduce the naive per-byte model exactly.
    for seed in [7, 42] {
        for crash_at in [1_000, 5_000, 10_000] {
            let (report, naive) = run_differential(
                SimulatorKind::KernelEmu,
                false,
                seed,
                10_000,
                crash_at,
                true,
            );
            for (i, model) in naive.iter().enumerate() {
                let file = FileId::new(file_name(i));
                let durability = report
                    .files
                    .get(&file)
                    .unwrap_or_else(|| panic!("file {file} missing from the crash report"));
                assert!((durability.size - FILE_SIZE).abs() < EPS);
                ranges_eq(
                    &durability.durable_ranges,
                    &model.durable_ranges(FILE_SIZE),
                    &format!("seed {seed}, crash at op {crash_at}, {file}"),
                );
                assert!((durability.lost_bytes - model.dirty_bytes()).abs() < EPS);
                assert!((durability.durable_bytes - (FILE_SIZE - model.dirty_bytes())).abs() < EPS);
            }
        }
    }
}

#[test]
fn every_backend_agrees_with_the_naive_model_on_lost_amounts() {
    // Non-overlapping single-block writes keep the position-blind dirty
    // aggregates exact, so *all five* back-ends must agree with the naive
    // model on the byte counts (and the write-synchronous ones lose nothing).
    let configs = [
        (SimulatorKind::Cacheless, false, false), // direct local
        (SimulatorKind::PageCache, false, true),  // cached local
        (SimulatorKind::Prototype, false, true),  // cached, no contention
        (SimulatorKind::KernelEmu, false, true),  // page-granular cache
        (SimulatorKind::Cacheless, true, false),  // direct NFS
        (SimulatorKind::PageCache, true, false),  // NFS (writethrough server)
    ];
    for (kind, nfs, caches_writes) in configs {
        for seed in [3, 99] {
            let (report, naive) = run_differential(kind, nfs, seed, 2_000, 1_500, false);
            assert_eq!(report.files.len(), FILES, "{kind:?} nfs={nfs}");
            for (i, model) in naive.iter().enumerate() {
                let durability = &report.files[&FileId::new(file_name(i))];
                let expected_lost = if caches_writes {
                    model.dirty_bytes()
                } else {
                    0.0
                };
                assert!(
                    (durability.lost_bytes - expected_lost).abs() < EPS,
                    "{kind:?} nfs={nfs} seed {seed} f{i}: lost {} vs naive {expected_lost}",
                    durability.lost_bytes,
                );
                assert!(
                    (durability.durable_bytes - (FILE_SIZE - expected_lost)).abs() < EPS,
                    "{kind:?} nfs={nfs} seed {seed} f{i}: durable {}",
                    durability.durable_bytes,
                );
            }
        }
    }
}

#[test]
fn crash_before_fsync_loses_the_write_crash_after_keeps_it() {
    let app_before = ApplicationSpec::new("before").with_task(TaskSpec::program(
        "commit",
        vec![Op::write("wal", 200.0 * MB), Op::compute(100.0)],
    ));
    let app_after = ApplicationSpec::new("after").with_task(TaskSpec::program(
        "commit",
        vec![
            Op::write("wal", 200.0 * MB),
            Op::fsync("wal"),
            Op::compute(100.0),
        ],
    ));
    // The crash must land inside the compute phase but before background
    // writeback touches the dirty pages: the 200 MB write completes in well
    // under a second, expiry-driven flushing starts only after dirty_expire
    // (30 s), and 200 MB is far below the background dirty threshold.
    for kind in [SimulatorKind::PageCache, SimulatorKind::KernelEmu] {
        let report = run_scenario(
            &Scenario::new(platform(), app_before.clone(), kind)
                .with_faults(FaultPlan::crash_at(2.0)),
        )
        .unwrap();
        let crash = report.crash.expect("crash fired");
        let wal = &crash.files[&FileId::new("wal")];
        assert!(
            (wal.lost_bytes - 200.0 * MB).abs() < MB,
            "{kind:?}: never-synced write must be lost, lost {}",
            wal.lost_bytes
        );
        assert!(wal.durable_bytes < MB, "{kind:?}");

        // Same crash instant, but the write was fsync'd (the fsync finishes
        // by ~0.5 s): nothing is lost.
        let report = run_scenario(
            &Scenario::new(platform(), app_after.clone(), kind)
                .with_faults(FaultPlan::crash_at(2.0)),
        )
        .unwrap();
        let crash = report.crash.expect("crash fired");
        let wal = &crash.files[&FileId::new("wal")];
        assert!(wal.lost_bytes < EPS, "{kind:?}: fsync'd bytes must survive");
        assert!((wal.durable_bytes - 200.0 * MB).abs() < MB, "{kind:?}");
    }

    // On the synchronous baseline even the never-fsync'd write survives.
    let report = run_scenario(
        &Scenario::new(platform(), app_before, SimulatorKind::Cacheless)
            .with_faults(FaultPlan::crash_at(2.0)),
    )
    .unwrap();
    let crash = report.crash.expect("crash fired");
    assert!(crash.lost_bytes() < EPS);
    assert!((crash.durable_bytes() - 200.0 * MB).abs() < MB);
}

#[test]
fn crash_mid_writeback_keeps_a_durable_prefix() {
    // 1.2 GB dirty exceeds the 800 MB background threshold of an 8 GB host:
    // the background writeback threads start draining the file front-first.
    // Crashing while they are part-way through must yield a durable prefix
    // and a lost tail, byte-accounted exactly.
    let app = ApplicationSpec::new("storm").with_task(TaskSpec::program(
        "burst",
        vec![Op::write("big", 1200.0 * MB), Op::compute(200.0)],
    ));
    let report = run_scenario(
        &Scenario::new(platform(), app, SimulatorKind::KernelEmu)
            .with_faults(FaultPlan::crash_at(12.0)),
    )
    .unwrap();
    let crash = report.crash.expect("crash fired");
    let big = &crash.files[&FileId::new("big")];
    assert!(
        big.durable_bytes > 50.0 * MB && big.durable_bytes < 1150.0 * MB,
        "expected a partial flush, durable {}",
        big.durable_bytes
    );
    assert!((big.durable_bytes + big.lost_bytes - 1200.0 * MB).abs() < EPS);
    // Background writeback drains lowest offsets first: the durable part is
    // a single prefix starting at byte 0.
    assert_eq!(big.durable_ranges.len(), 1, "{:?}", big.durable_ranges);
    assert!(big.durable_ranges[0].0.abs() < EPS);
}
