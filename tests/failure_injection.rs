//! Failure-injection and edge-case tests across the public API.

use linux_pagecache_sim::prelude::*;
use storage_model::units::GIB;
use workflow::ScenarioError;

#[test]
fn scenario_fails_cleanly_when_the_disk_fills_up() {
    // A 10 GiB disk cannot hold the four 4 GB files of the pipeline.
    let platform = PlatformSpec::uniform(
        64.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, 10.0 * GIB),
    );
    let app = ApplicationSpec::synthetic_pipeline(4.0 * GB);
    let err = run_scenario(&Scenario::new(platform, app, SimulatorKind::PageCache)).unwrap_err();
    match err {
        // The structured error keeps the cause: a DiskFull with the exact
        // requested/available byte counts, not a stringified message.
        ScenarioError::Filesystem(simfs::FsError::DiskFull(e)) => {
            assert!(e.requested > e.available, "unexpected error: {e}")
        }
        other => panic!("expected a disk-full filesystem error, got {other:?}"),
    }
}

#[test]
fn kernel_emulator_also_fails_cleanly_when_the_disk_fills_up() {
    // Error-path parity with the macroscopic back-ends: the kernel emulator
    // reports the same structured disk-full cause through its own error type.
    let platform = PlatformSpec::uniform(
        64.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, 10.0 * GIB),
    );
    let app = ApplicationSpec::synthetic_pipeline(4.0 * GB);
    let err = run_scenario(&Scenario::new(platform, app, SimulatorKind::KernelEmu)).unwrap_err();
    match err {
        ScenarioError::Kernel(kernel_emu::KernelFsError::DiskFull(e)) => {
            assert!(e.requested > e.available, "unexpected error: {e}")
        }
        other => panic!("expected a kernel disk-full error, got {other:?}"),
    }
}

#[test]
fn injected_disk_full_degrades_without_aborting() {
    // Unlike a *real* disk-full (above), an injected ENOSPC window fails the
    // writing task and lets the rest of the run finish degraded.
    let platform = PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let mut app = ApplicationSpec::new("enospc").with_initial_file(FileSpec::new("in", 256.0 * MB));
    for i in 1..=3 {
        app = app.with_task(TaskSpec::program(
            format!("t{i}"),
            vec![Op::read("in"), Op::write(format!("out{i}"), 128.0 * MB)],
        ));
    }
    let plan = FaultPlan::none().with_event(FaultEvent::DiskFull { at: 0.0 });
    let report =
        run_scenario(&Scenario::new(platform, app, SimulatorKind::PageCache).with_faults(plan))
            .unwrap();
    let tasks = &report.instance_reports[0].tasks;
    assert_eq!(tasks.len(), 3);
    // Every task read its input fine and died on the write.
    assert!(tasks.iter().all(|t| !t.status.is_completed()));
    assert!(tasks
        .iter()
        .all(|t| t.read_stats.bytes_from_disk + t.read_stats.bytes_from_cache > 255.0 * MB));
    for t in tasks {
        match &t.status {
            TaskStatus::Failed(fault) => {
                assert_eq!(fault.op, OpClass::Write);
                assert!(!fault.transient);
                assert!(fault.to_string().contains("ENOSPC"), "{fault}");
            }
            other => panic!("expected an injected failure, got {other:?}"),
        }
    }
}

#[test]
fn zero_byte_files_and_zero_cpu_tasks_are_handled() {
    let platform = PlatformSpec::uniform(
        4.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let app = ApplicationSpec::new("degenerate")
        .with_initial_file(FileSpec::new("empty", 0.0))
        .with_task(
            TaskSpec::new("noop", 0.0)
                .reads(FileSpec::new("empty", 0.0))
                .writes(FileSpec::new("also_empty", 0.0)),
        );
    for kind in [
        SimulatorKind::Cacheless,
        SimulatorKind::PageCache,
        SimulatorKind::KernelEmu,
    ] {
        let report = run_scenario(&Scenario::new(platform.clone(), app.clone(), kind)).unwrap();
        let task = &report.instance_reports[0].tasks[0];
        assert_eq!(task.read_time, 0.0, "{kind:?}");
        assert_eq!(task.write_time, 0.0, "{kind:?}");
        assert_eq!(task.compute_time, 0.0, "{kind:?}");
    }
}

#[test]
fn cache_larger_than_file_set_and_tiny_memory_both_work() {
    // Tiny memory: the page cache cannot hold even one file; the simulation
    // must still complete, with read times close to disk times.
    let tiny = PlatformSpec::uniform(
        512.0 * MB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let report = run_scenario(&Scenario::new(tiny, app.clone(), SimulatorKind::PageCache)).unwrap();
    let warm_read = report.instance_reports[0].tasks[1].read_time;
    let disk_time = 1.0 * GB / (465.0 * MB);
    assert!(
        warm_read > 0.5 * disk_time,
        "with a tiny cache the re-read should be disk-bound, got {warm_read}s vs disk {disk_time}s"
    );
    // Huge memory: everything cached, re-reads at memory speed.
    let huge = PlatformSpec::uniform(
        1024.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let report = run_scenario(&Scenario::new(huge, app, SimulatorKind::PageCache)).unwrap();
    let warm_read = report.instance_reports[0].tasks[1].read_time;
    assert!(
        warm_read < 0.5 * disk_time,
        "expected a cache hit, got {warm_read}s"
    );
}

#[test]
fn unsupported_prototype_nfs_combination_is_rejected() {
    let platform = PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
    .with_nfs();
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let err = run_scenario(&Scenario::new(platform, app, SimulatorKind::Prototype)).unwrap_err();
    assert!(matches!(err, ScenarioError::Unsupported(_)));
}

#[test]
fn invalid_platforms_are_rejected_before_any_simulation() {
    let mut platform = PlatformSpec::uniform(
        8.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    platform.dirty_ratio = 7.0;
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let err = run_scenario(&Scenario::new(platform, app, SimulatorKind::PageCache)).unwrap_err();
    assert!(matches!(err, ScenarioError::InvalidPlatform(_)));
}
