//! Cross-crate integration tests: the page cache model driven through the
//! filesystem and workflow layers, checking the paper's qualitative claims
//! end to end.

use linux_pagecache_sim::prelude::*;
use workflow::absolute_relative_error_pct;

fn platform(memory_gb: f64) -> PlatformSpec {
    PlatformSpec::uniform(
        memory_gb * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
}

#[test]
fn cacheless_simulator_overestimates_warm_reads_by_an_order_of_magnitude() {
    let app = ApplicationSpec::synthetic_pipeline(2.0 * GB);
    let cacheless = run_scenario(&Scenario::new(
        platform(16.0),
        app.clone(),
        SimulatorKind::Cacheless,
    ))
    .unwrap();
    let cached = run_scenario(&Scenario::new(
        platform(16.0),
        app,
        SimulatorKind::PageCache,
    ))
    .unwrap();
    // Task 2 re-reads the file written by task 1: with the page cache it is a
    // memory read, without it a disk read — roughly a 10x difference given
    // the Table III bandwidths (4812 vs 465 MBps).
    let warm_cacheless = cacheless.instance_reports[0].tasks[1].read_time;
    let warm_cached = cached.instance_reports[0].tasks[1].read_time;
    assert!(
        warm_cacheless > 5.0 * warm_cached,
        "cacheless {warm_cacheless}s vs cached {warm_cached}s"
    );
}

#[test]
fn page_cache_model_reduces_error_against_kernel_emulator() {
    // The headline claim of the paper (up to ~9x error reduction): measure it
    // at small scale across every phase of the synthetic pipeline.
    let app = ApplicationSpec::synthetic_pipeline(2.0 * GB);
    let real = run_scenario(&Scenario::new(
        platform(16.0),
        app.clone(),
        SimulatorKind::KernelEmu,
    ))
    .unwrap();
    let cacheless = run_scenario(&Scenario::new(
        platform(16.0),
        app.clone(),
        SimulatorKind::Cacheless,
    ))
    .unwrap();
    let cached = run_scenario(&Scenario::new(
        platform(16.0),
        app,
        SimulatorKind::PageCache,
    ))
    .unwrap();

    let mut err_cacheless = 0.0;
    let mut err_cached = 0.0;
    let mut phases = 0.0;
    for (idx, real_task) in real.instance_reports[0].tasks.iter().enumerate() {
        for (real_t, cl_t, ca_t) in [
            (
                real_task.read_time,
                cacheless.instance_reports[0].tasks[idx].read_time,
                cached.instance_reports[0].tasks[idx].read_time,
            ),
            (
                real_task.write_time,
                cacheless.instance_reports[0].tasks[idx].write_time,
                cached.instance_reports[0].tasks[idx].write_time,
            ),
        ] {
            if real_t > 1e-9 {
                err_cacheless += absolute_relative_error_pct(cl_t, real_t);
                err_cached += absolute_relative_error_pct(ca_t, real_t);
                phases += 1.0;
            }
        }
    }
    err_cacheless /= phases;
    err_cached /= phases;
    assert!(
        err_cacheless > 3.0 * err_cached,
        "mean errors: cacheless {err_cacheless:.0}%, cached {err_cached:.0}% — expected a large reduction"
    );
}

#[test]
fn dirty_data_never_exceeds_the_dirty_ratio() {
    // Paper §IV-A: "In all cases, dirty data remained under the dirty ratio as
    // expected."
    let app = ApplicationSpec::synthetic_pipeline(4.0 * GB);
    let report =
        run_scenario(&Scenario::new(platform(8.0), app, SimulatorKind::PageCache)).unwrap();
    let trace = report.memory_trace.expect("memory trace present");
    // The dirty limit is dirty_ratio * available memory <= dirty_ratio * total.
    assert!(trace.max_dirty() <= 0.2 * 8.0 * GB * 1.01);
    assert!(trace.max_used() <= 8.0 * GB * 1.01);
}

#[test]
fn writethrough_nfs_has_no_dirty_data_and_slower_writes_than_local() {
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let local = run_scenario(&Scenario::new(
        platform(16.0),
        app.clone(),
        SimulatorKind::PageCache,
    ))
    .unwrap();
    let nfs = run_scenario(&Scenario::new(
        platform(16.0).with_nfs(),
        app,
        SimulatorKind::PageCache,
    ))
    .unwrap();
    // Local writeback writes are memory-speed; NFS writethrough writes pay
    // network + server disk.
    assert!(nfs.mean_total_write_time() > 3.0 * local.mean_total_write_time());
    // Reads still benefit from caches on NFS (tasks 2 and 3 re-read data that
    // the server and client just saw).
    let nfs_tasks = &nfs.instance_reports[0].tasks;
    assert!(nfs_tasks[1].read_time < nfs_tasks[0].write_time);
}

#[test]
fn concurrency_scales_io_times_under_contention() {
    let app = ApplicationSpec::synthetic_pipeline(500.0 * MB);
    let mut read_times = Vec::new();
    for instances in [1usize, 4, 8] {
        let report = run_scenario(
            &Scenario::new(platform(64.0), app.clone(), SimulatorKind::Cacheless)
                .with_instances(instances)
                .unwrap()
                .with_sample_interval(None),
        )
        .unwrap();
        read_times.push(report.mean_total_read_time());
    }
    // Disk-bound reads scale roughly linearly with the number of instances.
    assert!(read_times[1] > 3.0 * read_times[0]);
    assert!(read_times[2] > 1.7 * read_times[1]);
}

#[test]
fn scenario_reports_are_deterministic() {
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let run = || {
        let r = run_scenario(
            &Scenario::new(platform(16.0), app.clone(), SimulatorKind::PageCache)
                .with_instances(3)
                .unwrap(),
        )
        .unwrap();
        (
            r.simulated_duration,
            r.mean_total_read_time(),
            r.mean_total_write_time(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn filesystem_layer_and_raw_controller_agree() {
    // Driving the IoController directly and driving it through the
    // CachedFileSystem must produce identical timings.
    let sim = Simulation::new();
    let ctx = sim.context();
    let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY));
    let disk = Disk::new(
        &ctx,
        "d",
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    );
    let mm = MemoryManager::new(
        &ctx,
        PageCacheConfig::with_memory(8.0 * GB),
        memory,
        disk.clone(),
    );
    let io = IoController::new(&ctx, mm.clone());
    let fs = CachedFileSystem::new(io.clone(), disk);
    fs.create_file(&FileId::new("direct"), 1.0 * GB).unwrap();
    fs.create_file(&FileId::new("via_fs"), 1.0 * GB).unwrap();
    let h = sim.spawn(async move {
        let a = io.read_file(&FileId::new("direct"), 1.0 * GB).await;
        let b = fs.read_file(&FileId::new("via_fs")).await.unwrap();
        (a.duration, b.duration)
    });
    sim.run();
    let (a, b) = h.try_take_result().unwrap();
    assert!((a - b).abs() < 1e-9, "controller {a}s vs filesystem {b}s");
}
