//! Property-based tests (proptest) on the core data structures and model
//! invariants.

use proptest::prelude::*;

use des::{SimTime, Simulation};
use linux_pagecache_sim::prelude::*;
use pagecache::LruLists;
use storage_model::SharedResource;

/// A randomly generated cache operation applied to the LRU lists.
#[derive(Debug, Clone)]
enum CacheOp {
    AddClean { file: u8, size: f64 },
    AddDirty { file: u8, size: f64 },
    Read { file: u8, amount: f64 },
    Flush { amount: f64 },
    Evict { amount: f64 },
    FlushExpired,
    Balance,
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u8..5, 1.0..500.0f64).prop_map(|(file, size)| CacheOp::AddClean { file, size }),
        (0u8..5, 1.0..500.0f64).prop_map(|(file, size)| CacheOp::AddDirty { file, size }),
        (0u8..5, 1.0..800.0f64).prop_map(|(file, amount)| CacheOp::Read { file, amount }),
        (0.0..800.0f64).prop_map(|amount| CacheOp::Flush { amount }),
        (0.0..800.0f64).prop_map(|amount| CacheOp::Evict { amount }),
        Just(CacheOp::FlushExpired),
        Just(CacheOp::Balance),
    ]
}

fn file_id(i: u8) -> FileId {
    FileId::new(format!("file_{i}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any sequence of operations the LRU lists stay structurally sound:
    /// sorted by last access, positive block sizes, dirty <= cached, and the
    /// per-file accounting sums to the total.
    #[test]
    fn lru_lists_invariants_hold_under_random_operations(ops in prop::collection::vec(cache_op(), 1..80)) {
        let mut lru = LruLists::new();
        let mut clock = 0.0;
        for op in ops {
            clock += 1.0;
            let now = SimTime::from_secs(clock);
            match op {
                CacheOp::AddClean { file, size } => lru.add_clean(file_id(file), size, now),
                CacheOp::AddDirty { file, size } => lru.add_dirty(file_id(file), size, now),
                CacheOp::Read { file, amount } => { lru.read_cached(&file_id(file), amount, now); }
                CacheOp::Flush { amount } => { lru.flush_lru(amount, None); }
                CacheOp::Evict { amount } => { lru.evict(amount, None); }
                CacheOp::FlushExpired => { lru.flush_expired(now, 10.0); }
                CacheOp::Balance => lru.balance(),
            }
            lru.check_invariants().unwrap();
            prop_assert!(lru.total_dirty() <= lru.total_cached() + 1e-6);
            let per_file_sum: f64 = lru.cached_per_file().values().sum();
            prop_assert!((per_file_sum - lru.total_cached()).abs() < 1e-6);
            prop_assert!(lru.inactive_bytes() + lru.active_bytes() - lru.total_cached() < 1e-6);
        }
    }

    /// Reading cached data never changes the amount of cached or dirty data.
    #[test]
    fn reading_conserves_cache_contents(
        sizes in prop::collection::vec(1.0..300.0f64, 1..10),
        read_amount in 1.0..3000.0f64,
    ) {
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        let mut clock = 0.0;
        for (i, size) in sizes.iter().enumerate() {
            clock += 1.0;
            if i % 2 == 0 {
                lru.add_clean(f.clone(), *size, SimTime::from_secs(clock));
            } else {
                lru.add_dirty(f.clone(), *size, SimTime::from_secs(clock));
            }
        }
        let cached_before = lru.total_cached();
        let dirty_before = lru.total_dirty();
        let read = lru.read_cached(&f, read_amount, SimTime::from_secs(clock + 1.0));
        prop_assert!(read <= read_amount + 1e-6);
        prop_assert!(read <= cached_before + 1e-6);
        prop_assert!((lru.total_cached() - cached_before).abs() < 1e-6);
        prop_assert!((lru.total_dirty() - dirty_before).abs() < 1e-6);
    }

    /// Flushing never changes the total cached amount, only converts dirty
    /// data to clean data, and never flushes more than requested (plus one
    /// block-split worth of slack: zero, since splits are exact).
    #[test]
    fn flush_converts_dirty_to_clean_without_losing_data(
        dirty_sizes in prop::collection::vec(1.0..200.0f64, 1..10),
        flush_amount in 0.0..3000.0f64,
    ) {
        let mut lru = LruLists::new();
        for (i, size) in dirty_sizes.iter().enumerate() {
            lru.add_dirty(file_id(i as u8), *size, SimTime::from_secs(i as f64));
        }
        let cached_before = lru.total_cached();
        let dirty_before = lru.total_dirty();
        let flushed = lru.flush_lru(flush_amount, None);
        prop_assert!(flushed <= flush_amount + 1e-6);
        prop_assert!(flushed <= dirty_before + 1e-6);
        prop_assert!((lru.total_cached() - cached_before).abs() < 1e-6);
        prop_assert!((lru.total_dirty() - (dirty_before - flushed)).abs() < 1e-6);
    }

    /// Eviction only removes clean data and never more than requested.
    #[test]
    fn evict_removes_at_most_requested_clean_data(
        clean in prop::collection::vec(1.0..200.0f64, 1..8),
        dirty in prop::collection::vec(1.0..200.0f64, 0..8),
        evict_amount in 0.0..2000.0f64,
    ) {
        let mut lru = LruLists::new();
        let mut t = 0.0;
        for size in &clean {
            t += 1.0;
            lru.add_clean("clean".into(), *size, SimTime::from_secs(t));
        }
        for size in &dirty {
            t += 1.0;
            lru.add_dirty("dirty".into(), *size, SimTime::from_secs(t));
        }
        let dirty_before = lru.total_dirty();
        let cached_before = lru.total_cached();
        let evicted = lru.evict(evict_amount, None);
        prop_assert!(evicted <= evict_amount + 1e-6);
        prop_assert!((lru.total_dirty() - dirty_before).abs() < 1e-6);
        prop_assert!((lru.total_cached() - (cached_before - evicted)).abs() < 1e-6);
    }

    /// Fair sharing conserves work: N equal transfers on one device finish in
    /// N times the single-transfer duration, regardless of N and size.
    #[test]
    fn fair_sharing_conserves_total_throughput(
        n in 1usize..12,
        bytes in 100.0..10_000.0f64,
        bandwidth in 10.0..1000.0f64,
    ) {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "dev", bandwidth, 0.0);
        for _ in 0..n {
            let res = res.clone();
            sim.spawn(async move { res.transfer(bytes).await });
        }
        let end = sim.run().as_secs();
        let expected = n as f64 * bytes / bandwidth;
        prop_assert!((end - expected).abs() < 1e-6 * expected.max(1.0),
            "n={n} bytes={bytes} bw={bandwidth}: end {end} vs expected {expected}");
    }

    /// The simulated read time of a cold file equals size/bandwidth for any
    /// size and chunk size, and a warm re-read is never slower than the cold
    /// read.
    #[test]
    fn controller_cold_read_time_matches_analytic_model(
        size_mb in 10.0..2000.0f64,
        chunk_mb in 10.0..500.0f64,
    ) {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY));
        let disk = Disk::new(&ctx, "d", DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY));
        let mm = MemoryManager::new(&ctx, PageCacheConfig::with_memory(16.0 * GB), memory, disk);
        let io = IoController::new(&ctx, mm).with_chunk_size(chunk_mb * MB);
        let h = sim.spawn(async move {
            let cold = io.read_file(&"f".into(), size_mb * MB).await;
            let warm = io.read_file(&"f".into(), size_mb * MB).await;
            (cold.duration, warm.duration)
        });
        sim.run();
        let (cold, warm) = h.try_take_result().unwrap();
        let expected = size_mb / 465.0;
        prop_assert!((cold - expected).abs() < 1e-6 * expected.max(1.0));
        prop_assert!(warm <= cold + 1e-9);
    }
}
