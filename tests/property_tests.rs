//! Randomized property tests on the core data structures and model
//! invariants.
//!
//! crates.io is not reachable in this build environment, so instead of
//! `proptest` these tests use a small deterministic xorshift generator: each
//! case derives from a fixed seed, failures are reproducible, and the
//! properties checked are the same as in the original proptest formulation.

use des::{SimTime, Simulation};
use linux_pagecache_sim::prelude::*;
use pagecache::LruLists;
use storage_model::SharedResource;

/// Deterministic xorshift64* PRNG, good enough for property sampling.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform f64 in [lo, hi).
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// Uniform usize in [lo, hi).
    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A randomly generated cache operation applied to the LRU lists.
#[derive(Debug, Clone)]
enum CacheOp {
    AddClean { file: u8, size: f64 },
    AddDirty { file: u8, size: f64 },
    Read { file: u8, amount: f64 },
    Flush { amount: f64 },
    Evict { amount: f64 },
    FlushExpired,
    Balance,
}

fn cache_op(rng: &mut Rng) -> CacheOp {
    match rng.usize(0, 7) {
        0 => CacheOp::AddClean {
            file: rng.usize(0, 5) as u8,
            size: rng.f64(1.0, 500.0),
        },
        1 => CacheOp::AddDirty {
            file: rng.usize(0, 5) as u8,
            size: rng.f64(1.0, 500.0),
        },
        2 => CacheOp::Read {
            file: rng.usize(0, 5) as u8,
            amount: rng.f64(1.0, 800.0),
        },
        3 => CacheOp::Flush {
            amount: rng.f64(0.0, 800.0),
        },
        4 => CacheOp::Evict {
            amount: rng.f64(0.0, 800.0),
        },
        5 => CacheOp::FlushExpired,
        _ => CacheOp::Balance,
    }
}

fn file_id(i: u8) -> FileId {
    FileId::new(format!("file_{i}"))
}

/// After any sequence of operations the LRU lists stay structurally sound:
/// sorted by last access, positive block sizes, dirty <= cached, and the
/// per-file accounting sums to the total.
#[test]
fn lru_lists_invariants_hold_under_random_operations() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xA11CE ^ (case << 16));
        let mut lru = LruLists::new();
        let mut clock = 0.0;
        let op_count = rng.usize(1, 80);
        for _ in 0..op_count {
            clock += 1.0;
            let now = SimTime::from_secs(clock);
            match cache_op(&mut rng) {
                CacheOp::AddClean { file, size } => lru.add_clean(file_id(file), size, now),
                CacheOp::AddDirty { file, size } => lru.add_dirty(file_id(file), size, now),
                CacheOp::Read { file, amount } => {
                    lru.read_cached(&file_id(file), amount, now);
                }
                CacheOp::Flush { amount } => {
                    lru.flush_lru(amount, None);
                }
                CacheOp::Evict { amount } => {
                    lru.evict(amount, None);
                }
                CacheOp::FlushExpired => {
                    lru.flush_expired(now, 10.0);
                }
                CacheOp::Balance => lru.balance(),
            }
            lru.check_invariants().unwrap();
            assert!(lru.total_dirty() <= lru.total_cached() + 1e-6);
            // Compare the incremental aggregates against scans of the actual
            // block lists (not against each other — since the aggregate
            // rewrite they share the same counters, so only an independent
            // scan can catch drift).
            let scan_cached: f64 = lru.iter_all().map(|b| b.size).sum();
            let scan_inactive: f64 = lru.inactive_blocks().map(|b| b.size).sum();
            let per_file_sum: f64 = lru.cached_per_file().values().sum();
            assert!((per_file_sum - scan_cached).abs() < 1e-6);
            assert!((lru.total_cached() - scan_cached).abs() < 1e-6);
            assert!((lru.inactive_bytes() - scan_inactive).abs() < 1e-6);
            assert!((lru.active_bytes() - (scan_cached - scan_inactive)).abs() < 1e-6);
        }
    }
}

/// Reading cached data never changes the amount of cached or dirty data.
#[test]
fn reading_conserves_cache_contents() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xB0B ^ (case << 16));
        let mut lru = LruLists::new();
        let f: FileId = "f".into();
        let mut clock = 0.0;
        let n = rng.usize(1, 10);
        for i in 0..n {
            clock += 1.0;
            let size = rng.f64(1.0, 300.0);
            if i % 2 == 0 {
                lru.add_clean(f.clone(), size, SimTime::from_secs(clock));
            } else {
                lru.add_dirty(f.clone(), size, SimTime::from_secs(clock));
            }
        }
        let read_amount = rng.f64(1.0, 3000.0);
        let cached_before = lru.total_cached();
        let dirty_before = lru.total_dirty();
        let read = lru.read_cached(&f, read_amount, SimTime::from_secs(clock + 1.0));
        assert!(read <= read_amount + 1e-6);
        assert!(read <= cached_before + 1e-6);
        assert!((lru.total_cached() - cached_before).abs() < 1e-6);
        assert!((lru.total_dirty() - dirty_before).abs() < 1e-6);
    }
}

/// Flushing never changes the total cached amount, only converts dirty data
/// to clean data, and never flushes more than requested.
#[test]
fn flush_converts_dirty_to_clean_without_losing_data() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xF1A5 ^ (case << 16));
        let mut lru = LruLists::new();
        let n = rng.usize(1, 10);
        for i in 0..n {
            lru.add_dirty(
                file_id(i as u8),
                rng.f64(1.0, 200.0),
                SimTime::from_secs(i as f64),
            );
        }
        let flush_amount = rng.f64(0.0, 3000.0);
        let cached_before = lru.total_cached();
        let dirty_before = lru.total_dirty();
        let flushed = lru.flush_lru(flush_amount, None);
        assert!(flushed <= flush_amount + 1e-6);
        assert!(flushed <= dirty_before + 1e-6);
        assert!((lru.total_cached() - cached_before).abs() < 1e-6);
        assert!((lru.total_dirty() - (dirty_before - flushed)).abs() < 1e-6);
    }
}

/// Eviction only removes clean data and never more than requested.
#[test]
fn evict_removes_at_most_requested_clean_data() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xE51C7 ^ (case << 16));
        let mut lru = LruLists::new();
        let mut t = 0.0;
        for _ in 0..rng.usize(1, 8) {
            t += 1.0;
            lru.add_clean("clean".into(), rng.f64(1.0, 200.0), SimTime::from_secs(t));
        }
        for _ in 0..rng.usize(0, 8) {
            t += 1.0;
            lru.add_dirty("dirty".into(), rng.f64(1.0, 200.0), SimTime::from_secs(t));
        }
        let evict_amount = rng.f64(0.0, 2000.0);
        let dirty_before = lru.total_dirty();
        let cached_before = lru.total_cached();
        let evicted = lru.evict(evict_amount, None);
        assert!(evicted <= evict_amount + 1e-6);
        assert!((lru.total_dirty() - dirty_before).abs() < 1e-6);
        assert!((lru.total_cached() - (cached_before - evicted)).abs() < 1e-6);
    }
}

/// Fair sharing conserves work: N equal transfers on one device finish in N
/// times the single-transfer duration, regardless of N and size.
#[test]
fn fair_sharing_conserves_total_throughput() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5EED ^ (case << 16));
        let n = rng.usize(1, 12);
        let bytes = rng.f64(100.0, 10_000.0);
        let bandwidth = rng.f64(10.0, 1000.0);
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "dev", bandwidth, 0.0);
        for _ in 0..n {
            let res = res.clone();
            sim.spawn(async move { res.transfer(bytes).await });
        }
        let end = sim.run().as_secs();
        let expected = n as f64 * bytes / bandwidth;
        assert!(
            (end - expected).abs() < 1e-6 * expected.max(1.0),
            "n={n} bytes={bytes} bw={bandwidth}: end {end} vs expected {expected}"
        );
    }
}

/// The simulated read time of a cold file equals size/bandwidth for any size
/// and chunk size, and a warm re-read is never slower than the cold read.
#[test]
fn controller_cold_read_time_matches_analytic_model() {
    for case in 0..32u64 {
        let mut rng = Rng::new(0xC01D ^ (case << 16));
        let size_mb = rng.f64(10.0, 2000.0);
        let chunk_mb = rng.f64(10.0, 500.0);
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory =
            MemoryDevice::new(&ctx, DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "d",
            DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
        );
        let mm = MemoryManager::new(&ctx, PageCacheConfig::with_memory(16.0 * GB), memory, disk);
        let io = IoController::new(&ctx, mm).with_chunk_size(chunk_mb * MB);
        let h = sim.spawn(async move {
            let cold = io.read_file(&"f".into(), size_mb * MB).await;
            let warm = io.read_file(&"f".into(), size_mb * MB).await;
            (cold.duration, warm.duration)
        });
        sim.run();
        let (cold, warm) = h.try_take_result().unwrap();
        let expected = size_mb / 465.0;
        assert!(
            (cold - expected).abs() < 1e-6 * expected.max(1.0),
            "size={size_mb}MB chunk={chunk_mb}MB: cold {cold} vs expected {expected}"
        );
        assert!(warm <= cold + 1e-9);
    }
}
