//! Network-tier fault tolerance: runs against the replicated storage fleet
//! complete *degraded* — not hung, not panicked — under partitions, server
//! crashes and flapping links.

use linux_pagecache_sim::prelude::*;
use workflow::net::{server_host, server_link};

const NET_BW: f64 = 100.0 * MB;

/// A fleet platform: uniform devices plus a replicated-storage spec.
fn fleet_platform(clients: usize, servers: usize, replication: usize) -> PlatformSpec {
    let mut p = PlatformSpec::uniform(
        2.0 * GB,
        DeviceSpec::symmetric(1000.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(100.0 * MB, 0.0, f64::INFINITY),
    );
    p.simulated.network_bandwidth = NET_BW;
    p.real.network_bandwidth = NET_BW;
    p.with_fleet(FleetSpec::new(clients, servers, replication))
}

#[test]
fn never_healing_partition_completes_degraded() {
    // Clients are cut off from every server at t=0 and the partition never
    // heals. The retry budget is bounded, so the run must terminate with
    // failed tasks instead of hanging.
    let platform = fleet_platform(2, 2, 1);
    let app = ApplicationSpec::new("partitioned")
        .with_initial_file(FileSpec::new("shared/hot", 64.0 * MB))
        .with_task(TaskSpec::program("reader", vec![Op::read("shared/hot")]));
    let plan = FaultPlan::none().with_event(FaultEvent::Partition {
        groups: vec![
            vec!["client00".into(), "client01".into()],
            vec![server_host(0), server_host(1)],
        ],
        at: 0.0,
        duration: f64::INFINITY,
    });
    let scenario = Scenario::new(platform, app, SimulatorKind::PageCache)
        .with_instances(2)
        .unwrap()
        .with_faults(plan);
    let report = run_scenario(&scenario).unwrap();
    assert!(report.simulated_duration.is_finite());
    let net = report.net.as_ref().expect("fleet runs carry a net report");
    assert!(net.failed_reads > 0.0, "reads should fail: {net:?}");
    for instance in &report.instance_reports {
        for task in &instance.tasks {
            match &task.status {
                TaskStatus::Failed(fault) => {
                    assert_eq!(fault.op, OpClass::Read);
                    assert!(fault.to_string().contains("network"), "{fault}");
                }
                other => panic!("expected a degraded failure, got {other:?}"),
            }
        }
    }
}

#[test]
fn server_crash_mid_writeback_fails_over() {
    // The primary of the written file crashes while its write-back cache is
    // still dirty. Writes to the dead replica are surfaced, reads fail over
    // to the survivor, and the crash report records what the dead server's
    // disk retained.
    let platform = fleet_platform(2, 3, 2);
    let app = ApplicationSpec::new("crash-failover").with_task(TaskSpec::program(
        "writer",
        vec![Op::write("shared/out", 256.0 * MB), Op::read("shared/out")],
    ));
    // Crash whichever server is primary for the shared file, mid transfer.
    let sample = workflow::net::primary_server(3, "shared/out");
    let plan = FaultPlan::none().with_event(FaultEvent::ServerCrash {
        host: server_host(sample),
        at: 1.0,
    });
    let scenario = Scenario::new(platform, app, SimulatorKind::PageCache).with_faults(plan);
    let report = run_scenario(&scenario).unwrap();
    let net = report.net.as_ref().unwrap();
    assert_eq!(net.server_crashes.len(), 1);
    assert_eq!(net.server_crashes[0].0, server_host(sample));
    // The run completed: the surviving replica absorbed the read.
    assert!(report.simulated_duration.is_finite());
    assert!(
        net.failed_writes > 0.0 || net.failovers > 0.0,
        "the crash should be visible in the net report: {net:?}"
    );
}

#[test]
fn flapping_link_retries_and_converges() {
    // One server, replication 1: every outage window forces clients into
    // timeout + backoff, but the link always comes back, so every task
    // eventually completes.
    // Small chunks so a contended (but healthy) link never trips the
    // timeout: only genuine outage windows do.
    let platform = fleet_platform(2, 1, 1)
        .with_chunk_size(16.0 * MB)
        .with_fleet(
            FleetSpec::new(2, 1, 1).with_policy(
                ClientPolicy::default()
                    .with_timeout(2.0)
                    .with_retry(RetryPolicy::new(8, 0.5)),
            ),
        );
    let app = ApplicationSpec::new("flapping")
        .with_initial_file(FileSpec::new("shared/data", 128.0 * MB))
        .with_task(TaskSpec::program("reader", vec![Op::read("shared/data")]));
    let mut plan = FaultPlan::none();
    for i in 0..3 {
        plan = plan.with_event(FaultEvent::LinkDown {
            link: server_link(0),
            at: 0.2 + 3.0 * f64::from(i),
            duration: 1.0,
        });
    }
    let scenario = Scenario::new(platform, app, SimulatorKind::PageCache)
        .with_instances(2)
        .unwrap()
        .with_faults(plan);
    let report = run_scenario(&scenario).unwrap();
    let net = report.net.as_ref().unwrap();
    assert!(
        net.net_retries > 0.0,
        "outages should force retries: {net:?}"
    );
    assert_eq!(net.failed_reads, 0.0, "retries should absorb the flaps");
    for instance in &report.instance_reports {
        assert!(instance.tasks.iter().all(|t| t.status.is_completed()));
    }
}

#[test]
fn degenerate_fabric_link_matches_a_plain_network_link() {
    // The legacy NFS back-end now draws its link from a one-client,
    // one-server, one-link fabric. A channel obtained through the fabric
    // must behave bit-identically to a directly constructed NetworkLink.
    let sim = Simulation::new();
    let ctx = sim.context();
    let task_ctx = ctx.clone();
    let plain = NetworkLink::new(&ctx, "plain", NET_BW, 0.01);
    let fabric = workflow::net::Fabric::new(&ctx);
    fabric.add_host("client");
    fabric.add_host("server");
    fabric.add_link("fabric-link", NET_BW, 0.01);
    fabric.add_route("client", "server", "fabric-link");
    let via_fabric = NetworkLink::from_channel(fabric.link_channel("fabric-link").unwrap());
    let handle = ctx.spawn(async move {
        let start = task_ctx.now();
        plain.transfer(64.0 * MB).await;
        let direct = task_ctx.now().duration_since(start);
        let start = task_ctx.now();
        via_fabric.transfer(64.0 * MB).await;
        let fabricated = task_ctx.now().duration_since(start);
        (direct, fabricated)
    });
    sim.run();
    let (direct, fabricated) = handle.try_take_result().unwrap();
    assert_eq!(direct, fabricated);
    assert!(direct > 0.0);
}
