//! File-level front end of the kernel emulator, mirroring the API of
//! `simfs::CachedFileSystem` so the workflow layer can use the emulator as the
//! "real system" back-end.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use des::SimContext;
use pagecache::{FileId, IoOpStats};
use storage_model::Disk;

use crate::cache::KernelCache;

const EPS: f64 = 1e-6;

/// Default request size used by the emulated VFS layer (bytes).
pub const DEFAULT_REQUEST_SIZE: f64 = 100.0 * 1e6;

/// A local filesystem whose behaviour is emulated at kernel fidelity
/// (background writeback, writer throttling, eviction protection).
#[derive(Clone)]
pub struct KernelFileSystem {
    ctx: SimContext,
    cache: KernelCache,
    disk: Disk,
    files: Rc<RefCell<BTreeMap<FileId, f64>>>,
    request_size: f64,
}

impl KernelFileSystem {
    /// Creates an emulated filesystem on `disk` with the given page cache.
    pub fn new(ctx: &SimContext, cache: KernelCache, disk: Disk) -> Self {
        KernelFileSystem {
            ctx: ctx.clone(),
            cache,
            disk,
            files: Rc::new(RefCell::new(BTreeMap::new())),
            request_size: DEFAULT_REQUEST_SIZE,
        }
    }

    /// Overrides the request size the emulated VFS uses.
    pub fn with_request_size(mut self, request_size: f64) -> Self {
        assert!(request_size > 0.0, "request size must be positive");
        self.request_size = request_size;
        self
    }

    /// The emulated page cache.
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// The backing disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Registers a pre-existing file without simulating I/O.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), String> {
        self.disk.allocate(size).map_err(|e| e.to_string())?;
        self.files.borrow_mut().insert(file.clone(), size.max(0.0));
        Ok(())
    }

    /// Size of a registered file.
    pub fn file_size(&self, file: &FileId) -> Option<f64> {
        self.files.borrow().get(file).copied()
    }

    /// Deletes a file: frees disk space and drops its cached pages.
    pub fn delete_file(&self, file: &FileId) -> Result<(), String> {
        let size = self
            .files
            .borrow_mut()
            .remove(file)
            .ok_or_else(|| format!("file '{file}' not found"))?;
        self.disk.free(size);
        self.cache.invalidate_file(file);
        Ok(())
    }

    /// Reads a whole file through the emulated cache.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, String> {
        let size = self
            .file_size(file)
            .ok_or_else(|| format!("file '{file}' not found"))?;
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();
        let mut remaining = size;
        while remaining > EPS {
            let chunk = remaining.min(self.request_size);
            let cached = self.cache.cached_amount(file);
            let uncached = (size - cached).max(0.0);
            let from_disk = chunk.min(uncached);
            let from_cache = chunk - from_disk;

            // Reclaim: make room for the anonymous copy plus the new pages.
            let required = chunk + from_disk;
            let missing = required - self.cache.free_memory();
            if missing > EPS {
                let evicted = self.cache.evict(missing, Some(file));
                let still = missing - evicted;
                if still > EPS {
                    // Direct reclaim also writes back dirty pages if eviction
                    // alone is not enough.
                    let flushed = self.cache.write_back(still, true).await;
                    stats.bytes_to_disk += flushed;
                    self.cache.evict(still, None);
                }
            }

            if from_disk > EPS {
                self.disk.read(from_disk).await;
                self.cache.insert_clean(file, from_disk);
                stats.bytes_from_disk += from_disk;
                stats.bytes_to_cache += from_disk;
            }
            if from_cache > EPS {
                self.cache.memory().read(from_cache).await;
                self.cache.touch(file, from_cache);
                stats.bytes_from_cache += from_cache;
            }
            self.cache.use_anonymous_memory(chunk);
            remaining -= chunk;
        }
        stats.duration = self.ctx.now().duration_since(start);
        Ok(stats)
    }

    /// Writes a whole file through the emulated cache (writeback semantics
    /// with `balance_dirty_pages`-style throttling).
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, String> {
        if let Some(old) = self.files.borrow_mut().insert(file.clone(), size.max(0.0)) {
            self.disk.free(old);
        }
        self.disk.allocate(size).map_err(|e| e.to_string())?;
        self.cache.set_write_open(file, true);
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();
        let mut remaining = size;
        while remaining > EPS {
            let chunk = remaining.min(self.request_size);

            // balance_dirty_pages: above the dirty threshold the writer itself
            // writes back, down to the background threshold.
            let projected_dirty = self.cache.dirty() + chunk;
            if projected_dirty > self.cache.dirty_threshold() {
                let target = (projected_dirty - self.cache.background_threshold()).max(0.0);
                let flushed = self.cache.write_back(target, true).await;
                stats.bytes_to_disk += flushed;
            }

            // Make room for the new dirty pages.
            let missing = chunk - self.cache.free_memory();
            if missing > EPS {
                let evicted = self.cache.evict(missing, Some(file));
                if missing - evicted > EPS {
                    let flushed = self.cache.write_back(missing - evicted, true).await;
                    stats.bytes_to_disk += flushed;
                    self.cache.evict(missing - evicted, None);
                }
            }

            self.cache.memory().write(chunk).await;
            self.cache.insert_dirty(file, chunk);
            stats.bytes_to_cache += chunk;
            remaining -= chunk;
        }
        self.cache.set_write_open(file, false);
        stats.duration = self.ctx.now().duration_since(start);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::KernelTuning;
    use des::Simulation;
    use storage_model::{units::MB, DeviceSpec, MemoryDevice};

    fn approx_pct(a: f64, b: f64, pct: f64) {
        assert!(
            (a - b).abs() <= pct / 100.0 * b.abs().max(1.0),
            "expected {b} ±{pct}%, got {a}"
        );
    }

    fn setup(total_mb: f64) -> (Simulation, KernelFileSystem) {
        let sim = Simulation::new();
        let ctx = sim.context();
        // Real-cluster style asymmetric bandwidths (Table III).
        let memory = MemoryDevice::new(
            &ctx,
            DeviceSpec::asymmetric(6860.0 * MB, 2764.0 * MB, 0.0, f64::INFINITY),
        );
        let disk = Disk::new(
            &ctx,
            "ssd",
            DeviceSpec::asymmetric(510.0 * MB, 420.0 * MB, 0.0, f64::INFINITY),
        );
        let cache = KernelCache::new(
            &ctx,
            KernelTuning::with_memory(total_mb * MB),
            memory,
            disk.clone(),
        );
        let fs = KernelFileSystem::new(&ctx, cache, disk);
        (sim, fs)
    }

    #[test]
    fn cold_read_then_warm_read() {
        let (sim, fs) = setup(10_000.0);
        fs.create_file(&"f".into(), 1000.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let cold = fs.read_file(&"f".into()).await.unwrap();
                fs.cache().release_anonymous_memory(1000.0 * MB);
                let warm = fs.read_file(&"f".into()).await.unwrap();
                (cold, warm)
            }
        });
        sim.run();
        let (cold, warm) = h.try_take_result().unwrap();
        approx_pct(cold.duration, 1000.0 / 510.0, 1.0);
        approx_pct(warm.duration, 1000.0 / 6860.0, 1.0);
        approx_pct(cold.bytes_from_disk, 1000.0 * MB, 0.1);
        approx_pct(warm.bytes_from_cache, 1000.0 * MB, 0.1);
    }

    #[test]
    fn write_within_thresholds_is_memory_speed() {
        let (sim, fs) = setup(10_000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.write_file(&"out".into(), 500.0 * MB).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx_pct(stats.duration, 500.0 / 2764.0, 1.0);
        approx_pct(stats.bytes_to_cache, 500.0 * MB, 0.1);
        assert_eq!(stats.bytes_to_disk, 0.0);
        approx_pct(fs.cache().dirty(), 500.0 * MB, 0.1);
    }

    #[test]
    fn large_write_is_throttled_to_disk_bandwidth() {
        // 1000 MB of RAM: dirty threshold 200 MB, background threshold 100 MB.
        let (sim, fs) = setup(1000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.write_file(&"out".into(), 600.0 * MB).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        // Most of the data had to be written back synchronously.
        assert!(
            stats.bytes_to_disk >= 350.0 * MB,
            "flushed {}",
            stats.bytes_to_disk
        );
        assert!(
            stats.duration > 600.0 / 420.0 * 0.5,
            "duration {}",
            stats.duration
        );
        // Dirty data stays under the dirty threshold.
        assert!(fs.cache().dirty() <= fs.cache().dirty_threshold() + 1.0);
    }

    #[test]
    fn writeback_threads_drain_dirty_data_in_background() {
        let (sim, fs) = setup(10_000.0);
        fs.cache().spawn_writeback_threads();
        let ctx = sim.context();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                fs.write_file(&"out".into(), 1500.0 * MB).await.unwrap();
                let dirty_right_after = fs.cache().dirty();
                ctx.sleep(10.0).await;
                let dirty_later = fs.cache().dirty();
                fs.cache().stop();
                (dirty_right_after, dirty_later)
            }
        });
        sim.run();
        let (right_after, later) = h.try_take_result().unwrap();
        // 1500 MB dirty > 10 % of 10 GB => the background threads start
        // draining before the 30 s expiration.
        assert!(right_after > 1400.0 * MB);
        assert!(
            later <= fs.cache().background_threshold() + 1.0,
            "later = {later}"
        );
    }

    #[test]
    fn file_bookkeeping() {
        let (sim, fs) = setup(1000.0);
        fs.create_file(&"a".into(), 100.0 * MB).unwrap();
        assert_eq!(fs.file_size(&"a".into()), Some(100.0 * MB));
        assert!(fs.file_size(&"b".into()).is_none());
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_file(&"missing".into()).await }
        });
        sim.run();
        assert!(h.try_take_result().unwrap().is_err());
        fs.delete_file(&"a".into()).unwrap();
        assert!(fs.delete_file(&"a".into()).is_err());
        assert_eq!(fs.disk().used(), 0.0);
    }
}
