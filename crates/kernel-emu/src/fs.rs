//! File-level front end of the kernel emulator, mirroring the API of
//! `simfs::CachedFileSystem` so the workflow layer can use the emulator as the
//! "real system" back-end.
//!
//! Unlike the macroscopic filesystems, reads here are planned against the
//! cache's *resident page ranges*: a request for `[offset, offset + len)`
//! reads exactly the non-resident sub-ranges from disk and serves the rest
//! from memory, so random and partial access patterns are modelled at page
//! fidelity. Whole-file operations are corollaries of the range operations.
//!
//! ## Readahead
//!
//! When [`KernelTuning::readahead_max`](crate::KernelTuning) is non-zero,
//! each file carries a Linux-style readahead stream: a request continuing
//! exactly where the previous one ended (or a fresh stream starting at
//! offset 0) is *sequential* and grows the per-file window — starting at
//! `readahead_min`, doubling per sequential request up to `readahead_max` —
//! while any other request collapses it to zero. After a sequential request
//! is served, the non-resident part of the window beyond it is read from
//! disk as extra traffic (`IoOpStats::bytes_prefetched`) and inserted into
//! the cache's resident [range set](crate::KernelCache::uncovered) ahead of
//! demand. Prefetch is speculative: it only reads *gaps* (never a byte
//! twice) and never triggers reclaim — the plan is clipped to the free
//! memory headroom.
//!
//! ## Writer throttling
//!
//! Writes are balanced against the dirty thresholds twice. At the **dirty
//! ratio** the writer itself writes back down to the background threshold
//! (the hard `balance_dirty_pages` leg the emulator always had); with
//! [`KernelTuning::throttle_pacing`](crate::KernelTuning) non-zero, writers
//! are additionally *paced* while dirty data sits **between** the background
//! and the dirty threshold — stalled after each request proportionally to
//! how deep into the band the host is, converging on disk write bandwidth at
//! the limit, exactly the steady state of the kernel's task rate limit. Time
//! spent in either leg is reported as `IoOpStats::throttle_stall` and
//! accumulated in [`KernelCacheCounters`](crate::KernelCacheCounters).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use des::SimContext;
use pagecache::{clamp_io_range, FileId, IoOpStats};
use storage_model::Disk;

use crate::cache::KernelCache;
use crate::error::KernelFsError;

const EPS: f64 = 1e-6;

/// Default request size used by the emulated VFS layer (bytes).
pub const DEFAULT_REQUEST_SIZE: f64 = 100.0 * 1e6;

/// Per-file bookkeeping of the emulated VFS layer: the registered size plus
/// the state of the file's readahead stream (Linux keeps this in
/// `struct file_ra_state`; files here are opened implicitly, so the stream
/// is per file).
#[derive(Debug, Clone, Copy)]
struct FileMeta {
    /// Registered file size in bytes.
    size: f64,
    /// Where the next sequential request is expected to start (the end of
    /// the last demand request). `None` until the file is first read.
    ra_next: Option<f64>,
    /// Current readahead window in bytes (0 = collapsed).
    ra_window: f64,
}

impl FileMeta {
    fn new(size: f64) -> Self {
        FileMeta {
            size: size.max(0.0),
            ra_next: None,
            ra_window: 0.0,
        }
    }
}

/// A local filesystem whose behaviour is emulated at kernel fidelity
/// (background writeback, readahead, writer throttling, eviction
/// protection).
#[derive(Clone)]
pub struct KernelFileSystem {
    ctx: SimContext,
    cache: KernelCache,
    disk: Disk,
    files: Rc<RefCell<BTreeMap<FileId, FileMeta>>>,
    request_size: f64,
}

impl KernelFileSystem {
    /// Creates an emulated filesystem on `disk` with the given page cache.
    pub fn new(ctx: &SimContext, cache: KernelCache, disk: Disk) -> Self {
        KernelFileSystem {
            ctx: ctx.clone(),
            cache,
            disk,
            files: Rc::new(RefCell::new(BTreeMap::new())),
            request_size: DEFAULT_REQUEST_SIZE,
        }
    }

    /// Overrides the request size the emulated VFS uses.
    pub fn with_request_size(mut self, request_size: f64) -> Self {
        assert!(request_size > 0.0, "request size must be positive");
        self.request_size = request_size;
        self
    }

    /// The emulated page cache.
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// The backing disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Registers a pre-existing file without simulating I/O.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), KernelFsError> {
        self.disk.allocate(size)?;
        self.files
            .borrow_mut()
            .insert(file.clone(), FileMeta::new(size));
        Ok(())
    }

    /// Size of a registered file.
    pub fn file_size(&self, file: &FileId) -> Option<f64> {
        self.files.borrow().get(file).map(|m| m.size)
    }

    /// Every registered file and its size, sorted by file id (the same shape
    /// as `simfs::FileRegistry::list`, used by crash durability reports).
    pub fn list_files(&self) -> Vec<(FileId, f64)> {
        self.files
            .borrow()
            .iter()
            .map(|(k, m)| (k.clone(), m.size))
            .collect()
    }

    fn require_size(&self, file: &FileId) -> Result<f64, KernelFsError> {
        self.file_size(file)
            .ok_or_else(|| KernelFsError::FileNotFound(file.clone()))
    }

    /// Deletes a file: frees disk space and drops its cached pages.
    pub fn delete_file(&self, file: &FileId) -> Result<(), KernelFsError> {
        let meta = self
            .files
            .borrow_mut()
            .remove(file)
            .ok_or_else(|| KernelFsError::FileNotFound(file.clone()))?;
        self.disk.free(meta.size);
        self.cache.invalidate_file(file);
        Ok(())
    }

    /// Reads a whole file through the emulated cache. A corollary of
    /// [`KernelFileSystem::read_range`] over `[0, size)`.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, KernelFsError> {
        self.read_range(file, 0.0, f64::INFINITY).await
    }

    /// Reads `len` bytes of `file` starting at `offset` through the emulated
    /// cache (`len = f64::INFINITY` reads to end of file; the range is
    /// clamped to the file). The emulator tracks resident page ranges, so
    /// exactly the non-resident bytes of the request are read from disk.
    pub async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, KernelFsError> {
        let size = self.require_size(file)?;
        let (range_start, amount) = clamp_io_range(offset, len, size);
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();
        let mut pos = range_start;
        let end = range_start + amount;
        while end - pos > EPS {
            let chunk_end = (pos + self.request_size).min(end);
            let chunk = chunk_end - pos;
            // The disk-read plan is captured *before* reclaim: if direct
            // reclaim below evicts pages of this very range, the bytes
            // inserted afterwards are still exactly the bytes read from
            // disk (the just-evicted part is served at memory speed — the
            // same approximation the amount-based model makes).
            let plan = self.cache.uncovered(file, pos, chunk_end);
            let from_disk: f64 = plan.iter().map(|(a, b)| b - a).sum();
            let from_cache = (chunk - from_disk).max(0.0);

            // Reclaim: make room for the anonymous copy plus the new pages.
            let required = chunk + from_disk;
            let missing = required - self.cache.free_memory();
            if missing > EPS {
                let evicted = self.cache.evict(missing, Some(file));
                let still = missing - evicted;
                if still > EPS {
                    // Direct reclaim also writes back dirty pages if eviction
                    // alone is not enough.
                    let flushed = self.cache.write_back(still, true).await;
                    stats.bytes_to_disk += flushed;
                    self.cache.evict(still, None);
                }
            }

            if from_disk > EPS {
                self.disk.read(from_disk).await;
                for &(a, b) in &plan {
                    self.cache.insert_clean_range(file, a, b);
                }
                stats.bytes_from_disk += from_disk;
                stats.bytes_to_cache += from_disk;
            }
            if from_cache > EPS {
                self.cache.memory().read(from_cache).await;
                self.cache.touch(file, from_cache);
                stats.bytes_from_cache += from_cache;
            }
            self.readahead(file, size, pos, chunk_end, chunk, &mut stats)
                .await;
            self.cache.use_anonymous_memory(chunk);
            pos = chunk_end;
        }
        stats.duration = self.ctx.now().duration_since(start);
        Ok(stats)
    }

    /// The readahead leg of one demand request `[start, end)`: updates the
    /// file's stream state (sequentiality detection, window growth/collapse)
    /// and, when a window is open, reads the non-resident part of
    /// `[end, end + window)` from disk ahead of demand. `pending_anon` is
    /// the anonymous copy of the demand chunk that has not been charged yet;
    /// the speculative read never triggers reclaim, so its plan is clipped
    /// to the free headroom left after that charge.
    async fn readahead(
        &self,
        file: &FileId,
        file_size: f64,
        start: f64,
        end: f64,
        pending_anon: f64,
        stats: &mut IoOpStats,
    ) {
        let tuning = self.cache.tuning();
        let (ra_min, ra_max) = (tuning.readahead_min, tuning.readahead_max);
        if ra_max <= EPS {
            return;
        }
        let window = {
            let mut files = self.files.borrow_mut();
            let Some(meta) = files.get_mut(file) else {
                return;
            };
            // A request is sequential when it continues exactly where the
            // previous one ended — or when it is the very first request of
            // the file and starts at offset 0 (Linux fires initial readahead
            // from `do_sync_mmap_readahead` / `page_cache_sync_ra` there).
            let sequential = match meta.ra_next {
                Some(next) => (start - next).abs() <= EPS,
                None => start.abs() <= EPS,
            };
            meta.ra_window = if !sequential {
                0.0
            } else if meta.ra_window <= EPS {
                ra_min.min(ra_max)
            } else {
                (meta.ra_window * 2.0).min(ra_max)
            };
            meta.ra_next = Some(end);
            meta.ra_window
        };
        if window <= EPS {
            return;
        }
        let ra_end = (end + window).min(file_size);
        // Only gaps are fetched — readahead never reads a byte twice — and
        // the plan stops at the free-memory budget instead of evicting
        // anything (the kernel drops readahead under pressure too).
        let budget = (self.cache.free_memory() - pending_anon).max(0.0);
        let mut planned = 0.0;
        let mut plan = Vec::new();
        for (a, b) in self.cache.uncovered(file, end, ra_end) {
            if planned >= budget - EPS {
                break;
            }
            let b = b.min(a + (budget - planned));
            if b - a > EPS {
                planned += b - a;
                plan.push((a, b));
            }
        }
        if planned <= EPS {
            return;
        }
        self.disk.read(planned).await;
        for &(a, b) in &plan {
            self.cache.insert_clean_range(file, a, b);
        }
        self.cache.note_prefetch(planned);
        stats.bytes_from_disk += planned;
        stats.bytes_to_cache += planned;
        stats.bytes_prefetched += planned;
    }

    /// Writes a whole file through the emulated cache (writeback semantics
    /// with `balance_dirty_pages`-style throttling). Replaces the file's
    /// registration (truncate semantics), then behaves like a range write of
    /// `[0, size)`.
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, KernelFsError> {
        if !size.is_finite() {
            return Err(KernelFsError::InvalidRange {
                offset: 0.0,
                len: size,
            });
        }
        // Truncate semantics: the registration (and with it the readahead
        // stream) is replaced wholesale, and — like `open(O_TRUNC)` — the
        // old resident pages are dropped, dirty ones discarded unwritten.
        // Without this, pages beyond the new EOF would linger as phantom
        // cached bytes no read can ever hit (reads clamp to the new size).
        if let Some(old) = self
            .files
            .borrow_mut()
            .insert(file.clone(), FileMeta::new(size))
        {
            self.disk.free(old.size);
            self.cache.invalidate_file(file);
        }
        self.disk.allocate(size)?;
        self.write_span(file, 0.0, size.max(0.0)).await
    }

    /// Writes `len` bytes at `offset` through the emulated cache, creating
    /// the file or extending it to `offset + len` as needed (never shrinking
    /// it).
    pub async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, KernelFsError> {
        if !offset.is_finite() || !len.is_finite() {
            return Err(KernelFsError::InvalidRange { offset, len });
        }
        let offset = offset.max(0.0);
        let len = len.max(0.0);
        let new_end = offset + len;
        let old = self.file_size(file);
        match old {
            Some(old) if new_end > old => {
                self.disk.allocate(new_end - old)?;
                // Extension keeps the readahead stream: only the size moves.
                self.files
                    .borrow_mut()
                    .entry(file.clone())
                    .and_modify(|m| m.size = new_end);
            }
            Some(_) => {}
            None => {
                self.disk.allocate(new_end)?;
                self.files
                    .borrow_mut()
                    .insert(file.clone(), FileMeta::new(new_end));
            }
        }
        self.write_span(file, offset, offset + len).await
    }

    /// The common write loop over `[start, end)`: dirty-threshold balancing,
    /// reclaim, and page insertion at the true offsets.
    async fn write_span(
        &self,
        file: &FileId,
        start: f64,
        end: f64,
    ) -> Result<IoOpStats, KernelFsError> {
        self.cache.set_write_open(file, true);
        let t0 = self.ctx.now();
        let mut stats = IoOpStats::default();
        let mut pos = start;
        while end - pos > EPS {
            let chunk_end = (pos + self.request_size).min(end);
            let chunk = chunk_end - pos;

            // balance_dirty_pages, hard leg: above the dirty threshold the
            // writer itself writes back, down to the background threshold.
            // The time it spends doing so is by definition a throttle stall.
            let projected_dirty = self.cache.dirty() + chunk;
            if projected_dirty > self.cache.dirty_threshold() {
                let stall_start = self.ctx.now();
                let target = (projected_dirty - self.cache.background_threshold()).max(0.0);
                let flushed = self.cache.write_back(target, true).await;
                stats.bytes_to_disk += flushed;
                let stalled = self.ctx.now().duration_since(stall_start);
                stats.throttle_stall += stalled;
                self.cache.note_throttle_stall(stalled);
            }

            // Make room for the new dirty pages.
            let missing = chunk - self.cache.free_memory();
            if missing > EPS {
                let evicted = self.cache.evict(missing, Some(file));
                if missing - evicted > EPS {
                    let flushed = self.cache.write_back(missing - evicted, true).await;
                    stats.bytes_to_disk += flushed;
                    self.cache.evict(missing - evicted, None);
                }
            }

            self.cache.memory().write(chunk).await;
            self.cache.insert_dirty_range(file, pos, chunk_end);
            stats.bytes_to_cache += chunk;

            // balance_dirty_pages, pacing leg: between the background and
            // the dirty threshold the writer is slowed in proportion to how
            // deep into the band the host is, converging on disk write
            // bandwidth at the limit (the kernel's task rate limit). The
            // stall gives the background writeback threads simulated time to
            // drain, which is exactly the CAWL observation: stalled writers,
            // not just background flushing, dominate cache-aware writes.
            let pacing = self.cache.tuning().throttle_pacing;
            if pacing > 0.0 {
                let background = self.cache.background_threshold();
                let limit = self.cache.dirty_threshold();
                let dirty = self.cache.dirty();
                if dirty > background + EPS && limit > background + EPS {
                    let ramp = ((dirty - background) / (limit - background)).min(1.0);
                    let pause = pacing * ramp * self.disk.ideal_write_time(chunk);
                    if pause > EPS {
                        self.ctx.sleep(pause).await;
                        stats.throttle_stall += pause;
                        self.cache.note_throttle_stall(pause);
                    }
                }
            }
            pos = chunk_end;
        }
        self.cache.set_write_open(file, false);
        stats.duration = self.ctx.now().duration_since(t0);
        Ok(stats)
    }

    /// Flushes the file's dirty pages to disk synchronously (`fsync`):
    /// targeted per-file writeback at disk bandwidth, counted as throttled
    /// (synchronous) writeback.
    pub async fn fsync(&self, file: &FileId) -> Result<IoOpStats, KernelFsError> {
        self.require_size(file)?;
        let start = self.ctx.now();
        let flushed = self.cache.write_back_file(file).await;
        Ok(IoOpStats {
            bytes_to_disk: flushed,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    /// Flushes every dirty page of the host to disk (`sync`), oldest dirty
    /// file first.
    pub async fn sync(&self) -> IoOpStats {
        let start = self.ctx.now();
        let flushed = self.cache.write_back(self.cache.dirty(), true).await;
        IoOpStats {
            bytes_to_disk: flushed,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::KernelTuning;
    use des::Simulation;
    use storage_model::{units::MB, DeviceSpec, MemoryDevice};

    fn approx_pct(a: f64, b: f64, pct: f64) {
        assert!(
            (a - b).abs() <= pct / 100.0 * b.abs().max(1.0),
            "expected {b} ±{pct}%, got {a}"
        );
    }

    fn setup(total_mb: f64) -> (Simulation, KernelFileSystem) {
        setup_with(KernelTuning::with_memory(total_mb * MB))
    }

    fn setup_with(tuning: KernelTuning) -> (Simulation, KernelFileSystem) {
        let sim = Simulation::new();
        let ctx = sim.context();
        // Real-cluster style asymmetric bandwidths (Table III).
        let memory = MemoryDevice::new(
            &ctx,
            DeviceSpec::asymmetric(6860.0 * MB, 2764.0 * MB, 0.0, f64::INFINITY),
        );
        let disk = Disk::new(
            &ctx,
            "ssd",
            DeviceSpec::asymmetric(510.0 * MB, 420.0 * MB, 0.0, f64::INFINITY),
        );
        let cache = KernelCache::new(&ctx, tuning, memory, disk.clone());
        let fs = KernelFileSystem::new(&ctx, cache, disk);
        (sim, fs)
    }

    #[test]
    fn cold_read_then_warm_read() {
        let (sim, fs) = setup(10_000.0);
        fs.create_file(&"f".into(), 1000.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let cold = fs.read_file(&"f".into()).await.unwrap();
                fs.cache().release_anonymous_memory(1000.0 * MB);
                let warm = fs.read_file(&"f".into()).await.unwrap();
                (cold, warm)
            }
        });
        sim.run();
        let (cold, warm) = h.try_take_result().unwrap();
        approx_pct(cold.duration, 1000.0 / 510.0, 1.0);
        approx_pct(warm.duration, 1000.0 / 6860.0, 1.0);
        approx_pct(cold.bytes_from_disk, 1000.0 * MB, 0.1);
        approx_pct(warm.bytes_from_cache, 1000.0 * MB, 0.1);
    }

    #[test]
    fn range_read_fetches_only_uncached_pages() {
        let (sim, fs) = setup(10_000.0);
        fs.create_file(&"f".into(), 1000.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                // Cache the first 400 MB only.
                fs.read_range(&"f".into(), 0.0, 400.0 * MB).await.unwrap();
                fs.cache().release_anonymous_memory(400.0 * MB);
                // A 200..600 MB read: 200 MB resident, 200 MB from disk.
                let mixed = fs
                    .read_range(&"f".into(), 200.0 * MB, 400.0 * MB)
                    .await
                    .unwrap();
                fs.cache().release_anonymous_memory(400.0 * MB);
                // A re-read of pages never touched reads disk in full.
                let tail = fs
                    .read_range(&"f".into(), 600.0 * MB, f64::INFINITY)
                    .await
                    .unwrap();
                (mixed, tail)
            }
        });
        sim.run();
        let (mixed, tail) = h.try_take_result().unwrap();
        approx_pct(mixed.bytes_from_cache, 200.0 * MB, 0.1);
        approx_pct(mixed.bytes_from_disk, 200.0 * MB, 0.1);
        approx_pct(tail.bytes_from_disk, 400.0 * MB, 0.1);
        assert_eq!(tail.bytes_from_cache, 0.0);
        // The whole file is now resident.
        approx_pct(fs.cache().cached_amount(&"f".into()), 1000.0 * MB, 0.1);
    }

    #[test]
    fn write_within_thresholds_is_memory_speed() {
        let (sim, fs) = setup(10_000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.write_file(&"out".into(), 500.0 * MB).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx_pct(stats.duration, 500.0 / 2764.0, 1.0);
        approx_pct(stats.bytes_to_cache, 500.0 * MB, 0.1);
        assert_eq!(stats.bytes_to_disk, 0.0);
        approx_pct(fs.cache().dirty(), 500.0 * MB, 0.1);
    }

    #[test]
    fn rewriting_a_record_does_not_inflate_the_cache() {
        let (sim, fs) = setup(10_000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                fs.write_range(&"db".into(), 0.0, 100.0 * MB).await.unwrap();
                // Rewrite the same 100 MB record ten times.
                for _ in 0..10 {
                    fs.write_range(&"db".into(), 0.0, 100.0 * MB).await.unwrap();
                }
            }
        });
        sim.run();
        assert!(h.is_finished());
        approx_pct(fs.cache().cached_amount(&"db".into()), 100.0 * MB, 0.1);
        approx_pct(fs.cache().dirty(), 100.0 * MB, 0.1);
        assert_eq!(fs.file_size(&"db".into()), Some(100.0 * MB));
    }

    #[test]
    fn write_file_truncation_drops_stale_pages() {
        let (sim, fs) = setup(10_000.0);
        fs.create_file(&"f".into(), 1000.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                // Make the whole 1000 MB resident, then truncate to 100 MB.
                fs.read_file(&"f".into()).await.unwrap();
                fs.cache().release_anonymous_memory(1000.0 * MB);
                fs.write_file(&"f".into(), 100.0 * MB).await.unwrap();
            }
        });
        sim.run();
        assert!(h.is_finished());
        // No phantom pages beyond the new EOF: exactly the rewritten 100 MB
        // is cached (and dirty), not 1000 MB.
        approx_pct(fs.cache().cached_amount(&"f".into()), 100.0 * MB, 0.1);
        approx_pct(fs.cache().dirty(), 100.0 * MB, 0.1);
        assert_eq!(fs.file_size(&"f".into()), Some(100.0 * MB));
    }

    #[test]
    fn fsync_writes_back_only_the_target_file() {
        let (sim, fs) = setup(10_000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                fs.write_file(&"a".into(), 420.0 * MB).await.unwrap();
                fs.write_file(&"b".into(), 100.0 * MB).await.unwrap();
                let t0 = fs.ctx.now().as_secs();
                let s = fs.fsync(&"a".into()).await.unwrap();
                (s, fs.ctx.now().as_secs() - t0)
            }
        });
        sim.run();
        let (stats, elapsed) = h.try_take_result().unwrap();
        approx_pct(stats.bytes_to_disk, 420.0 * MB, 0.1);
        approx_pct(elapsed, 1.0, 1.0); // 420 MB at 420 MB/s write bandwidth
        assert!(fs.cache().dirty() > 99.0 * MB); // b stays dirty
        approx_pct(fs.cache().counters().throttled_writeback, 420.0 * MB, 0.1);
        let h2 = sim.spawn({
            let fs = fs.clone();
            async move { fs.sync().await }
        });
        sim.run();
        let sync_stats = h2.try_take_result().unwrap();
        approx_pct(sync_stats.bytes_to_disk, 100.0 * MB, 0.1);
        assert!(fs.cache().dirty() < 1.0);
    }

    #[test]
    fn large_write_is_throttled_to_disk_bandwidth() {
        // 1000 MB of RAM: dirty threshold 200 MB, background threshold 100 MB.
        let (sim, fs) = setup(1000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.write_file(&"out".into(), 600.0 * MB).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        // Most of the data had to be written back synchronously.
        assert!(
            stats.bytes_to_disk >= 350.0 * MB,
            "flushed {}",
            stats.bytes_to_disk
        );
        assert!(
            stats.duration > 600.0 / 420.0 * 0.5,
            "duration {}",
            stats.duration
        );
        // Dirty data stays under the dirty threshold.
        assert!(fs.cache().dirty() <= fs.cache().dirty_threshold() + 1.0);
    }

    #[test]
    fn writeback_threads_drain_dirty_data_in_background() {
        let (sim, fs) = setup(10_000.0);
        fs.cache().spawn_writeback_threads();
        let ctx = sim.context();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                fs.write_file(&"out".into(), 1500.0 * MB).await.unwrap();
                let dirty_right_after = fs.cache().dirty();
                ctx.sleep(10.0).await;
                let dirty_later = fs.cache().dirty();
                fs.cache().stop();
                (dirty_right_after, dirty_later)
            }
        });
        sim.run();
        let (right_after, later) = h.try_take_result().unwrap();
        // 1500 MB dirty > 10 % of 10 GB => the background threads start
        // draining before the 30 s expiration.
        assert!(right_after > 1400.0 * MB);
        assert!(
            later <= fs.cache().background_threshold() + 1.0,
            "later = {later}"
        );
    }

    fn readahead_tuning(total_mb: f64) -> KernelTuning {
        KernelTuning::with_memory(total_mb * MB).with_readahead(50.0 * MB, 400.0 * MB)
    }

    #[test]
    fn sequential_scan_with_readahead_reads_each_byte_once() {
        let (sim, fs) = setup_with(readahead_tuning(10_000.0));
        fs.create_file(&"f".into(), 1000.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_file(&"f".into()).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        // Prefetch fired, but every byte of the file hit the disk exactly
        // once: the prefetched share was served from cache on demand instead
        // of being read again.
        assert!(stats.bytes_prefetched > 100.0 * MB, "{stats:?}");
        approx_pct(stats.bytes_from_disk, 1000.0 * MB, 0.1);
        approx_pct(stats.bytes_from_cache, stats.bytes_prefetched, 0.1);
        approx_pct(
            fs.cache().counters().prefetched,
            stats.bytes_prefetched,
            0.1,
        );
        approx_pct(fs.cache().cached_amount(&"f".into()), 1000.0 * MB, 0.1);
    }

    #[test]
    fn readahead_window_grows_then_collapses_on_a_jump() {
        let (sim, fs) = setup_with(readahead_tuning(10_000.0));
        fs.create_file(&"f".into(), 2000.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                // Two sequential requests: initial window (50 MB), doubled
                // (100 MB).
                fs.read_range(&"f".into(), 0.0, 100.0 * MB).await.unwrap();
                let w1 = fs.files.borrow()[&"f".into()].ra_window;
                fs.read_range(&"f".into(), 100.0 * MB, 100.0 * MB)
                    .await
                    .unwrap();
                let w2 = fs.files.borrow()[&"f".into()].ra_window;
                // A jump collapses the window and prefetches nothing.
                let jump = fs
                    .read_range(&"f".into(), 1500.0 * MB, 100.0 * MB)
                    .await
                    .unwrap();
                let w3 = fs.files.borrow()[&"f".into()].ra_window;
                (w1, w2, w3, jump)
            }
        });
        sim.run();
        let (w1, w2, w3, jump) = h.try_take_result().unwrap();
        approx_pct(w1, 50.0 * MB, 0.1);
        approx_pct(w2, 100.0 * MB, 0.1);
        assert_eq!(w3, 0.0);
        assert_eq!(jump.bytes_prefetched, 0.0);
    }

    #[test]
    fn random_reads_never_prefetch() {
        let (sim, fs) = setup_with(readahead_tuning(10_000.0));
        fs.create_file(&"f".into(), 2000.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let mut stats = IoOpStats::default();
                for offset_mb in [700.0, 100.0, 1500.0, 400.0, 1100.0] {
                    let s = fs
                        .read_range(&"f".into(), offset_mb * MB, 50.0 * MB)
                        .await
                        .unwrap();
                    stats.merge(&s);
                }
                stats
            }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        assert_eq!(stats.bytes_prefetched, 0.0);
        assert_eq!(fs.cache().counters().prefetched, 0.0);
        approx_pct(stats.bytes_from_disk, 250.0 * MB, 0.1);
    }

    #[test]
    fn readahead_prefetch_is_clipped_to_free_memory() {
        // 1000 MB of RAM: a 600 MB demand read plus its anonymous copy
        // leaves almost nothing for speculation — prefetch must shrink
        // rather than evict.
        let (sim, fs) = setup_with(readahead_tuning(1000.0));
        fs.create_file(&"f".into(), 2000.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_range(&"f".into(), 0.0, 600.0 * MB).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        // The unclipped windows would speculate 50+100+200+400+400 MB ahead;
        // the free-memory budget caps what is actually fetched well below
        // that, and the host never overcommits on behalf of speculation.
        assert!(stats.bytes_prefetched <= 500.0 * MB, "{stats:?}");
        assert!(stats.bytes_prefetched > 0.0, "{stats:?}");
        assert!(fs.cache().cached() + fs.cache().anonymous() <= 1000.0 * MB + 1.0);
    }

    #[test]
    fn pacing_stalls_writers_between_the_thresholds() {
        // 1000 MB of RAM: background threshold 100 MB, dirty threshold
        // 200 MB. A 180 MB write ends between the two; with pacing the
        // writer is stalled, without it the write runs at memory speed.
        let unpaced = {
            let (sim, fs) = setup(1000.0);
            let h = sim.spawn({
                let fs = fs.clone();
                async move { fs.write_file(&"out".into(), 180.0 * MB).await.unwrap() }
            });
            sim.run();
            h.try_take_result().unwrap()
        };
        let paced = {
            let (sim, fs) =
                setup_with(KernelTuning::with_memory(1000.0 * MB).with_throttle_pacing(1.0));
            let h = sim.spawn({
                let fs = fs.clone();
                async move { fs.write_file(&"out".into(), 180.0 * MB).await.unwrap() }
            });
            sim.run();
            (h.try_take_result().unwrap(), fs.cache().counters())
        };
        assert_eq!(unpaced.throttle_stall, 0.0);
        let (paced_stats, counters) = paced;
        assert!(paced_stats.throttle_stall > 0.0, "{paced_stats:?}");
        approx_pct(
            counters.throttle_stall_seconds,
            paced_stats.throttle_stall,
            0.1,
        );
        assert!(paced_stats.duration > unpaced.duration + paced_stats.throttle_stall * 0.9);
        // Pacing slows the writer but flushes nothing extra by itself.
        assert_eq!(paced_stats.bytes_to_disk, 0.0);
    }

    #[test]
    fn hard_throttle_time_is_reported_as_stall() {
        // 600 MB write on a 1000 MB host crosses the 200 MB dirty threshold:
        // the synchronous writeback the writer performs is a stall even with
        // pacing disabled.
        let (sim, fs) = setup(1000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.write_file(&"out".into(), 600.0 * MB).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        assert!(stats.bytes_to_disk >= 350.0 * MB);
        assert!(stats.throttle_stall > 0.5, "{}", stats.throttle_stall);
        assert!(stats.throttle_stall <= stats.duration);
        approx_pct(
            fs.cache().counters().throttle_stall_seconds,
            stats.throttle_stall,
            0.1,
        );
    }

    #[test]
    fn file_bookkeeping() {
        let (sim, fs) = setup(1000.0);
        fs.create_file(&"a".into(), 100.0 * MB).unwrap();
        assert_eq!(fs.file_size(&"a".into()), Some(100.0 * MB));
        assert!(fs.file_size(&"b".into()).is_none());
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_file(&"missing".into()).await }
        });
        sim.run();
        assert!(matches!(
            h.try_take_result().unwrap(),
            Err(KernelFsError::FileNotFound(_))
        ));
        fs.delete_file(&"a".into()).unwrap();
        assert!(fs.delete_file(&"a".into()).is_err());
        assert_eq!(fs.disk().used(), 0.0);
    }
}
