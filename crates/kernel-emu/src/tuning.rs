//! Kernel tunables of the emulator (the `vm.*` sysctls of the real cluster).

/// Size of a page in bytes (4 KiB).
pub const PAGE_SIZE: f64 = 4096.0;

/// Tunables of the emulated kernel, mirroring the `vm.*` sysctls of the
/// CentOS 8.1 nodes used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTuning {
    /// Total RAM of the host in bytes.
    pub total_memory: f64,
    /// `vm.dirty_ratio`: fraction of available memory above which writers are
    /// throttled and must write back synchronously.
    pub dirty_ratio: f64,
    /// `vm.dirty_background_ratio`: fraction of available memory above which
    /// the background writeback threads start flushing. The paper's
    /// macroscopic model omits this, which is why it observes that "dirty data
    /// seemed to be flushing faster in real life than in simulation".
    pub dirty_background_ratio: f64,
    /// `vm.dirty_expire_centisecs` in seconds: age after which dirty data is
    /// written back regardless of the thresholds.
    pub dirty_expire: f64,
    /// `vm.dirty_writeback_centisecs` in seconds: wakeup period of the
    /// writeback threads.
    pub writeback_interval: f64,
    /// Whether eviction avoids pages of files currently opened for writing
    /// (the kernel behaviour the paper could not easily reproduce).
    pub protect_files_being_written: bool,
}

impl KernelTuning {
    /// Default kernel settings with the given amount of RAM.
    pub fn with_memory(total_memory: f64) -> Self {
        KernelTuning {
            total_memory,
            dirty_ratio: 0.20,
            dirty_background_ratio: 0.10,
            dirty_expire: 30.0,
            writeback_interval: 5.0,
            protect_files_being_written: true,
        }
    }

    /// Validates the tunables.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.total_memory > 0.0 && self.total_memory.is_finite()) {
            return Err("total memory must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.dirty_ratio)
            || !(0.0..=1.0).contains(&self.dirty_background_ratio)
        {
            return Err("dirty ratios must be within [0, 1]".to_string());
        }
        if self.dirty_background_ratio > self.dirty_ratio {
            return Err("dirty_background_ratio must not exceed dirty_ratio".to_string());
        }
        if self.writeback_interval <= 0.0 || self.dirty_expire < 0.0 {
            return Err("writeback interval must be positive and expire non-negative".to_string());
        }
        Ok(())
    }

    /// Rounds a byte count up to whole pages, the granularity the emulator
    /// tracks.
    pub fn round_to_pages(bytes: f64) -> f64 {
        if bytes <= 0.0 {
            0.0
        } else {
            (bytes / PAGE_SIZE).ceil() * PAGE_SIZE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_validation() {
        let t = KernelTuning::with_memory(1e9);
        assert_eq!(t.dirty_ratio, 0.20);
        assert_eq!(t.dirty_background_ratio, 0.10);
        assert!(t.validate().is_ok());
        let mut bad = t;
        bad.dirty_background_ratio = 0.5;
        assert!(bad.validate().is_err());
        bad = t;
        bad.total_memory = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn page_rounding() {
        assert_eq!(KernelTuning::round_to_pages(0.0), 0.0);
        assert_eq!(KernelTuning::round_to_pages(-5.0), 0.0);
        assert_eq!(KernelTuning::round_to_pages(1.0), PAGE_SIZE);
        assert_eq!(KernelTuning::round_to_pages(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(
            KernelTuning::round_to_pages(PAGE_SIZE + 1.0),
            2.0 * PAGE_SIZE
        );
    }
}
