//! Kernel tunables of the emulator (the `vm.*` sysctls of the real cluster).

use pagecache::EvictionPolicy;

/// Size of a page in bytes (4 KiB).
pub const PAGE_SIZE: f64 = 4096.0;

/// The initial readahead window Linux grants a fresh sequential stream
/// before any doubling (16 pages = 64 KiB, the common `get_init_ra_size`
/// outcome for small first reads). Exposed so callers enabling readahead can
/// mirror the kernel's defaults at page scale.
pub const LINUX_READAHEAD_MIN: f64 = 16.0 * PAGE_SIZE;

/// The maximum readahead window of a stock Linux block device
/// (`/sys/block/<dev>/queue/read_ahead_kb` = 128, i.e. 32 pages).
pub const LINUX_READAHEAD_MAX: f64 = 32.0 * PAGE_SIZE;

/// Tunables of the emulated kernel, mirroring the `vm.*` sysctls of the
/// CentOS 8.1 nodes used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTuning {
    /// Total RAM of the host in bytes.
    pub total_memory: f64,
    /// `vm.dirty_ratio`: fraction of available memory above which writers are
    /// throttled and must write back synchronously.
    pub dirty_ratio: f64,
    /// `vm.dirty_background_ratio`: fraction of available memory above which
    /// the background writeback threads start flushing. The paper's
    /// macroscopic model omits this, which is why it observes that "dirty data
    /// seemed to be flushing faster in real life than in simulation".
    pub dirty_background_ratio: f64,
    /// `vm.dirty_expire_centisecs` in seconds: age after which dirty data is
    /// written back regardless of the thresholds.
    pub dirty_expire: f64,
    /// `vm.dirty_writeback_centisecs` in seconds: wakeup period of the
    /// writeback threads.
    pub writeback_interval: f64,
    /// Whether eviction avoids pages of files currently opened for writing
    /// (the kernel behaviour the paper could not easily reproduce).
    pub protect_files_being_written: bool,
    /// Initial readahead window in bytes, granted when a file stream is
    /// detected as sequential (Linux `get_init_ra_size`; see
    /// [`LINUX_READAHEAD_MIN`]). Only meaningful when `readahead_max > 0`.
    pub readahead_min: f64,
    /// Maximum readahead window in bytes (Linux
    /// `/sys/block/<dev>/queue/read_ahead_kb`; see [`LINUX_READAHEAD_MAX`]).
    /// The window doubles on every sequential access up to this bound and
    /// collapses to zero on a non-sequential one. **Zero disables readahead
    /// entirely** — the default, so existing amount-based predictions are
    /// unchanged unless a platform opts in.
    pub readahead_max: f64,
    /// `balance_dirty_pages` pacing strength. With dirty data between the
    /// background and the dirty threshold, a writer is stalled after each
    /// request for `pacing × ramp × ideal_disk_write_time(request)` seconds,
    /// where `ramp` grows linearly from 0 at the background threshold to 1
    /// at the dirty threshold — i.e. at `1.0` a writer hitting the dirty
    /// threshold is paced down to disk write bandwidth, which is what the
    /// kernel's task rate limit converges to. **Zero disables pacing** — the
    /// default; the hard throttle at the dirty threshold (synchronous
    /// writeback) applies regardless.
    pub throttle_pacing: f64,
    /// Replacement policy deciding the victim-file order of eviction (and
    /// second chances / ghost promotions under the non-default policies).
    /// The default [`EvictionPolicy::TwoList`] reproduces the historical
    /// pure-LRU `(last_access, file name)` order exactly.
    pub eviction_policy: EvictionPolicy,
}

impl KernelTuning {
    /// Default kernel settings with the given amount of RAM.
    pub fn with_memory(total_memory: f64) -> Self {
        KernelTuning {
            total_memory,
            dirty_ratio: 0.20,
            dirty_background_ratio: 0.10,
            dirty_expire: 30.0,
            writeback_interval: 5.0,
            protect_files_being_written: true,
            readahead_min: 0.0,
            readahead_max: 0.0,
            throttle_pacing: 0.0,
            eviction_policy: EvictionPolicy::TwoList,
        }
    }

    /// Overrides the eviction policy.
    pub fn with_eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.eviction_policy = policy;
        self
    }

    /// Enables the readahead model with the given initial and maximum window
    /// sizes (bytes). Use [`LINUX_READAHEAD_MIN`] / [`LINUX_READAHEAD_MAX`]
    /// to mirror a stock kernel, or scaled-up windows to match scaled-up
    /// request sizes.
    pub fn with_readahead(mut self, min: f64, max: f64) -> Self {
        self.readahead_min = min;
        self.readahead_max = max;
        self
    }

    /// Enables `balance_dirty_pages` writer pacing with the given strength
    /// (`1.0` mirrors the kernel: writers at the dirty threshold are paced
    /// down to disk write bandwidth).
    pub fn with_throttle_pacing(mut self, pacing: f64) -> Self {
        self.throttle_pacing = pacing;
        self
    }

    /// Validates the tunables.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.total_memory > 0.0 && self.total_memory.is_finite()) {
            return Err("total memory must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.dirty_ratio)
            || !(0.0..=1.0).contains(&self.dirty_background_ratio)
        {
            return Err("dirty ratios must be within [0, 1]".to_string());
        }
        if self.dirty_background_ratio > self.dirty_ratio {
            return Err("dirty_background_ratio must not exceed dirty_ratio".to_string());
        }
        if self.writeback_interval <= 0.0 || self.dirty_expire < 0.0 {
            return Err("writeback interval must be positive and expire non-negative".to_string());
        }
        if !(self.readahead_min >= 0.0
            && self.readahead_max >= 0.0
            && self.readahead_min.is_finite()
            && self.readahead_max.is_finite())
        {
            return Err("readahead windows must be finite and non-negative".to_string());
        }
        if self.readahead_max > 0.0 && self.readahead_min <= 0.0 {
            return Err("readahead_min must be positive when readahead is enabled".to_string());
        }
        if self.readahead_min > self.readahead_max {
            return Err("readahead_min must not exceed readahead_max".to_string());
        }
        if !(self.throttle_pacing >= 0.0 && self.throttle_pacing.is_finite()) {
            return Err("throttle pacing must be finite and non-negative".to_string());
        }
        Ok(())
    }

    /// Rounds a byte count up to whole pages, the granularity the emulator
    /// tracks.
    pub fn round_to_pages(bytes: f64) -> f64 {
        if bytes <= 0.0 {
            0.0
        } else {
            (bytes / PAGE_SIZE).ceil() * PAGE_SIZE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_validation() {
        let t = KernelTuning::with_memory(1e9);
        assert_eq!(t.dirty_ratio, 0.20);
        assert_eq!(t.dirty_background_ratio, 0.10);
        // Readahead and writer pacing are opt-in: off by default.
        assert_eq!(t.readahead_max, 0.0);
        assert_eq!(t.throttle_pacing, 0.0);
        assert_eq!(t.eviction_policy, EvictionPolicy::TwoList);
        assert_eq!(
            t.with_eviction_policy(EvictionPolicy::Clock)
                .eviction_policy,
            EvictionPolicy::Clock
        );
        assert!(t.validate().is_ok());
        let mut bad = t;
        bad.dirty_background_ratio = 0.5;
        assert!(bad.validate().is_err());
        bad = t;
        bad.total_memory = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn readahead_and_pacing_validation() {
        let t = KernelTuning::with_memory(1e9);
        let linux = t.with_readahead(LINUX_READAHEAD_MIN, LINUX_READAHEAD_MAX);
        assert!(linux.validate().is_ok());
        // min > max is rejected.
        assert!(t
            .with_readahead(2.0 * PAGE_SIZE, PAGE_SIZE)
            .validate()
            .is_err());
        // Enabling readahead without an initial window is rejected.
        assert!(t.with_readahead(0.0, PAGE_SIZE).validate().is_err());
        // Non-finite and negative values are rejected.
        assert!(t.with_readahead(-1.0, PAGE_SIZE).validate().is_err());
        assert!(t
            .with_readahead(PAGE_SIZE, f64::INFINITY)
            .validate()
            .is_err());
        assert!(t.with_throttle_pacing(1.0).validate().is_ok());
        assert!(t.with_throttle_pacing(-0.5).validate().is_err());
        assert!(t.with_throttle_pacing(f64::NAN).validate().is_err());
    }

    #[test]
    fn page_rounding() {
        assert_eq!(KernelTuning::round_to_pages(0.0), 0.0);
        assert_eq!(KernelTuning::round_to_pages(-5.0), 0.0);
        assert_eq!(KernelTuning::round_to_pages(1.0), PAGE_SIZE);
        assert_eq!(KernelTuning::round_to_pages(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(
            KernelTuning::round_to_pages(PAGE_SIZE + 1.0),
            2.0 * PAGE_SIZE
        );
    }
}
