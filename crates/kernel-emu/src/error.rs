//! Structured errors of the emulated filesystem.

use std::fmt;

use pagecache::FileId;
use storage_model::DiskFullError;

/// Errors returned by [`crate::KernelFileSystem`].
#[derive(Debug, Clone, PartialEq)]
pub enum KernelFsError {
    /// The file is not registered in the emulated filesystem.
    FileNotFound(FileId),
    /// The backing disk has no room for the file.
    DiskFull(DiskFullError),
    /// A write range with a non-finite offset or length (a finite range is
    /// required: an unbounded write would never terminate).
    InvalidRange {
        /// The offset the caller passed.
        offset: f64,
        /// The length the caller passed.
        len: f64,
    },
}

impl fmt::Display for KernelFsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelFsError::FileNotFound(file) => write!(f, "file '{file}' not found"),
            KernelFsError::DiskFull(e) => write!(f, "{e}"),
            KernelFsError::InvalidRange { offset, len } => {
                write!(f, "invalid write range: offset {offset}, len {len}")
            }
        }
    }
}

impl std::error::Error for KernelFsError {}

impl From<DiskFullError> for KernelFsError {
    fn from(e: DiskFullError) -> Self {
        KernelFsError::DiskFull(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KernelFsError::FileNotFound("missing".into());
        assert!(e.to_string().contains("missing"));
        let e: KernelFsError = DiskFullError {
            disk: "d0".into(),
            requested: 10.0,
            available: 5.0,
        }
        .into();
        assert!(e.to_string().contains("full"));
    }
}
