//! # `kernel-emu` — a page-granularity Linux page-cache emulator
//!
//! The paper validates its simulation model against *real executions* on a
//! dedicated cluster. That hardware is not available here, so this crate
//! provides the substitute ground truth: an emulator of the Linux page cache
//! that implements the kernel behaviours the paper's macroscopic model
//! deliberately leaves out —
//!
//! * the background dirty threshold (`vm.dirty_background_ratio`),
//! * writer throttling à la `balance_dirty_pages` — both the hard leg
//!   (synchronous writeback above `vm.dirty_ratio`) and, opt-in, the pacing
//!   leg that stalls writers between the two thresholds
//!   ([`KernelTuning::throttle_pacing`]),
//! * eviction protection of files currently being written,
//! * per-file page accounting instead of per-I/O data blocks, refined to
//!   **true resident byte ranges** per file,
//! * opt-in Linux-style **readahead**: per-file sequentiality detection
//!   with a growing/collapsing window whose prefetch lands in the resident
//!   ranges ahead of demand ([`KernelTuning::readahead_max`]; see
//!   [`KernelFileSystem`] for the exact model),
//!
//! and that is configured with the *measured, asymmetric* device bandwidths of
//! Table III (whereas the simulators use the symmetric averages). Simulators
//! are then evaluated by their error against this emulator, exactly as the
//! paper evaluates WRENCH and WRENCH-cache against the real cluster.
//!
//! See `DESIGN.md` (§5, substitutions) for the full rationale.

#![warn(missing_docs)]

mod cache;
mod error;
mod fs;
mod tuning;

pub use cache::{KernelCache, KernelCacheCounters};
pub use error::KernelFsError;
pub use fs::{KernelFileSystem, DEFAULT_REQUEST_SIZE};
pub use tuning::{KernelTuning, LINUX_READAHEAD_MAX, LINUX_READAHEAD_MIN, PAGE_SIZE};
