//! The emulated kernel page cache.
//!
//! Unlike the macroscopic model of the [`pagecache`] crate (variable-size data
//! blocks, one per I/O operation), the emulator tracks cache occupancy per
//! file at page granularity, and implements the kernel behaviours the paper
//! identifies as the source of its residual simulation error:
//!
//! * a **background dirty threshold** (`vm.dirty_background_ratio`): writeback
//!   starts well before the dirty ratio is hit, so dirty data drains faster
//!   than in the macroscopic model;
//! * **writer throttling** (`balance_dirty_pages`): when the dirty ratio is
//!   exceeded the writer itself writes back down to the background threshold;
//! * **eviction protection of files being written**: the kernel "tends to not
//!   evict pages that belong to files being currently written" (paper §IV-A).
//!
//! This emulator plays the role of the *real cluster node* in our
//! reproduction: simulators are evaluated by their error against it.
//!
//! # Mechanism vs. policy
//!
//! Like `pagecache::lru`, this module is *mechanism*: the file slab, the
//! page accounting, the resident/durability range ledgers, and the
//! clean/dirty membership chains. The *decisions* — in what order files are
//! picked as eviction victims, whether a file gets a second chance, and how
//! re-accessed files are classified — are delegated to the
//! [`ReplacementPolicy`] configured via [`KernelTuning::eviction_policy`].
//! Because the emulator tracks occupancy per file (not per block), it
//! consumes the trait's *file-granular* hooks, driven off a per-file
//! [`FileMeta`] stored in each slab slot: `file_admit` on inserts,
//! `file_touch` on re-accesses, `file_rank` as the victim-ordering prefix
//! (eviction sorts candidates by `(rank, last_access, file name)`),
//! `file_second_chance` during the protection pass of [`KernelCache::evict`]
//! and `file_on_evict` when a file's pages are fully reclaimed. Writeback
//! order stays policy-independent: it is a durability concern (oldest dirty
//! data first), not a replacement decision. The default
//! [`TwoList`](pagecache::EvictionPolicy::TwoList) policy ranks every file 0
//! and grants no second chances, reproducing the historical behaviour
//! exactly.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use des::{JoinHandle, SimContext, SimTime};
use pagecache::{
    CacheContentSnapshot, FileId, FileMeta, MemorySample, MemoryTrace, ReplacementPolicy,
};
use storage_model::{Disk, MemoryDevice};

use crate::tuning::KernelTuning;

const EPS: f64 = 1e-6;

/// Slot index into the file slab. `NIL` terminates a chain.
const NIL: u32 = u32::MAX;

/// Chain dimensions threaded through [`FileSlot`]s: files that (may) hold
/// clean pages, and files that (may) hold dirty pages.
const CLEAN: usize = 0;
const DIRTY: usize = 1;

/// Sorted, disjoint, half-open byte ranges: the emulator's record of *which*
/// offsets of a file are resident in the cache. The float aggregates of
/// [`FilePages`] remain the source of truth for *totals* (thresholds,
/// eviction targets); the range set refines them with true page positions so
/// offset-granular reads know exactly which bytes must come from disk. The
/// two views are kept consistent (`total() == FilePages::cached()`): range
/// inserts only add uncovered bytes, and eviction trims ranges by the
/// evicted amount, lowest offsets first (the least recently used end under
/// the sequential-access assumption the macroscopic model also makes).
#[derive(Debug, Default, Clone)]
struct RangeSet {
    spans: Vec<(f64, f64)>,
}

impl RangeSet {
    /// Total resident bytes. Consumed by the debug oracle only, hence unused
    /// in release builds.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn total(&self) -> f64 {
        self.spans.iter().map(|(a, b)| b - a).sum()
    }

    /// Bytes of `[a, b)` that are resident.
    fn covered_len(&self, a: f64, b: f64) -> f64 {
        self.spans
            .iter()
            .map(|&(sa, sb)| (sb.min(b) - sa.max(a)).max(0.0))
            .sum()
    }

    /// The sub-ranges of `[a, b)` that are *not* resident, in offset order.
    fn gaps(&self, a: f64, b: f64) -> Vec<(f64, f64)> {
        let mut gaps = Vec::new();
        let mut cursor = a;
        for &(sa, sb) in &self.spans {
            if sb <= cursor {
                continue;
            }
            if sa >= b {
                break;
            }
            if sa > cursor + EPS {
                gaps.push((cursor, sa.min(b)));
            }
            cursor = cursor.max(sb);
            if cursor >= b {
                break;
            }
        }
        if cursor < b - EPS {
            gaps.push((cursor, b));
        }
        gaps
    }

    /// Adds `[a, b)`, merging overlapping or touching spans.
    fn insert(&mut self, a: f64, b: f64) {
        if b - a <= EPS {
            return;
        }
        let mut merged = (a, b);
        let mut out = Vec::with_capacity(self.spans.len() + 1);
        let mut iter = self.spans.iter().peekable();
        while let Some(&&(sa, sb)) = iter.peek() {
            if sb < a - EPS {
                out.push((sa, sb));
                iter.next();
            } else {
                break;
            }
        }
        while let Some(&&(sa, sb)) = iter.peek() {
            if sa <= b + EPS {
                merged.0 = merged.0.min(sa);
                merged.1 = merged.1.max(sb);
                iter.next();
            } else {
                break;
            }
        }
        out.push(merged);
        out.extend(iter);
        self.spans = out;
    }

    /// Removes `amount` bytes from the lowest offsets.
    fn trim_front(&mut self, mut amount: f64) {
        let mut drop_to = 0;
        for span in self.spans.iter_mut() {
            if amount <= EPS {
                break;
            }
            let len = span.1 - span.0;
            if len <= amount + EPS {
                amount -= len;
                drop_to += 1;
            } else {
                span.0 += amount;
                amount = 0.0;
            }
        }
        self.spans.drain(..drop_to);
    }

    /// End offset of the highest resident span (0 when empty). The
    /// amount-based legacy insert APIs append here, so sequential whole-file
    /// traffic lays its pages down at the true offsets.
    fn high_water(&self) -> f64 {
        self.spans.last().map_or(0.0, |&(_, b)| b)
    }
}

/// One prev/next pair of an intrusive membership chain.
#[derive(Debug, Clone, Copy)]
struct Link {
    prev: u32,
    next: u32,
}

const UNLINKED: Link = Link {
    prev: NIL,
    next: NIL,
};

/// Endpoints of one membership chain.
#[derive(Debug, Clone, Copy)]
struct Chain {
    head: u32,
    tail: u32,
}

impl Default for Chain {
    fn default() -> Self {
        Chain {
            head: NIL,
            tail: NIL,
        }
    }
}

/// Per-file cache occupancy, split by LRU list and dirtiness.
#[derive(Debug, Default, Clone, Copy)]
struct FilePages {
    inactive_clean: f64,
    inactive_dirty: f64,
    active_clean: f64,
    active_dirty: f64,
    last_access: SimTime,
    oldest_dirty: Option<SimTime>,
    write_open: bool,
}

impl FilePages {
    fn cached(&self) -> f64 {
        self.inactive_clean + self.inactive_dirty + self.active_clean + self.active_dirty
    }

    fn dirty(&self) -> f64 {
        self.inactive_dirty + self.active_dirty
    }

    fn clean(&self) -> f64 {
        self.inactive_clean + self.active_clean
    }

    /// Marks up to `amount` dirty bytes clean (inactive first). Returns the
    /// amount cleaned.
    fn clean_dirty(&mut self, amount: f64) -> f64 {
        let from_inactive = self.inactive_dirty.min(amount);
        self.inactive_dirty -= from_inactive;
        self.inactive_clean += from_inactive;
        let from_active = self.active_dirty.min(amount - from_inactive);
        self.active_dirty -= from_active;
        self.active_clean += from_active;
        if self.dirty() <= EPS {
            self.oldest_dirty = None;
        }
        from_inactive + from_active
    }

    /// Removes up to `amount` clean bytes (inactive first, then active).
    /// Returns the amount removed.
    fn evict_clean(&mut self, amount: f64) -> f64 {
        let from_inactive = self.inactive_clean.min(amount);
        self.inactive_clean -= from_inactive;
        let from_active = self.active_clean.min(amount - from_inactive);
        self.active_clean -= from_active;
        from_inactive + from_active
    }

    /// Promotes up to `amount` bytes from the inactive to the active list
    /// (clean first), modelling a second access.
    fn promote(&mut self, amount: f64) {
        let clean = self.inactive_clean.min(amount);
        self.inactive_clean -= clean;
        self.active_clean += clean;
        let dirty = self.inactive_dirty.min(amount - clean);
        self.inactive_dirty -= dirty;
        self.active_dirty += dirty;
    }
}

/// Aggregate counters of the emulator.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct KernelCacheCounters {
    /// Bytes written back by the background writeback threads.
    pub background_writeback: f64,
    /// Bytes written back synchronously by throttled writers.
    pub throttled_writeback: f64,
    /// Bytes evicted under memory pressure.
    pub evicted: f64,
    /// Bytes read from disk by the readahead model ahead of demand.
    pub prefetched: f64,
    /// Seconds writers spent blocked in `balance_dirty_pages`-style
    /// throttling (synchronous threshold writeback plus pacing stalls).
    pub throttle_stall_seconds: f64,
}

/// One file's slab slot: its page accounting plus the intrusive links of the
/// two membership chains (same per-file chain idea as `pagecache::lru`).
#[derive(Debug, Clone)]
struct FileSlot {
    file: FileId,
    pages: FilePages,
    /// Per-file policy metadata (reference bit, hotness, generation) consumed
    /// by the file-granular [`ReplacementPolicy`] hooks.
    meta: FileMeta,
    /// Which byte offsets of the file are resident (`total()` always equals
    /// `pages.cached()`).
    resident: RangeSet,
    /// Which byte offsets were written but have not yet reached the disk —
    /// the durability ledger consumed by [`KernelCache::crash_discard`].
    /// Grown by every dirty insert, cleared by per-file writeback (`fsync`),
    /// and trimmed lowest-offset-first by partial writeback (the same
    /// deterministic approximation the resident set uses for eviction). An
    /// independent record, not asserted against the position-blind float
    /// aggregates: overlapping rewrites inflate the aggregates but not the
    /// ledger.
    dirty: RangeSet,
    /// Links indexed by [`CLEAN`] / [`DIRTY`].
    links: [Link; 2],
    /// Whether the slot is currently a member of each chain.
    linked: [bool; 2],
}

/// Incrementally maintained byte totals of one cache group (tenant) — the
/// emulator-side memcg analogue of `pagecache`'s group aggregates.
#[derive(Debug, Default, Clone, Copy)]
struct GroupBytes {
    cached: f64,
    dirty: f64,
}

struct State {
    /// File name -> slab slot. The sorted index is kept for
    /// [`KernelCache::cached_per_file`] snapshots; per-page-state traversal
    /// goes through the membership chains instead of scanning this map.
    index: BTreeMap<FileId, u32>,
    slots: Vec<Option<FileSlot>>,
    free_slots: Vec<u32>,
    /// Membership chains indexed by [`CLEAN`] / [`DIRTY`]: a conservative
    /// superset of the files with clean / dirty pages. Writeback and eviction
    /// walk these chains — visiting only candidate files — and lazily unlink
    /// members that no longer qualify.
    chains: [Chain; 2],
    anonymous: f64,
    /// Incrementally maintained sum of `FilePages::cached` over all files,
    /// so that [`KernelCache::cached`] (polled on every simulated request) is
    /// O(1) instead of a scan over the file table.
    cached_total: f64,
    /// Incrementally maintained sum of `FilePages::dirty` over all files.
    dirty_total: f64,
    /// Cache-group (tenant) assignment per file. Configuration, not cache
    /// state: assignments survive eviction and crashes.
    group_of: HashMap<FileId, u32>,
    /// Per-group byte totals, mirrored at every site that moves
    /// `cached_total` / `dirty_total` (verified by the debug oracle).
    group_bytes: HashMap<u32, GroupBytes>,
    trace: MemoryTrace,
    counters: KernelCacheCounters,
    /// Replacement policy: decides victim-file ordering, second chances and
    /// re-access classification via the file-granular trait hooks. The
    /// mechanism (slab, chains, ledgers) above is policy-independent.
    policy: Box<dyn ReplacementPolicy>,
    stop: bool,
}

impl State {
    fn slot(&self, i: u32) -> &FileSlot {
        self.slots[i as usize].as_ref().expect("vacant file slot")
    }

    fn slot_mut(&mut self, i: u32) -> &mut FileSlot {
        self.slots[i as usize].as_mut().expect("vacant file slot")
    }

    fn pages(&self, file: &FileId) -> Option<&FilePages> {
        self.index.get(file).map(|&i| &self.slot(i).pages)
    }

    /// Returns the slab slot of `file`, creating an empty one if needed.
    fn ensure_slot(&mut self, file: &FileId) -> u32 {
        if let Some(&i) = self.index.get(file) {
            return i;
        }
        let slot = FileSlot {
            file: file.clone(),
            pages: FilePages::default(),
            meta: FileMeta::default(),
            resident: RangeSet::default(),
            dirty: RangeSet::default(),
            links: [UNLINKED; 2],
            linked: [false, false],
        };
        let i = match self.free_slots.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                let i = (self.slots.len() - 1) as u32;
                assert!(i != NIL, "file slab exhausted u32 index space");
                i
            }
        };
        self.index.insert(file.clone(), i);
        i
    }

    /// Links slot `i` into chain `dim` (no-op if already a member). O(1).
    fn link(&mut self, i: u32, dim: usize) {
        if self.slot(i).linked[dim] {
            return;
        }
        let tail = self.chains[dim].tail;
        {
            let s = self.slot_mut(i);
            s.linked[dim] = true;
            s.links[dim] = Link {
                prev: tail,
                next: NIL,
            };
        }
        if tail != NIL {
            self.slot_mut(tail).links[dim].next = i;
        } else {
            self.chains[dim].head = i;
        }
        self.chains[dim].tail = i;
    }

    /// Unlinks slot `i` from chain `dim` (no-op if not a member). O(1).
    fn unlink(&mut self, i: u32, dim: usize) {
        if !self.slot(i).linked[dim] {
            return;
        }
        let Link { prev, next } = self.slot(i).links[dim];
        if prev != NIL {
            self.slot_mut(prev).links[dim].next = next;
        } else {
            self.chains[dim].head = next;
        }
        if next != NIL {
            self.slot_mut(next).links[dim].prev = prev;
        } else {
            self.chains[dim].tail = prev;
        }
        let s = self.slot_mut(i);
        s.links[dim] = UNLINKED;
        s.linked[dim] = false;
    }

    /// Collects the members of chain `dim` that still satisfy `qualifies`,
    /// lazily unlinking the ones that no longer do. The result is unordered;
    /// callers sort it to reproduce the historical (timestamp, file-name)
    /// selection order exactly.
    fn chain_candidates(&mut self, dim: usize, qualifies: impl Fn(&FilePages) -> bool) -> Vec<u32> {
        let mut out = Vec::new();
        let mut i = self.chains[dim].head;
        while i != NIL {
            let next = self.slot(i).links[dim].next;
            if qualifies(&self.slot(i).pages) {
                out.push(i);
            } else {
                self.unlink(i, dim);
            }
            i = next;
        }
        out
    }

    /// Applies byte deltas to the cache-group aggregates of `file` (no-op
    /// for ungrouped files). Negative deltas saturate at zero, matching the
    /// clamping of the global totals.
    fn group_adjust(&mut self, file: &FileId, d_cached: f64, d_dirty: f64) {
        let Some(&g) = self.group_of.get(file) else {
            return;
        };
        let gb = self.group_bytes.entry(g).or_default();
        gb.cached = (gb.cached + d_cached).max(0.0);
        gb.dirty = (gb.dirty + d_dirty).max(0.0);
    }

    /// Scan-based oracle for the incremental totals and the membership
    /// chains; compiled into debug builds only.
    #[inline]
    fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            let live = || self.slots.iter().flatten();
            let cached: f64 = live().map(|s| s.pages.cached()).sum();
            let dirty: f64 = live().map(|s| s.pages.dirty()).sum();
            debug_assert!(
                (self.cached_total - cached).abs() <= EPS + 1e-9 * cached.abs(),
                "cached_total {} != scan {}",
                self.cached_total,
                cached
            );
            debug_assert!(
                (self.dirty_total - dirty).abs() <= EPS + 1e-9 * dirty.abs(),
                "dirty_total {} != scan {}",
                self.dirty_total,
                dirty
            );
            debug_assert_eq!(self.index.len() + self.free_slots.len(), self.slots.len());
            // Group aggregates must match a scan through the assignment map.
            let mut group_scan: HashMap<u32, GroupBytes> = HashMap::new();
            for slot in live() {
                if let Some(&g) = self.group_of.get(&slot.file) {
                    let gb = group_scan.entry(g).or_default();
                    gb.cached += slot.pages.cached();
                    gb.dirty += slot.pages.dirty();
                }
            }
            for (&g, gb) in &self.group_bytes {
                let sc = group_scan.get(&g).copied().unwrap_or_default();
                debug_assert!(
                    (gb.cached - sc.cached).abs() <= EPS + 1e-9 * sc.cached.abs(),
                    "group {g} cached {} != scan {}",
                    gb.cached,
                    sc.cached
                );
                debug_assert!(
                    (gb.dirty - sc.dirty).abs() <= EPS + 1e-9 * sc.dirty.abs(),
                    "group {g} dirty {} != scan {}",
                    gb.dirty,
                    sc.dirty
                );
            }
            // The per-file resident ranges and the float aggregates must
            // describe the same number of bytes, and the spans must be
            // sorted and disjoint.
            for (file, &i) in &self.index {
                let s = self.slot(i);
                let resident = s.resident.total();
                let cached = s.pages.cached();
                debug_assert!(
                    (resident - cached).abs() <= 1e-3 + 1e-6 * cached.abs(),
                    "file {file}: resident ranges {resident} != cached bytes {cached}"
                );
                for w in s.resident.spans.windows(2) {
                    debug_assert!(
                        w[0].1 <= w[1].0 + EPS,
                        "file {file}: overlapping/unsorted resident spans"
                    );
                }
            }
            // Every qualifying file must be a chain member (the chains may
            // conservatively hold more; they are pruned lazily).
            for (dim, qualifies) in [
                (
                    CLEAN,
                    (|p: &FilePages| p.clean() > EPS) as fn(&FilePages) -> bool,
                ),
                (DIRTY, |p: &FilePages| p.dirty() > EPS),
            ] {
                for (file, &i) in &self.index {
                    let s = self.slot(i);
                    debug_assert!(
                        !qualifies(&s.pages) || s.linked[dim],
                        "file {file} qualifies for chain {dim} but is not linked"
                    );
                }
                // The chain is structurally sound and every member is live.
                let mut seen = 0usize;
                let mut prev = NIL;
                let mut i = self.chains[dim].head;
                while i != NIL {
                    let s = self.slot(i);
                    debug_assert!(s.linked[dim]);
                    debug_assert_eq!(s.links[dim].prev, prev);
                    prev = i;
                    i = s.links[dim].next;
                    seen += 1;
                    debug_assert!(seen <= self.slots.len(), "chain cycle");
                }
                debug_assert_eq!(self.chains[dim].tail, prev);
            }
        }
    }
}

/// The emulated kernel page cache of one host.
#[derive(Clone)]
pub struct KernelCache {
    ctx: SimContext,
    tuning: KernelTuning,
    memory: MemoryDevice,
    disk: Disk,
    state: Rc<RefCell<State>>,
}

impl KernelCache {
    /// Creates an emulated page cache.
    ///
    /// # Panics
    /// Panics if the tunables are invalid.
    pub fn new(ctx: &SimContext, tuning: KernelTuning, memory: MemoryDevice, disk: Disk) -> Self {
        tuning.validate().expect("invalid kernel tuning");
        KernelCache {
            ctx: ctx.clone(),
            tuning,
            memory,
            disk,
            state: Rc::new(RefCell::new(State {
                index: BTreeMap::new(),
                slots: Vec::new(),
                free_slots: Vec::new(),
                chains: [Chain::default(), Chain::default()],
                anonymous: 0.0,
                cached_total: 0.0,
                dirty_total: 0.0,
                group_of: HashMap::new(),
                group_bytes: HashMap::new(),
                trace: MemoryTrace::new(),
                counters: KernelCacheCounters::default(),
                policy: tuning.eviction_policy.build(),
                stop: false,
            })),
        }
    }

    /// The kernel tunables.
    pub fn tuning(&self) -> &KernelTuning {
        &self.tuning
    }

    /// The disk dirty pages are written back to.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The memory bus.
    pub fn memory(&self) -> &MemoryDevice {
        &self.memory
    }

    /// Total cached bytes. O(1): maintained incrementally by every mutation.
    pub fn cached(&self) -> f64 {
        self.state.borrow().cached_total
    }

    /// Total dirty bytes. O(1): maintained incrementally by every mutation.
    pub fn dirty(&self) -> f64 {
        self.state.borrow().dirty_total
    }

    /// Anonymous application memory.
    pub fn anonymous(&self) -> f64 {
        self.state.borrow().anonymous
    }

    /// Free memory (total minus cache minus anonymous, clamped at zero).
    pub fn free_memory(&self) -> f64 {
        (self.tuning.total_memory - self.cached() - self.anonymous()).max(0.0)
    }

    /// Memory available to the page cache (total minus anonymous).
    pub fn available_memory(&self) -> f64 {
        (self.tuning.total_memory - self.anonymous()).max(0.0)
    }

    /// Cached bytes of one file.
    pub fn cached_amount(&self, file: &FileId) -> f64 {
        self.state
            .borrow()
            .pages(file)
            .map(FilePages::cached)
            .unwrap_or(0.0)
    }

    /// Cached bytes per file.
    pub fn cached_per_file(&self) -> BTreeMap<FileId, f64> {
        let s = self.state.borrow();
        s.index
            .iter()
            .map(|(k, &i)| (k, &s.slot(i).pages))
            .filter(|(_, p)| p.cached() > EPS)
            .map(|(k, p)| (k.clone(), p.cached()))
            .collect()
    }

    /// Aggregate counters.
    pub fn counters(&self) -> KernelCacheCounters {
        self.state.borrow().counters
    }

    /// Records readahead disk traffic (bytes actually read ahead of demand).
    pub fn note_prefetch(&self, bytes: f64) {
        if bytes > 0.0 {
            self.state.borrow_mut().counters.prefetched += bytes;
        }
    }

    /// Records time a writer spent blocked in dirty-page throttling.
    pub fn note_throttle_stall(&self, seconds: f64) {
        if seconds > 0.0 {
            self.state.borrow_mut().counters.throttle_stall_seconds += seconds;
        }
    }

    /// Registers anonymous application memory.
    pub fn use_anonymous_memory(&self, amount: f64) {
        if amount > 0.0 {
            self.state.borrow_mut().anonymous += amount;
        }
    }

    /// Releases anonymous application memory (saturating at zero).
    pub fn release_anonymous_memory(&self, amount: f64) {
        if amount > 0.0 {
            let mut s = self.state.borrow_mut();
            s.anonymous = (s.anonymous - amount).max(0.0);
        }
    }

    /// Marks a file as being written (protected from eviction) or not.
    pub fn set_write_open(&self, file: &FileId, open: bool) {
        let mut s = self.state.borrow_mut();
        let i = s.ensure_slot(file);
        s.slot_mut(i).pages.write_open = open;
    }

    /// Drops all cached pages of a file.
    pub fn invalidate_file(&self, file: &FileId) -> f64 {
        let mut s = self.state.borrow_mut();
        let Some(i) = s.index.remove(file) else {
            return 0.0;
        };
        s.unlink(i, CLEAN);
        s.unlink(i, DIRTY);
        let pages = s.slots[i as usize]
            .take()
            .expect("indexed slot is live")
            .pages;
        s.free_slots.push(i);
        s.cached_total = (s.cached_total - pages.cached()).max(0.0);
        s.dirty_total = (s.dirty_total - pages.dirty()).max(0.0);
        s.group_adjust(file, -pages.cached(), -pages.dirty());
        s.debug_validate();
        pages.cached()
    }

    /// Assigns `file` to cache group `group` (a tenant, in memcg terms), or
    /// clears the assignment with `None`. The file's resident and dirty
    /// bytes move to the new group's aggregates; future cache traffic for
    /// the file is attributed there. Assignments survive eviction and
    /// crashes — they are configuration, not cache state.
    pub fn set_file_group(&self, file: &FileId, group: Option<u32>) {
        let mut s = self.state.borrow_mut();
        let (cached, dirty) = s
            .pages(file)
            .map(|p| (p.cached(), p.dirty()))
            .unwrap_or((0.0, 0.0));
        if let Some(&old) = s.group_of.get(file) {
            if let Some(gb) = s.group_bytes.get_mut(&old) {
                gb.cached = (gb.cached - cached).max(0.0);
                gb.dirty = (gb.dirty - dirty).max(0.0);
            }
        }
        match group {
            Some(g) => {
                s.group_of.insert(file.clone(), g);
                let gb = s.group_bytes.entry(g).or_default();
                gb.cached += cached;
                gb.dirty += dirty;
            }
            None => {
                s.group_of.remove(file);
            }
        }
        s.debug_validate();
    }

    /// Cached bytes (clean + dirty) currently attributed to a cache group.
    pub fn group_cached(&self, group: u32) -> f64 {
        self.state
            .borrow()
            .group_bytes
            .get(&group)
            .map_or(0.0, |gb| gb.cached)
    }

    /// Dirty bytes currently attributed to a cache group.
    pub fn group_dirty(&self, group: u32) -> f64 {
        self.state
            .borrow()
            .group_bytes
            .get(&group)
            .map_or(0.0, |gb| gb.dirty)
    }

    /// Evicts up to `amount` bytes of clean pages belonging to one cache
    /// group. Same victim ordering and protection passes as
    /// [`KernelCache::evict`], restricted to the group's files.
    pub fn evict_group(&self, amount: f64, group: u32) -> f64 {
        if amount <= EPS {
            return 0.0;
        }
        let mut s = self.state.borrow_mut();
        let mut order = s.chain_candidates(CLEAN, |p| p.clean() > EPS);
        order.retain(|&i| s.group_of.get(&s.slot(i).file) == Some(&group));
        order.sort_by(|&a, &b| {
            let ka = s.policy.file_rank(&s.slot(a).meta);
            let kb = s.policy.file_rank(&s.slot(b).meta);
            (ka, s.slot(a).pages.last_access, &s.slot(a).file).cmp(&(
                kb,
                s.slot(b).pages.last_access,
                &s.slot(b).file,
            ))
        });
        let use_ref = s.policy.uses_reference_bits();
        let mut evicted = 0.0;
        for respect_protection in [true, false] {
            for &i in &order {
                if evicted >= amount - EPS {
                    break;
                }
                let st = &mut *s;
                let slot = st.slots[i as usize].as_mut().expect("vacant file slot");
                if respect_protection
                    && self.tuning.protect_files_being_written
                    && slot.pages.write_open
                {
                    continue;
                }
                if respect_protection && use_ref && st.policy.file_second_chance(&mut slot.meta) {
                    continue;
                }
                let removed = slot.pages.evict_clean(amount - evicted);
                if removed > EPS {
                    slot.resident.trim_front(removed);
                    if slot.pages.cached() <= EPS {
                        st.policy.file_on_evict(&slot.file, &slot.meta);
                    }
                    let f = slot.file.clone();
                    st.group_adjust(&f, -removed, 0.0);
                }
                evicted += removed;
            }
            if evicted >= amount - EPS || (!self.tuning.protect_files_being_written && !use_ref) {
                break;
            }
        }
        s.counters.evicted += evicted;
        s.cached_total = (s.cached_total - evicted).max(0.0);
        s.debug_validate();
        evicted
    }

    /// Writes back up to `amount` bytes of one cache group's dirty pages,
    /// oldest dirty file first, simulating the disk writes. Counted as
    /// throttled (synchronous) writeback. Returns the amount written back.
    pub async fn write_back_group(&self, amount: f64, group: u32) -> f64 {
        if amount <= EPS {
            return 0.0;
        }
        let flushed = {
            let mut s = self.state.borrow_mut();
            let mut order = s.chain_candidates(DIRTY, |p| p.dirty() > EPS);
            order.retain(|&i| s.group_of.get(&s.slot(i).file) == Some(&group));
            let key = |s: &State, i: u32| {
                let slot = s.slot(i);
                slot.pages.oldest_dirty.unwrap_or(slot.pages.last_access)
            };
            order.sort_by(|&a, &b| {
                (key(&s, a), &s.slot(a).file).cmp(&(key(&s, b), &s.slot(b).file))
            });
            let mut flushed = 0.0;
            for &i in &order {
                if flushed >= amount - EPS {
                    break;
                }
                let cleaned = s.slot_mut(i).pages.clean_dirty(amount - flushed);
                flushed += cleaned;
                if cleaned > 0.0 {
                    s.slot_mut(i).dirty.trim_front(cleaned);
                    s.link(i, CLEAN);
                    let f = s.slot(i).file.clone();
                    s.group_adjust(&f, 0.0, -cleaned);
                }
            }
            s.counters.throttled_writeback += flushed;
            s.dirty_total = (s.dirty_total - flushed).max(0.0);
            s.debug_validate();
            flushed
        };
        if flushed > EPS {
            self.disk.write(flushed).await;
        }
        flushed
    }

    /// Enforces memcg-style limits on one cache group: writes back the
    /// group's dirty pages above `max_dirty`, evicts its clean pages above
    /// `max_bytes`, and — if the group still exceeds its cap because the
    /// overflow is dirty — flushes and evicts that remainder too. Disk write
    /// time is simulated. Returns `(evicted, flushed)` byte totals.
    pub async fn enforce_group_limits(
        &self,
        group: u32,
        max_bytes: f64,
        max_dirty: f64,
    ) -> (f64, f64) {
        let mut flushed = 0.0;
        let over_dirty = self.group_dirty(group) - max_dirty;
        if over_dirty > EPS {
            flushed += self.write_back_group(over_dirty, group).await;
        }
        let mut evicted = 0.0;
        let over = self.group_cached(group) - max_bytes;
        if over > EPS {
            evicted += self.evict_group(over, group);
        }
        let still_over = self.group_cached(group) - max_bytes;
        if still_over > EPS {
            flushed += self.write_back_group(still_over, group).await;
            let rest = self.group_cached(group) - max_bytes;
            if rest > EPS {
                evicted += self.evict_group(rest, group);
            }
        }
        (evicted, flushed)
    }

    /// Evicts up to `amount` bytes of clean pages, lowest-ranked and
    /// least-recently-used file first, skipping files currently being written
    /// (if the corresponding tunable is enabled) and `exclude`. Returns the
    /// evicted amount.
    ///
    /// Candidates come from the has-clean membership chain, so only files
    /// actually holding clean pages are visited; the sort orders victims by
    /// `(policy rank, last_access, file name)`. The default
    /// [`TwoList`](pagecache::EvictionPolicy::TwoList) policy ranks every
    /// file 0, reproducing the historical `(last_access, file name)`
    /// selection order exactly.
    pub fn evict(&self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPS {
            return 0.0;
        }
        let mut s = self.state.borrow_mut();
        let mut order = s.chain_candidates(CLEAN, |p| p.clean() > EPS);
        order.sort_by(|&a, &b| {
            let ka = s.policy.file_rank(&s.slot(a).meta);
            let kb = s.policy.file_rank(&s.slot(b).meta);
            (ka, s.slot(a).pages.last_access, &s.slot(a).file).cmp(&(
                kb,
                s.slot(b).pages.last_access,
                &s.slot(b).file,
            ))
        });
        let use_ref = s.policy.uses_reference_bits();
        let mut evicted = 0.0;
        // First pass: respect the write-open protection (and, under a
        // reference-bit policy, grant referenced files one second chance);
        // second pass: ignore both if we are still short (the kernel will
        // reclaim those pages too under sufficient pressure).
        for respect_protection in [true, false] {
            for &i in &order {
                if evicted >= amount - EPS {
                    break;
                }
                if exclude.is_some_and(|f| f == &s.slot(i).file) {
                    continue;
                }
                let st = &mut *s;
                let slot = st.slots[i as usize].as_mut().expect("vacant file slot");
                if respect_protection
                    && self.tuning.protect_files_being_written
                    && slot.pages.write_open
                {
                    continue;
                }
                if respect_protection && use_ref && st.policy.file_second_chance(&mut slot.meta) {
                    continue;
                }
                let removed = slot.pages.evict_clean(amount - evicted);
                if removed > EPS {
                    // Keep the range view in sync: reclaimed pages leave from
                    // the lowest offsets (the LRU end under sequential
                    // access).
                    slot.resident.trim_front(removed);
                    if slot.pages.cached() <= EPS {
                        st.policy.file_on_evict(&slot.file, &slot.meta);
                    }
                    let f = slot.file.clone();
                    st.group_adjust(&f, -removed, 0.0);
                }
                evicted += removed;
            }
            if evicted >= amount - EPS || (!self.tuning.protect_files_being_written && !use_ref) {
                break;
            }
        }
        s.counters.evicted += evicted;
        s.cached_total = (s.cached_total - evicted).max(0.0);
        s.debug_validate();
        evicted
    }

    /// Writes back up to `amount` bytes of dirty pages, oldest dirty file
    /// first, and simulates the disk writes. Returns the amount written back.
    pub async fn write_back(&self, amount: f64, throttled: bool) -> f64 {
        if amount <= EPS {
            return 0.0;
        }
        let flushed = {
            let mut s = self.state.borrow_mut();
            // Oldest-dirty-first over the has-dirty chain members only; ties
            // break on the file name, matching the historical stable sort
            // over the name-ordered file table.
            let mut order = s.chain_candidates(DIRTY, |p| p.dirty() > EPS);
            let key = |s: &State, i: u32| {
                let slot = s.slot(i);
                slot.pages.oldest_dirty.unwrap_or(slot.pages.last_access)
            };
            order.sort_by(|&a, &b| {
                (key(&s, a), &s.slot(a).file).cmp(&(key(&s, b), &s.slot(b).file))
            });
            let mut flushed = 0.0;
            for &i in &order {
                if flushed >= amount - EPS {
                    break;
                }
                let cleaned = s.slot_mut(i).pages.clean_dirty(amount - flushed);
                flushed += cleaned;
                if cleaned > 0.0 {
                    // Partial writeback cleans the durability ledger from
                    // the lowest offsets (deterministic approximation).
                    s.slot_mut(i).dirty.trim_front(cleaned);
                    // The cleaned pages are now clean cache: make sure the
                    // file is reachable by the eviction pass.
                    s.link(i, CLEAN);
                    let f = s.slot(i).file.clone();
                    s.group_adjust(&f, 0.0, -cleaned);
                }
            }
            if throttled {
                s.counters.throttled_writeback += flushed;
            } else {
                s.counters.background_writeback += flushed;
            }
            s.dirty_total = (s.dirty_total - flushed).max(0.0);
            s.debug_validate();
            flushed
        };
        if flushed > EPS {
            self.disk.write(flushed).await;
        }
        flushed
    }

    /// Writes back every dirty page older than the expiration age.
    pub async fn write_back_expired(&self) -> f64 {
        let now = self.ctx.now();
        if self.dirty() <= EPS {
            return 0.0;
        }
        let amount = {
            // Walk only the has-dirty chain members (pruning stale ones).
            let mut s = self.state.borrow_mut();
            let candidates = s.chain_candidates(DIRTY, |p| p.dirty() > EPS);
            candidates
                .iter()
                .map(|&i| &s.slot(i).pages)
                .filter(|p| {
                    p.oldest_dirty
                        .map(|t| now.duration_since(t) > self.tuning.dirty_expire)
                        .unwrap_or(false)
                })
                .map(FilePages::dirty)
                .sum::<f64>()
        };
        self.write_back(amount, false).await
    }

    /// Adds clean pages of a file that were just read from disk. A corollary
    /// of [`KernelCache::insert_clean_range`] at the file's resident
    /// high-water mark (sequential whole-file traffic lands at its true
    /// offsets).
    pub fn insert_clean(&self, file: &FileId, bytes: f64) {
        let start = self.resident_high_water(file);
        self.insert_clean_range(file, start, start + bytes);
    }

    /// Adds dirty pages of a file that were just written by an application.
    /// A corollary of [`KernelCache::insert_dirty_range`] at the file's
    /// resident high-water mark.
    pub fn insert_dirty(&self, file: &FileId, bytes: f64) {
        let start = self.resident_high_water(file);
        self.insert_dirty_range(file, start, start + bytes);
    }

    /// Bytes of `[start, end)` of `file` that are resident in the cache.
    pub fn resident_len(&self, file: &FileId, start: f64, end: f64) -> f64 {
        let s = self.state.borrow();
        s.index
            .get(file)
            .map_or(0.0, |&i| s.slot(i).resident.covered_len(start, end))
    }

    /// The sub-ranges of `[start, end)` of `file` that are *not* resident, in
    /// offset order — the disk-read plan of a range read. Callers capture
    /// this *before* any reclaim they trigger, so the bytes they insert
    /// afterwards are exactly the bytes they read from disk.
    pub fn uncovered(&self, file: &FileId, start: f64, end: f64) -> Vec<(f64, f64)> {
        let s = self.state.borrow();
        s.index.get(file).map_or_else(
            || vec![(start, end)],
            |&i| s.slot(i).resident.gaps(start, end),
        )
    }

    /// End offset of the file's highest resident span (0 when nothing is
    /// cached).
    pub fn resident_high_water(&self, file: &FileId) -> f64 {
        let s = self.state.borrow();
        s.index
            .get(file)
            .map_or(0.0, |&i| s.slot(i).resident.high_water())
    }

    /// Adds the *non-resident* part of `[start, end)` of `file` as clean
    /// pages just read from disk. Already-resident bytes are left untouched
    /// (the caller served them from the cache), so the float aggregates and
    /// the range view grow by the same amount. Returns the number of bytes
    /// actually inserted.
    pub fn insert_clean_range(&self, file: &FileId, start: f64, end: f64) -> f64 {
        if end - start <= EPS {
            return 0.0;
        }
        let now = self.ctx.now();
        let mut s = self.state.borrow_mut();
        let i = s.ensure_slot(file);
        let added = {
            let st = &mut *s;
            let slot = st.slots[i as usize].as_mut().expect("vacant file slot");
            let added = (end - start) - slot.resident.covered_len(start, end);
            slot.resident.insert(start, end);
            slot.pages.inactive_clean += added;
            slot.pages.last_access = now;
            st.policy.file_admit(&slot.file, &mut slot.meta);
            added
        };
        if added > EPS {
            s.link(i, CLEAN);
            s.cached_total += added;
            s.group_adjust(file, added, 0.0);
        }
        s.debug_validate();
        added
    }

    /// Adds `[start, end)` of `file` as dirty pages just written by an
    /// application. Non-resident bytes enter the cache as new inactive dirty
    /// pages; bytes that were already resident are *re-dirtied* in place
    /// (clean pages move to the dirty share, already-dirty pages stay
    /// dirty), so rewriting the same record does not inflate the cache.
    pub fn insert_dirty_range(&self, file: &FileId, start: f64, end: f64) {
        if end - start <= EPS {
            return;
        }
        let now = self.ctx.now();
        let mut s = self.state.borrow_mut();
        let i = s.ensure_slot(file);
        let (added, redirtied) = {
            let st = &mut *s;
            let slot = st.slots[i as usize].as_mut().expect("vacant file slot");
            st.policy.file_admit(&slot.file, &mut slot.meta);
            let overlap = slot.resident.covered_len(start, end);
            let added = (end - start) - overlap;
            slot.resident.insert(start, end);
            slot.dirty.insert(start, end);
            let pages = &mut slot.pages;
            pages.inactive_dirty += added;
            // Overlapped pages turn dirty where they sit; pages of the
            // overlap that were already dirty need no accounting change.
            let redirty_inactive = pages.inactive_clean.min(overlap);
            pages.inactive_clean -= redirty_inactive;
            pages.inactive_dirty += redirty_inactive;
            let redirty_active = pages.active_clean.min(overlap - redirty_inactive);
            pages.active_clean -= redirty_active;
            pages.active_dirty += redirty_active;
            pages.last_access = now;
            if pages.oldest_dirty.is_none() {
                pages.oldest_dirty = Some(now);
            }
            (added, redirty_inactive + redirty_active)
        };
        s.link(i, DIRTY);
        s.cached_total += added;
        s.dirty_total += added + redirtied;
        s.group_adjust(file, added, added + redirtied);
        s.debug_validate();
    }

    /// Writes back every dirty page of one file (`fsync`), simulating the
    /// disk write. O(1) bookkeeping via the file's slab slot. Counted as
    /// throttled (synchronous) writeback. Returns the amount written back.
    pub async fn write_back_file(&self, file: &FileId) -> f64 {
        let flushed = {
            let mut s = self.state.borrow_mut();
            let Some(&i) = s.index.get(file) else {
                return 0.0;
            };
            let dirty = s.slot(i).pages.dirty();
            if dirty <= EPS {
                return 0.0;
            }
            let cleaned = s.slot_mut(i).pages.clean_dirty(dirty);
            if cleaned > 0.0 {
                s.link(i, CLEAN);
            }
            // Every written position of the file is now on disk.
            s.slot_mut(i).dirty = RangeSet::default();
            s.counters.throttled_writeback += cleaned;
            s.dirty_total = (s.dirty_total - cleaned).max(0.0);
            s.group_adjust(file, 0.0, -cleaned);
            s.debug_validate();
            cleaned
        };
        if flushed > EPS {
            self.disk.write(flushed).await;
        }
        flushed
    }

    /// The byte ranges of `file` that were written but have not yet reached
    /// the disk — the durability ledger a crash turns into lost data.
    /// Sorted and disjoint; empty for fully written-back (or unknown) files.
    pub fn dirty_ranges(&self, file: &FileId) -> Vec<(f64, f64)> {
        let s = self.state.borrow();
        s.index
            .get(file)
            .map_or_else(Vec::new, |&i| s.slot(i).dirty.spans.clone())
    }

    /// Simulated power loss: drops every cached page and all anonymous
    /// memory, and returns each file's lost dirty byte ranges (sorted by
    /// file id). The trace and counters survive — they describe the run,
    /// not the volatile state. Takes no simulated time.
    pub fn crash_discard(&self) -> Vec<(FileId, Vec<(f64, f64)>)> {
        let mut s = self.state.borrow_mut();
        let entries: Vec<(FileId, u32)> = s.index.iter().map(|(k, &i)| (k.clone(), i)).collect();
        let mut lost = Vec::new();
        for (file, i) in entries {
            let slot = s.slots[i as usize].take().expect("indexed slot is live");
            if !slot.dirty.spans.is_empty() {
                lost.push((file, slot.dirty.spans));
            }
        }
        s.index.clear();
        s.slots.clear();
        s.free_slots.clear();
        s.chains = [Chain::default(), Chain::default()];
        s.anonymous = 0.0;
        s.cached_total = 0.0;
        s.dirty_total = 0.0;
        // Group *aggregates* are volatile cache state and reset with it; the
        // group *assignments* are configuration and survive the crash.
        s.group_bytes.clear();
        s.debug_validate();
        lost
    }

    /// Records a second access to `bytes` of a file: promotes them from the
    /// inactive to the active list and notifies the replacement policy
    /// (reference bit / hotness / generation stamp, depending on the policy).
    pub fn touch(&self, file: &FileId, bytes: f64) {
        if bytes <= EPS {
            return;
        }
        let now = self.ctx.now();
        let mut s = self.state.borrow_mut();
        let st = &mut *s;
        if let Some(&i) = st.index.get(file) {
            let slot = st.slots[i as usize].as_mut().expect("vacant file slot");
            slot.pages.promote(bytes);
            slot.pages.last_access = now;
            st.policy.file_touch(&slot.file, &mut slot.meta);
        }
    }

    /// The dirty threshold in bytes (`dirty_ratio * available memory`).
    pub fn dirty_threshold(&self) -> f64 {
        self.tuning.dirty_ratio * self.available_memory()
    }

    /// The background writeback threshold in bytes.
    pub fn background_threshold(&self) -> f64 {
        self.tuning.dirty_background_ratio * self.available_memory()
    }

    /// Records a memory sample into the trace and returns it.
    pub fn sample(&self) -> MemorySample {
        let now = self.ctx.now();
        let cached = self.cached();
        let dirty = self.dirty();
        let anonymous = self.anonymous();
        let sample = MemorySample {
            time: now,
            total: self.tuning.total_memory,
            used: (cached + anonymous).min(self.tuning.total_memory),
            cached,
            dirty,
            anonymous,
        };
        self.state.borrow_mut().trace.push(sample.clone());
        sample
    }

    /// The memory profile collected so far.
    pub fn trace(&self) -> MemoryTrace {
        self.state.borrow().trace.clone()
    }

    /// Labelled snapshot of the cache content per file.
    pub fn cache_content_snapshot(&self, label: impl Into<String>) -> CacheContentSnapshot {
        CacheContentSnapshot {
            label: label.into(),
            time: self.ctx.now().as_secs(),
            per_file: self.cached_per_file(),
        }
    }

    /// Spawns the background writeback threads (kupdate/flusher): every
    /// `writeback_interval` seconds they write back expired dirty pages, plus
    /// everything above the background dirty threshold.
    pub fn spawn_writeback_threads(&self) -> JoinHandle<()> {
        let cache = self.clone();
        self.ctx
            .clone()
            .spawn(async move { cache.run_writeback_loop().await })
    }

    /// Body of the background writeback loop.
    pub async fn run_writeback_loop(&self) {
        loop {
            if self.state.borrow().stop {
                break;
            }
            let start = self.ctx.now();
            self.write_back_expired().await;
            let over_background = self.dirty() - self.background_threshold();
            if over_background > EPS {
                self.write_back(over_background, false).await;
            }
            let elapsed = self.ctx.now().duration_since(start);
            if elapsed < self.tuning.writeback_interval {
                self.ctx
                    .sleep(self.tuning.writeback_interval - elapsed)
                    .await;
            }
        }
    }

    /// Asks the background writeback loop to exit at its next wakeup.
    pub fn stop(&self) {
        self.state.borrow_mut().stop = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use pagecache::EvictionPolicy;
    use storage_model::{units::MB, DeviceSpec};

    fn setup(total_mb: f64) -> (Simulation, KernelCache) {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory =
            MemoryDevice::new(&ctx, DeviceSpec::symmetric(2764.0 * MB, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "d",
            DeviceSpec::asymmetric(510.0 * MB, 420.0 * MB, 0.0, f64::INFINITY),
        );
        let cache = KernelCache::new(&ctx, KernelTuning::with_memory(total_mb * MB), memory, disk);
        (sim, cache)
    }

    fn setup_policy(total_mb: f64, policy: EvictionPolicy) -> (Simulation, KernelCache) {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory =
            MemoryDevice::new(&ctx, DeviceSpec::symmetric(2764.0 * MB, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "d",
            DeviceSpec::asymmetric(510.0 * MB, 420.0 * MB, 0.0, f64::INFINITY),
        );
        let cache = KernelCache::new(
            &ctx,
            KernelTuning::with_memory(total_mb * MB).with_eviction_policy(policy),
            memory,
            disk,
        );
        (sim, cache)
    }

    #[test]
    fn group_aggregates_follow_inserts_writeback_and_eviction() {
        let (sim, cache) = setup(10_000.0);
        cache.set_file_group(&"a".into(), Some(1));
        cache.set_file_group(&"b".into(), Some(2));
        cache.insert_clean(&"a".into(), 100.0 * MB);
        cache.insert_clean(&"shared".into(), 50.0 * MB); // ungrouped
        let c = cache.clone();
        let h = sim.spawn(async move {
            c.insert_dirty(&"b".into(), 80.0 * MB);
            approx(c.group_cached(1), 100.0 * MB);
            approx(c.group_cached(2), 80.0 * MB);
            approx(c.group_dirty(2), 80.0 * MB);
            // Group writeback cleans only group 2.
            let flushed = c.write_back_group(f64::INFINITY, 2).await;
            approx(flushed, 80.0 * MB);
            approx(c.group_dirty(2), 0.0);
            approx(c.group_cached(2), 80.0 * MB);
            // Group eviction reclaims only group 1.
            let evicted = c.evict_group(f64::INFINITY, 1);
            approx(evicted, 100.0 * MB);
            approx(c.group_cached(1), 0.0);
            approx(c.cached_amount(&"shared".into()), 50.0 * MB);
            approx(c.cached_amount(&"b".into()), 80.0 * MB);
        });
        sim.run();
        assert!(h.is_finished());
    }

    #[test]
    fn enforce_group_limits_caps_cached_and_dirty_bytes() {
        let (sim, cache) = setup(10_000.0);
        cache.set_file_group(&"t".into(), Some(9));
        cache.insert_clean(&"t".into(), 300.0 * MB);
        let c = cache.clone();
        let h = sim.spawn(async move {
            c.insert_dirty(&"t2".into(), 200.0 * MB);
            c.set_file_group(&"t2".into(), Some(9));
            // 500 MB cached / 200 MB dirty; cap at 250 / 50.
            let (evicted, flushed) = c.enforce_group_limits(9, 250.0 * MB, 50.0 * MB).await;
            approx(flushed, 150.0 * MB);
            approx(evicted, 250.0 * MB);
            approx(c.group_cached(9), 250.0 * MB);
            approx(c.group_dirty(9), 50.0 * MB);
        });
        sim.run();
        assert!(h.is_finished());
    }

    #[test]
    fn group_assignment_survives_crash_but_aggregates_reset() {
        let (_sim, cache) = setup(10_000.0);
        cache.set_file_group(&"f".into(), Some(3));
        cache.insert_clean(&"f".into(), 100.0 * MB);
        approx(cache.group_cached(3), 100.0 * MB);
        cache.crash_discard();
        approx(cache.group_cached(3), 0.0);
        // The file still belongs to group 3 after the crash.
        cache.insert_clean(&"f".into(), 40.0 * MB);
        approx(cache.group_cached(3), 40.0 * MB);
    }

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn accounting_and_thresholds() {
        let (_sim, cache) = setup(1000.0);
        cache.insert_clean(&"f".into(), 100.0 * MB);
        cache.insert_dirty(&"g".into(), 50.0 * MB);
        cache.use_anonymous_memory(200.0 * MB);
        approx(cache.cached(), 150.0 * MB);
        approx(cache.dirty(), 50.0 * MB);
        approx(cache.free_memory(), 650.0 * MB);
        approx(cache.available_memory(), 800.0 * MB);
        approx(cache.dirty_threshold(), 160.0 * MB);
        approx(cache.background_threshold(), 80.0 * MB);
        approx(cache.cached_amount(&"f".into()), 100.0 * MB);
        assert_eq!(cache.cached_per_file().len(), 2);
    }

    #[test]
    fn dirty_ledger_tracks_unflushed_positions() {
        let (sim, cache) = setup(1000.0);
        cache.insert_dirty_range(&"f".into(), 0.0, 50.0 * MB);
        cache.insert_dirty_range(&"f".into(), 80.0 * MB, 100.0 * MB);
        assert_eq!(
            cache.dirty_ranges(&"f".into()),
            vec![(0.0, 50.0 * MB), (80.0 * MB, 100.0 * MB)]
        );
        // fsync clears the ledger entirely.
        let h = sim.spawn({
            let cache = cache.clone();
            async move { cache.write_back_file(&"f".into()).await }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 70.0 * MB);
        assert!(cache.dirty_ranges(&"f".into()).is_empty());
        // Redirtying after the flush starts a fresh ledger.
        cache.insert_dirty_range(&"f".into(), 10.0 * MB, 20.0 * MB);
        assert_eq!(
            cache.dirty_ranges(&"f".into()),
            vec![(10.0 * MB, 20.0 * MB)]
        );
    }

    #[test]
    fn partial_writeback_trims_the_ledger_from_the_front() {
        let (sim, cache) = setup(1000.0);
        cache.insert_dirty_range(&"f".into(), 0.0, 100.0 * MB);
        let h = sim.spawn({
            let cache = cache.clone();
            async move { cache.write_back(40.0 * MB, false).await }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 40.0 * MB);
        assert_eq!(
            cache.dirty_ranges(&"f".into()),
            vec![(40.0 * MB, 100.0 * MB)]
        );
    }

    #[test]
    fn crash_discard_returns_lost_ranges_and_resets_state() {
        let (sim, cache) = setup(1000.0);
        cache.insert_clean(&"clean".into(), 100.0 * MB);
        cache.insert_dirty_range(&"wal".into(), 0.0, 30.0 * MB);
        cache.insert_dirty_range(&"logged".into(), 0.0, 10.0 * MB);
        cache.use_anonymous_memory(50.0 * MB);
        // A written-back file has nothing to lose.
        let h = sim.spawn({
            let cache = cache.clone();
            async move { cache.write_back_file(&"logged".into()).await }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 10.0 * MB);
        let lost = cache.crash_discard();
        assert_eq!(lost, vec![("wal".into(), vec![(0.0, 30.0 * MB)])]);
        approx(cache.cached(), 0.0);
        approx(cache.dirty(), 0.0);
        approx(cache.anonymous(), 0.0);
        assert!(cache.cached_per_file().is_empty());
        // The cache keeps working after the reset.
        cache.insert_clean(&"fresh".into(), 10.0 * MB);
        approx(cache.cached(), 10.0 * MB);
    }

    #[test]
    fn eviction_protects_files_being_written() {
        let (_sim, cache) = setup(1000.0);
        cache.insert_clean(&"protected".into(), 100.0 * MB);
        cache.set_write_open(&"protected".into(), true);
        cache.insert_clean(&"victim".into(), 100.0 * MB);
        let evicted = cache.evict(100.0 * MB, None);
        approx(evicted, 100.0 * MB);
        approx(cache.cached_amount(&"protected".into()), 100.0 * MB);
        approx(cache.cached_amount(&"victim".into()), 0.0);
        // Under stronger pressure even protected files are reclaimed
        // (second pass).
        let evicted = cache.evict(100.0 * MB, None);
        approx(evicted, 100.0 * MB);
        approx(cache.cached_amount(&"protected".into()), 0.0);
    }

    #[test]
    fn eviction_is_lru_ordered_and_skips_dirty() {
        let (sim, cache) = setup(1000.0);
        let ctx = sim.context();
        let c = cache.clone();
        sim.spawn(async move {
            c.insert_clean(&"old".into(), 50.0 * MB);
            ctx.sleep(1.0).await;
            c.insert_clean(&"new".into(), 50.0 * MB);
            c.insert_dirty(&"dirty".into(), 50.0 * MB);
            let evicted = c.evict(60.0 * MB, None);
            approx(evicted, 60.0 * MB);
            // The older file went first.
            approx(c.cached_amount(&"old".into()), 0.0);
            approx(c.cached_amount(&"new".into()), 40.0 * MB);
            // Dirty data is never evicted.
            approx(c.cached_amount(&"dirty".into()), 50.0 * MB);
        });
        sim.run();
    }

    #[test]
    fn write_back_cleans_and_writes_to_disk() {
        let (sim, cache) = setup(10_000.0);
        let h = sim.spawn({
            let cache = cache.clone();
            async move {
                cache.insert_dirty(&"f".into(), 420.0 * MB);
                let flushed = cache.write_back(420.0 * MB, true).await;
                (flushed, cache.dirty())
            }
        });
        sim.run();
        let (flushed, dirty) = h.try_take_result().unwrap();
        approx(flushed, 420.0 * MB);
        approx(dirty, 0.0);
        approx(sim.now().as_secs(), 1.0); // 420 MB at 420 MB/s write bandwidth
        approx(cache.counters().throttled_writeback, 420.0 * MB);
        // Data stays cached (clean) after writeback.
        approx(cache.cached(), 420.0 * MB);
    }

    #[test]
    fn background_writeback_starts_at_background_threshold() {
        let (sim, cache) = setup(1000.0);
        cache.spawn_writeback_threads();
        let c = cache.clone();
        let ctx = sim.context();
        sim.spawn(async move {
            // 150 MB dirty > 10 % of 1000 MB: the background thread writes
            // back the 50 MB excess at its next wakeup even though nothing is
            // expired and the 20 % dirty ratio is not reached.
            c.insert_dirty(&"f".into(), 150.0 * MB);
            ctx.sleep(10.0).await;
            assert!(c.dirty() <= c.background_threshold() + 1.0);
            c.stop();
        });
        sim.run();
        assert!(cache.counters().background_writeback >= 49.0 * MB);
    }

    #[test]
    fn expired_dirty_data_is_written_back() {
        let (sim, cache) = setup(10_000.0);
        cache.spawn_writeback_threads();
        let c = cache.clone();
        let ctx = sim.context();
        sim.spawn(async move {
            // 100 MB dirty, under both thresholds: only expiration flushes it.
            c.insert_dirty(&"f".into(), 100.0 * MB);
            ctx.sleep(20.0).await;
            approx(c.dirty(), 100.0 * MB);
            ctx.sleep(20.0).await;
            approx(c.dirty(), 0.0);
            c.stop();
        });
        sim.run();
    }

    #[test]
    fn touch_promotes_to_active_list() {
        let (_sim, cache) = setup(1000.0);
        cache.insert_clean(&"f".into(), 100.0 * MB);
        cache.touch(&"f".into(), 60.0 * MB);
        // Promoted pages are protected from the first eviction pass only by
        // LRU order; total stays the same.
        approx(cache.cached_amount(&"f".into()), 100.0 * MB);
        let s = cache.state.borrow();
        let pages = s.pages(&"f".into()).unwrap();
        approx(pages.active_clean, 60.0 * MB);
        approx(pages.inactive_clean, 40.0 * MB);
    }

    #[test]
    fn clock_policy_gives_referenced_files_a_second_chance() {
        let (_sim, cache) = setup_policy(1000.0, EvictionPolicy::Clock);
        cache.insert_clean(&"a".into(), 50.0 * MB);
        cache.insert_clean(&"b".into(), 50.0 * MB);
        // The re-access sets `a`'s reference bit.
        cache.touch(&"a".into(), 10.0 * MB);
        approx(cache.evict(50.0 * MB, None), 50.0 * MB);
        // `a` would be first in name order but is spared once; `b` goes.
        approx(cache.cached_amount(&"a".into()), 50.0 * MB);
        approx(cache.cached_amount(&"b".into()), 0.0);
        // The second chance is consumed: the next eviction reclaims `a`.
        approx(cache.evict(50.0 * MB, None), 50.0 * MB);
        approx(cache.cached_amount(&"a".into()), 0.0);
    }

    #[test]
    fn two_q_reinserted_files_outrank_one_shot_scans() {
        let (_sim, cache) = setup_policy(1000.0, EvictionPolicy::TwoQ);
        cache.insert_clean(&"hot".into(), 50.0 * MB);
        // Fully reclaimed once: the file enters the ghost queue.
        approx(cache.evict(50.0 * MB, None), 50.0 * MB);
        // The re-insert is a ghost hit, classifying the file as hot (Am).
        cache.insert_clean(&"hot".into(), 50.0 * MB);
        cache.insert_clean(&"scan".into(), 50.0 * MB);
        approx(cache.evict(50.0 * MB, None), 50.0 * MB);
        // The one-shot scan ranks below the ghost-hit file and goes first.
        approx(cache.cached_amount(&"hot".into()), 50.0 * MB);
        approx(cache.cached_amount(&"scan".into()), 0.0);
    }

    #[test]
    fn mglru_policy_evicts_older_generations_first() {
        let (_sim, cache) = setup_policy(1000.0, EvictionPolicy::MglruGen);
        cache.insert_clean(&"z_old".into(), 50.0 * MB);
        cache.insert_clean(&"a_filler".into(), 1.0 * MB);
        // Enough touches to advance the generation counter past one aging
        // period, so later admissions carry a younger stamp.
        for _ in 0..40 {
            cache.touch(&"a_filler".into(), 1.0);
        }
        cache.insert_clean(&"a_young".into(), 50.0 * MB);
        approx(cache.evict(50.0 * MB, None), 50.0 * MB);
        // Without generation ranks the name tie-break would reclaim
        // `a_young` first; the older stamp of `z_old` outweighs it.
        approx(cache.cached_amount(&"z_old".into()), 0.0);
        approx(cache.cached_amount(&"a_young".into()), 50.0 * MB);
    }

    #[test]
    fn invalidate_and_release() {
        let (_sim, cache) = setup(1000.0);
        cache.insert_clean(&"f".into(), 100.0 * MB);
        cache.use_anonymous_memory(50.0 * MB);
        approx(cache.invalidate_file(&"f".into()), 100.0 * MB);
        approx(cache.cached(), 0.0);
        cache.release_anonymous_memory(500.0 * MB);
        approx(cache.anonymous(), 0.0);
        let snap = cache.cache_content_snapshot("end");
        assert_eq!(snap.per_file.len(), 0);
    }

    /// Tiny xorshift PRNG (no external dependencies; same generator family
    /// as the harness dispatcher).
    struct XorShift(u64);

    impl XorShift {
        fn new(seed: u64) -> Self {
            XorShift(seed.max(1))
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        /// A value in `[0, bound)`.
        fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Naive per-page model of a [`RangeSet`]: a `HashSet` of resident page
    /// indices. All driver operations are page-aligned, so every f64 value
    /// involved is an exact integer and comparisons can be byte-exact.
    #[derive(Default)]
    struct NaivePages(std::collections::HashSet<u64>);

    const PROP_PAGE: f64 = 4096.0;

    impl NaivePages {
        fn insert(&mut self, a: u64, b: u64) {
            self.0.extend(a..b);
        }

        /// Removes `k` pages from the lowest offsets.
        fn trim_front(&mut self, k: u64) {
            let mut pages: Vec<u64> = self.0.iter().copied().collect();
            pages.sort_unstable();
            for p in pages.into_iter().take(k as usize) {
                self.0.remove(&p);
            }
        }

        fn covered(&self, a: u64, b: u64) -> u64 {
            (a..b).filter(|p| self.0.contains(p)).count() as u64
        }

        /// Maximal uncovered page runs within `[a, b)`, as byte ranges.
        fn gaps(&self, a: u64, b: u64) -> Vec<(f64, f64)> {
            let mut out = Vec::new();
            let mut run_start = None;
            for p in a..b {
                match (self.0.contains(&p), run_start) {
                    (false, None) => run_start = Some(p),
                    (true, Some(s)) => {
                        out.push((s as f64 * PROP_PAGE, p as f64 * PROP_PAGE));
                        run_start = None;
                    }
                    _ => {}
                }
            }
            if let Some(s) = run_start {
                out.push((s as f64 * PROP_PAGE, b as f64 * PROP_PAGE));
            }
            out
        }

        fn total(&self) -> u64 {
            self.0.len() as u64
        }

        fn high_water(&self) -> f64 {
            self.0
                .iter()
                .max()
                .map_or(0.0, |&p| (p + 1) as f64 * PROP_PAGE)
        }
    }

    /// Property test: 12k randomized page-aligned insert/trim/query ops on a
    /// [`RangeSet`] must agree byte-exactly with the naive per-page model —
    /// total coverage, covered length of arbitrary ranges, the uncovered-gap
    /// plan, and the high-water mark, after every single op.
    #[test]
    fn range_set_matches_naive_page_model() {
        const PAGES: u64 = 512;
        const OPS: usize = 12_000;
        let mut rng = XorShift::new(0x9e3779b97f4a7c15);
        let mut rs = RangeSet::default();
        let mut naive = NaivePages::default();
        for op in 0..OPS {
            match rng.below(4) {
                0 | 1 => {
                    // Insert a random page range (inserts dominate so the
                    // set stays populated).
                    let a = rng.below(PAGES);
                    let b = (a + 1 + rng.below(64)).min(PAGES);
                    rs.insert(a as f64 * PROP_PAGE, b as f64 * PROP_PAGE);
                    naive.insert(a, b);
                }
                2 => {
                    // Trim a random number of pages from the front
                    // (occasionally more than are resident).
                    let k = rng.below(96);
                    rs.trim_front(k as f64 * PROP_PAGE);
                    naive.trim_front(k);
                }
                _ => {
                    // Zero-length insert: must be a no-op.
                    let a = rng.below(PAGES);
                    rs.insert(a as f64 * PROP_PAGE, a as f64 * PROP_PAGE);
                }
            }
            // Byte-exact coverage.
            assert_eq!(
                rs.total(),
                naive.total() as f64 * PROP_PAGE,
                "op {op}: total"
            );
            assert_eq!(rs.high_water(), naive.high_water(), "op {op}: high water");
            // A random query range (possibly empty, possibly past the end).
            let qa = rng.below(PAGES + 32);
            let qb = qa + rng.below(128);
            let (fa, fb) = (qa as f64 * PROP_PAGE, qb as f64 * PROP_PAGE);
            assert_eq!(
                rs.covered_len(fa, fb),
                naive.covered(qa, qb.min(PAGES)).min(qb - qa) as f64 * PROP_PAGE,
                "op {op}: covered_len({qa}, {qb})"
            );
            assert_eq!(
                rs.gaps(fa, fb),
                naive.gaps(qa, qb),
                "op {op}: gaps({qa}, {qb})"
            );
            // Structural invariants: sorted, disjoint, non-empty spans.
            for w in rs.spans.windows(2) {
                assert!(w[0].1 < w[1].0, "op {op}: touching/unsorted spans");
            }
            assert!(rs.spans.iter().all(|&(a, b)| b > a), "op {op}: empty span");
        }
    }

    #[test]
    #[should_panic(expected = "invalid kernel tuning")]
    fn invalid_tuning_rejected() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(MB, 0.0, f64::INFINITY));
        let disk = Disk::new(&ctx, "d", DeviceSpec::symmetric(MB, 0.0, f64::INFINITY));
        let mut tuning = KernelTuning::with_memory(1000.0 * MB);
        tuning.dirty_background_ratio = 0.9;
        let _ = KernelCache::new(&ctx, tuning, memory, disk);
    }
}
