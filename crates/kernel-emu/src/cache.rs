//! The emulated kernel page cache.
//!
//! Unlike the macroscopic model of the [`pagecache`] crate (variable-size data
//! blocks, one per I/O operation), the emulator tracks cache occupancy per
//! file at page granularity, and implements the kernel behaviours the paper
//! identifies as the source of its residual simulation error:
//!
//! * a **background dirty threshold** (`vm.dirty_background_ratio`): writeback
//!   starts well before the dirty ratio is hit, so dirty data drains faster
//!   than in the macroscopic model;
//! * **writer throttling** (`balance_dirty_pages`): when the dirty ratio is
//!   exceeded the writer itself writes back down to the background threshold;
//! * **eviction protection of files being written**: the kernel "tends to not
//!   evict pages that belong to files being currently written" (paper §IV-A).
//!
//! This emulator plays the role of the *real cluster node* in our
//! reproduction: simulators are evaluated by their error against it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use des::{JoinHandle, SimContext, SimTime};
use pagecache::{CacheContentSnapshot, FileId, MemorySample, MemoryTrace};
use storage_model::{Disk, MemoryDevice};

use crate::tuning::KernelTuning;

const EPS: f64 = 1e-6;

/// Per-file cache occupancy, split by LRU list and dirtiness.
#[derive(Debug, Default, Clone, Copy)]
struct FilePages {
    inactive_clean: f64,
    inactive_dirty: f64,
    active_clean: f64,
    active_dirty: f64,
    last_access: SimTime,
    oldest_dirty: Option<SimTime>,
    write_open: bool,
}

impl FilePages {
    fn cached(&self) -> f64 {
        self.inactive_clean + self.inactive_dirty + self.active_clean + self.active_dirty
    }

    fn dirty(&self) -> f64 {
        self.inactive_dirty + self.active_dirty
    }

    fn clean(&self) -> f64 {
        self.inactive_clean + self.active_clean
    }

    /// Marks up to `amount` dirty bytes clean (inactive first). Returns the
    /// amount cleaned.
    fn clean_dirty(&mut self, amount: f64) -> f64 {
        let from_inactive = self.inactive_dirty.min(amount);
        self.inactive_dirty -= from_inactive;
        self.inactive_clean += from_inactive;
        let from_active = self.active_dirty.min(amount - from_inactive);
        self.active_dirty -= from_active;
        self.active_clean += from_active;
        if self.dirty() <= EPS {
            self.oldest_dirty = None;
        }
        from_inactive + from_active
    }

    /// Removes up to `amount` clean bytes (inactive first, then active).
    /// Returns the amount removed.
    fn evict_clean(&mut self, amount: f64) -> f64 {
        let from_inactive = self.inactive_clean.min(amount);
        self.inactive_clean -= from_inactive;
        let from_active = self.active_clean.min(amount - from_inactive);
        self.active_clean -= from_active;
        from_inactive + from_active
    }

    /// Promotes up to `amount` bytes from the inactive to the active list
    /// (clean first), modelling a second access.
    fn promote(&mut self, amount: f64) {
        let clean = self.inactive_clean.min(amount);
        self.inactive_clean -= clean;
        self.active_clean += clean;
        let dirty = self.inactive_dirty.min(amount - clean);
        self.inactive_dirty -= dirty;
        self.active_dirty += dirty;
    }
}

/// Aggregate counters of the emulator.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct KernelCacheCounters {
    /// Bytes written back by the background writeback threads.
    pub background_writeback: f64,
    /// Bytes written back synchronously by throttled writers.
    pub throttled_writeback: f64,
    /// Bytes evicted under memory pressure.
    pub evicted: f64,
}

struct State {
    files: BTreeMap<FileId, FilePages>,
    anonymous: f64,
    /// Incrementally maintained sum of `FilePages::cached` over all files,
    /// so that [`KernelCache::cached`] (polled on every simulated request) is
    /// O(1) instead of a scan over the file table.
    cached_total: f64,
    /// Incrementally maintained sum of `FilePages::dirty` over all files.
    dirty_total: f64,
    trace: MemoryTrace,
    counters: KernelCacheCounters,
    stop: bool,
}

impl State {
    /// Scan-based oracle for the incremental totals; compiled into debug
    /// builds only.
    #[inline]
    fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            let cached: f64 = self.files.values().map(FilePages::cached).sum();
            let dirty: f64 = self.files.values().map(FilePages::dirty).sum();
            debug_assert!(
                (self.cached_total - cached).abs() <= EPS + 1e-9 * cached.abs(),
                "cached_total {} != scan {}",
                self.cached_total,
                cached
            );
            debug_assert!(
                (self.dirty_total - dirty).abs() <= EPS + 1e-9 * dirty.abs(),
                "dirty_total {} != scan {}",
                self.dirty_total,
                dirty
            );
        }
    }
}

/// The emulated kernel page cache of one host.
#[derive(Clone)]
pub struct KernelCache {
    ctx: SimContext,
    tuning: KernelTuning,
    memory: MemoryDevice,
    disk: Disk,
    state: Rc<RefCell<State>>,
}

impl KernelCache {
    /// Creates an emulated page cache.
    ///
    /// # Panics
    /// Panics if the tunables are invalid.
    pub fn new(ctx: &SimContext, tuning: KernelTuning, memory: MemoryDevice, disk: Disk) -> Self {
        tuning.validate().expect("invalid kernel tuning");
        KernelCache {
            ctx: ctx.clone(),
            tuning,
            memory,
            disk,
            state: Rc::new(RefCell::new(State {
                files: BTreeMap::new(),
                anonymous: 0.0,
                cached_total: 0.0,
                dirty_total: 0.0,
                trace: MemoryTrace::new(),
                counters: KernelCacheCounters::default(),
                stop: false,
            })),
        }
    }

    /// The kernel tunables.
    pub fn tuning(&self) -> &KernelTuning {
        &self.tuning
    }

    /// The disk dirty pages are written back to.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The memory bus.
    pub fn memory(&self) -> &MemoryDevice {
        &self.memory
    }

    /// Total cached bytes. O(1): maintained incrementally by every mutation.
    pub fn cached(&self) -> f64 {
        self.state.borrow().cached_total
    }

    /// Total dirty bytes. O(1): maintained incrementally by every mutation.
    pub fn dirty(&self) -> f64 {
        self.state.borrow().dirty_total
    }

    /// Anonymous application memory.
    pub fn anonymous(&self) -> f64 {
        self.state.borrow().anonymous
    }

    /// Free memory (total minus cache minus anonymous, clamped at zero).
    pub fn free_memory(&self) -> f64 {
        (self.tuning.total_memory - self.cached() - self.anonymous()).max(0.0)
    }

    /// Memory available to the page cache (total minus anonymous).
    pub fn available_memory(&self) -> f64 {
        (self.tuning.total_memory - self.anonymous()).max(0.0)
    }

    /// Cached bytes of one file.
    pub fn cached_amount(&self, file: &FileId) -> f64 {
        self.state
            .borrow()
            .files
            .get(file)
            .map(FilePages::cached)
            .unwrap_or(0.0)
    }

    /// Cached bytes per file.
    pub fn cached_per_file(&self) -> BTreeMap<FileId, f64> {
        self.state
            .borrow()
            .files
            .iter()
            .filter(|(_, p)| p.cached() > EPS)
            .map(|(k, p)| (k.clone(), p.cached()))
            .collect()
    }

    /// Aggregate counters.
    pub fn counters(&self) -> KernelCacheCounters {
        self.state.borrow().counters
    }

    /// Registers anonymous application memory.
    pub fn use_anonymous_memory(&self, amount: f64) {
        if amount > 0.0 {
            self.state.borrow_mut().anonymous += amount;
        }
    }

    /// Releases anonymous application memory (saturating at zero).
    pub fn release_anonymous_memory(&self, amount: f64) {
        if amount > 0.0 {
            let mut s = self.state.borrow_mut();
            s.anonymous = (s.anonymous - amount).max(0.0);
        }
    }

    /// Marks a file as being written (protected from eviction) or not.
    pub fn set_write_open(&self, file: &FileId, open: bool) {
        let mut s = self.state.borrow_mut();
        let entry = s.files.entry(file.clone()).or_default();
        entry.write_open = open;
    }

    /// Drops all cached pages of a file.
    pub fn invalidate_file(&self, file: &FileId) -> f64 {
        let mut s = self.state.borrow_mut();
        let Some(pages) = s.files.remove(file) else {
            return 0.0;
        };
        s.cached_total = (s.cached_total - pages.cached()).max(0.0);
        s.dirty_total = (s.dirty_total - pages.dirty()).max(0.0);
        s.debug_validate();
        pages.cached()
    }

    /// Evicts up to `amount` bytes of clean pages, least-recently-used file
    /// first, skipping files currently being written (if the corresponding
    /// tunable is enabled) and `exclude`. Returns the evicted amount.
    pub fn evict(&self, amount: f64, exclude: Option<&FileId>) -> f64 {
        if amount <= EPS {
            return 0.0;
        }
        let mut s = self.state.borrow_mut();
        let mut order: Vec<(FileId, SimTime)> = s
            .files
            .iter()
            .filter(|(_, p)| p.clean() > EPS)
            .map(|(k, p)| (k.clone(), p.last_access))
            .collect();
        order.sort_by_key(|a| a.1);
        let mut evicted = 0.0;
        // First pass: respect the write-open protection; second pass: ignore
        // it if we are still short (the kernel will reclaim those pages too
        // under sufficient pressure).
        for respect_protection in [true, false] {
            for (file, _) in &order {
                if evicted >= amount - EPS {
                    break;
                }
                if exclude == Some(file) {
                    continue;
                }
                let pages = s.files.get_mut(file).expect("file disappeared");
                if respect_protection && self.tuning.protect_files_being_written && pages.write_open
                {
                    continue;
                }
                evicted += pages.evict_clean(amount - evicted);
            }
            if evicted >= amount - EPS || !self.tuning.protect_files_being_written {
                break;
            }
        }
        s.counters.evicted += evicted;
        s.cached_total = (s.cached_total - evicted).max(0.0);
        s.debug_validate();
        evicted
    }

    /// Writes back up to `amount` bytes of dirty pages, oldest dirty file
    /// first, and simulates the disk writes. Returns the amount written back.
    pub async fn write_back(&self, amount: f64, throttled: bool) -> f64 {
        if amount <= EPS {
            return 0.0;
        }
        let flushed = {
            let mut s = self.state.borrow_mut();
            let mut order: Vec<(FileId, SimTime)> = s
                .files
                .iter()
                .filter(|(_, p)| p.dirty() > EPS)
                .map(|(k, p)| (k.clone(), p.oldest_dirty.unwrap_or(p.last_access)))
                .collect();
            order.sort_by_key(|a| a.1);
            let mut flushed = 0.0;
            for (file, _) in &order {
                if flushed >= amount - EPS {
                    break;
                }
                let pages = s.files.get_mut(file).expect("file disappeared");
                flushed += pages.clean_dirty(amount - flushed);
            }
            if throttled {
                s.counters.throttled_writeback += flushed;
            } else {
                s.counters.background_writeback += flushed;
            }
            s.dirty_total = (s.dirty_total - flushed).max(0.0);
            s.debug_validate();
            flushed
        };
        if flushed > EPS {
            self.disk.write(flushed).await;
        }
        flushed
    }

    /// Writes back every dirty page older than the expiration age.
    pub async fn write_back_expired(&self) -> f64 {
        let now = self.ctx.now();
        if self.dirty() <= EPS {
            return 0.0;
        }
        let amount = {
            let s = self.state.borrow();
            s.files
                .values()
                .filter(|p| {
                    p.dirty() > EPS
                        && p.oldest_dirty
                            .map(|t| now.duration_since(t) > self.tuning.dirty_expire)
                            .unwrap_or(false)
                })
                .map(FilePages::dirty)
                .sum::<f64>()
        };
        self.write_back(amount, false).await
    }

    /// Adds clean pages of a file that were just read from disk.
    pub fn insert_clean(&self, file: &FileId, bytes: f64) {
        if bytes <= EPS {
            return;
        }
        let now = self.ctx.now();
        let mut s = self.state.borrow_mut();
        let entry = s.files.entry(file.clone()).or_default();
        entry.inactive_clean += bytes;
        entry.last_access = now;
        s.cached_total += bytes;
        s.debug_validate();
    }

    /// Adds dirty pages of a file that were just written by an application.
    pub fn insert_dirty(&self, file: &FileId, bytes: f64) {
        if bytes <= EPS {
            return;
        }
        let now = self.ctx.now();
        let mut s = self.state.borrow_mut();
        let entry = s.files.entry(file.clone()).or_default();
        entry.inactive_dirty += bytes;
        entry.last_access = now;
        if entry.oldest_dirty.is_none() {
            entry.oldest_dirty = Some(now);
        }
        s.cached_total += bytes;
        s.dirty_total += bytes;
        s.debug_validate();
    }

    /// Records a second access to `bytes` of a file: promotes them from the
    /// inactive to the active list.
    pub fn touch(&self, file: &FileId, bytes: f64) {
        if bytes <= EPS {
            return;
        }
        let now = self.ctx.now();
        let mut s = self.state.borrow_mut();
        if let Some(entry) = s.files.get_mut(file) {
            entry.promote(bytes);
            entry.last_access = now;
        }
    }

    /// The dirty threshold in bytes (`dirty_ratio * available memory`).
    pub fn dirty_threshold(&self) -> f64 {
        self.tuning.dirty_ratio * self.available_memory()
    }

    /// The background writeback threshold in bytes.
    pub fn background_threshold(&self) -> f64 {
        self.tuning.dirty_background_ratio * self.available_memory()
    }

    /// Records a memory sample into the trace and returns it.
    pub fn sample(&self) -> MemorySample {
        let now = self.ctx.now();
        let cached = self.cached();
        let dirty = self.dirty();
        let anonymous = self.anonymous();
        let sample = MemorySample {
            time: now,
            total: self.tuning.total_memory,
            used: (cached + anonymous).min(self.tuning.total_memory),
            cached,
            dirty,
            anonymous,
        };
        self.state.borrow_mut().trace.push(sample.clone());
        sample
    }

    /// The memory profile collected so far.
    pub fn trace(&self) -> MemoryTrace {
        self.state.borrow().trace.clone()
    }

    /// Labelled snapshot of the cache content per file.
    pub fn cache_content_snapshot(&self, label: impl Into<String>) -> CacheContentSnapshot {
        CacheContentSnapshot {
            label: label.into(),
            time: self.ctx.now().as_secs(),
            per_file: self.cached_per_file(),
        }
    }

    /// Spawns the background writeback threads (kupdate/flusher): every
    /// `writeback_interval` seconds they write back expired dirty pages, plus
    /// everything above the background dirty threshold.
    pub fn spawn_writeback_threads(&self) -> JoinHandle<()> {
        let cache = self.clone();
        self.ctx
            .clone()
            .spawn(async move { cache.run_writeback_loop().await })
    }

    /// Body of the background writeback loop.
    pub async fn run_writeback_loop(&self) {
        loop {
            if self.state.borrow().stop {
                break;
            }
            let start = self.ctx.now();
            self.write_back_expired().await;
            let over_background = self.dirty() - self.background_threshold();
            if over_background > EPS {
                self.write_back(over_background, false).await;
            }
            let elapsed = self.ctx.now().duration_since(start);
            if elapsed < self.tuning.writeback_interval {
                self.ctx
                    .sleep(self.tuning.writeback_interval - elapsed)
                    .await;
            }
        }
    }

    /// Asks the background writeback loop to exit at its next wakeup.
    pub fn stop(&self) {
        self.state.borrow_mut().stop = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use storage_model::{units::MB, DeviceSpec};

    fn setup(total_mb: f64) -> (Simulation, KernelCache) {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory =
            MemoryDevice::new(&ctx, DeviceSpec::symmetric(2764.0 * MB, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "d",
            DeviceSpec::asymmetric(510.0 * MB, 420.0 * MB, 0.0, f64::INFINITY),
        );
        let cache = KernelCache::new(&ctx, KernelTuning::with_memory(total_mb * MB), memory, disk);
        (sim, cache)
    }

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn accounting_and_thresholds() {
        let (_sim, cache) = setup(1000.0);
        cache.insert_clean(&"f".into(), 100.0 * MB);
        cache.insert_dirty(&"g".into(), 50.0 * MB);
        cache.use_anonymous_memory(200.0 * MB);
        approx(cache.cached(), 150.0 * MB);
        approx(cache.dirty(), 50.0 * MB);
        approx(cache.free_memory(), 650.0 * MB);
        approx(cache.available_memory(), 800.0 * MB);
        approx(cache.dirty_threshold(), 160.0 * MB);
        approx(cache.background_threshold(), 80.0 * MB);
        approx(cache.cached_amount(&"f".into()), 100.0 * MB);
        assert_eq!(cache.cached_per_file().len(), 2);
    }

    #[test]
    fn eviction_protects_files_being_written() {
        let (_sim, cache) = setup(1000.0);
        cache.insert_clean(&"protected".into(), 100.0 * MB);
        cache.set_write_open(&"protected".into(), true);
        cache.insert_clean(&"victim".into(), 100.0 * MB);
        let evicted = cache.evict(100.0 * MB, None);
        approx(evicted, 100.0 * MB);
        approx(cache.cached_amount(&"protected".into()), 100.0 * MB);
        approx(cache.cached_amount(&"victim".into()), 0.0);
        // Under stronger pressure even protected files are reclaimed
        // (second pass).
        let evicted = cache.evict(100.0 * MB, None);
        approx(evicted, 100.0 * MB);
        approx(cache.cached_amount(&"protected".into()), 0.0);
    }

    #[test]
    fn eviction_is_lru_ordered_and_skips_dirty() {
        let (sim, cache) = setup(1000.0);
        let ctx = sim.context();
        let c = cache.clone();
        sim.spawn(async move {
            c.insert_clean(&"old".into(), 50.0 * MB);
            ctx.sleep(1.0).await;
            c.insert_clean(&"new".into(), 50.0 * MB);
            c.insert_dirty(&"dirty".into(), 50.0 * MB);
            let evicted = c.evict(60.0 * MB, None);
            approx(evicted, 60.0 * MB);
            // The older file went first.
            approx(c.cached_amount(&"old".into()), 0.0);
            approx(c.cached_amount(&"new".into()), 40.0 * MB);
            // Dirty data is never evicted.
            approx(c.cached_amount(&"dirty".into()), 50.0 * MB);
        });
        sim.run();
    }

    #[test]
    fn write_back_cleans_and_writes_to_disk() {
        let (sim, cache) = setup(10_000.0);
        let h = sim.spawn({
            let cache = cache.clone();
            async move {
                cache.insert_dirty(&"f".into(), 420.0 * MB);
                let flushed = cache.write_back(420.0 * MB, true).await;
                (flushed, cache.dirty())
            }
        });
        sim.run();
        let (flushed, dirty) = h.try_take_result().unwrap();
        approx(flushed, 420.0 * MB);
        approx(dirty, 0.0);
        approx(sim.now().as_secs(), 1.0); // 420 MB at 420 MB/s write bandwidth
        approx(cache.counters().throttled_writeback, 420.0 * MB);
        // Data stays cached (clean) after writeback.
        approx(cache.cached(), 420.0 * MB);
    }

    #[test]
    fn background_writeback_starts_at_background_threshold() {
        let (sim, cache) = setup(1000.0);
        cache.spawn_writeback_threads();
        let c = cache.clone();
        let ctx = sim.context();
        sim.spawn(async move {
            // 150 MB dirty > 10 % of 1000 MB: the background thread writes
            // back the 50 MB excess at its next wakeup even though nothing is
            // expired and the 20 % dirty ratio is not reached.
            c.insert_dirty(&"f".into(), 150.0 * MB);
            ctx.sleep(10.0).await;
            assert!(c.dirty() <= c.background_threshold() + 1.0);
            c.stop();
        });
        sim.run();
        assert!(cache.counters().background_writeback >= 49.0 * MB);
    }

    #[test]
    fn expired_dirty_data_is_written_back() {
        let (sim, cache) = setup(10_000.0);
        cache.spawn_writeback_threads();
        let c = cache.clone();
        let ctx = sim.context();
        sim.spawn(async move {
            // 100 MB dirty, under both thresholds: only expiration flushes it.
            c.insert_dirty(&"f".into(), 100.0 * MB);
            ctx.sleep(20.0).await;
            approx(c.dirty(), 100.0 * MB);
            ctx.sleep(20.0).await;
            approx(c.dirty(), 0.0);
            c.stop();
        });
        sim.run();
    }

    #[test]
    fn touch_promotes_to_active_list() {
        let (_sim, cache) = setup(1000.0);
        cache.insert_clean(&"f".into(), 100.0 * MB);
        cache.touch(&"f".into(), 60.0 * MB);
        // Promoted pages are protected from the first eviction pass only by
        // LRU order; total stays the same.
        approx(cache.cached_amount(&"f".into()), 100.0 * MB);
        let s = cache.state.borrow();
        let pages = s.files.get(&"f".into()).unwrap();
        approx(pages.active_clean, 60.0 * MB);
        approx(pages.inactive_clean, 40.0 * MB);
    }

    #[test]
    fn invalidate_and_release() {
        let (_sim, cache) = setup(1000.0);
        cache.insert_clean(&"f".into(), 100.0 * MB);
        cache.use_anonymous_memory(50.0 * MB);
        approx(cache.invalidate_file(&"f".into()), 100.0 * MB);
        approx(cache.cached(), 0.0);
        cache.release_anonymous_memory(500.0 * MB);
        approx(cache.anonymous(), 0.0);
        let snap = cache.cache_content_snapshot("end");
        assert_eq!(snap.per_file.len(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid kernel tuning")]
    fn invalid_tuning_rejected() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(MB, 0.0, f64::INFINITY));
        let disk = Disk::new(&ctx, "d", DeviceSpec::symmetric(MB, 0.0, f64::INFINITY));
        let mut tuning = KernelTuning::with_memory(1000.0 * MB);
        tuning.dirty_background_ratio = 0.9;
        let _ = KernelCache::new(&ctx, tuning, memory, disk);
    }
}
