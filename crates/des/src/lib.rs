//! # `des` — deterministic discrete-event simulation kernel
//!
//! This crate is the execution substrate of the page-cache simulator: a
//! single-threaded, deterministic discrete-event engine with an async/await
//! process model, playing the role SimGrid plays for WRENCH in the paper
//! *"Modeling the Linux page cache for accurate simulation of data-intensive
//! applications"* (CLUSTER 2021).
//!
//! ## Model
//!
//! * **Processes** are ordinary Rust futures spawned on a [`Simulation`].
//!   They represent application instances, background kernel threads (the
//!   periodical flusher), NFS daemons, etc.
//! * **Virtual time** ([`SimTime`]) only advances when every process is
//!   blocked on a timer or a resource; it then jumps to the next event.
//! * **Determinism**: processes are resumed in FIFO order and simultaneous
//!   events fire in scheduling order, so a given program always produces the
//!   same trace.
//! * **Speed**: timers live in a hierarchical timer wheel (O(1) amortized
//!   schedule/cancel/pop; see the [`scheduler`] module) rather than a binary
//!   heap, while preserving the exact `(time, seq)` firing order.
//!
//! ## Example
//!
//! ```
//! use des::Simulation;
//!
//! let sim = Simulation::new();
//! let ctx = sim.context();
//! let handle = sim.spawn(async move {
//!     ctx.sleep(3.0).await;       // 3 seconds of virtual time
//!     ctx.now().as_secs()
//! });
//! sim.run();
//! assert_eq!(handle.try_take_result(), Some(3.0));
//! ```

#![warn(missing_docs)]

mod engine;
pub mod scheduler;
mod select;
pub mod sync;
mod time;

pub use engine::{JoinHandle, SimContext, Simulation, Sleep, TaskId, TimerId, YieldNow};
pub use select::{select2, Either, Select2};
pub use time::SimTime;
