//! The discrete-event execution engine.
//!
//! The engine owns a set of *processes* (plain Rust futures), a virtual clock,
//! and a hierarchical timer wheel. A process runs until it awaits something
//! that takes virtual time (a [`sleep`](crate::SimContext::sleep), a storage
//! transfer, a semaphore, ...). When no process is runnable, the clock jumps
//! to the next scheduled event. Execution is fully deterministic: processes
//! are resumed in FIFO order and simultaneous timers fire in the order they
//! were scheduled.
//!
//! This is the same execution model as SimGrid's actors, which the paper's
//! WRENCH-cache implementation relies on, reduced to what a page-cache /
//! storage simulation needs.
//!
//! ## The scheduler
//!
//! Timers live in a [`TimerWheel`](crate::scheduler::TimerWheel): six levels
//! of 64 slots over 2⁻²⁰ s ticks, an overflow heap for deadlines beyond the
//! wheel's ≈ 18-hour page, and a `(time, seq)`-ordered front heap restoring
//! exact sub-tick order. Scheduling and popping are O(1) amortized (the old
//! `BinaryHeap` paid O(log n) each) while firing order stays *bit-identical*
//! to the heap's `(time, seq)` contract — dense-timer workloads such as the
//! traffic tier's 20k+ concurrent sleepers no longer pay a 17-deep sift per
//! event. See the [`scheduler`](crate::scheduler) module docs for the level
//! layout, the cascade rule and the complexity table.
//!
//! ## Cancellation
//!
//! [`SimContext::cancel_timer`] revokes the timer's action (an O(1) map
//! removal) and tells the wheel, which reclaims dead keys eagerly: once
//! cancelled keys outnumber live ones the wheel compacts in one pass, so
//! timeout/hedge-heavy workloads (every `select2` loser drops a `Sleep`)
//! keep the scheduler's physical size bounded by ~2× the live timer count
//! instead of accumulating garbage until pop.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use std::sync::Mutex;

use crate::scheduler::{TimerKey, TimerWheel};
use crate::time::SimTime;

pub use crate::scheduler::TimerId;

/// Identifier of a spawned process. Encodes a slab slot index in the low 32
/// bits and a reuse generation in the high 32 bits, so a stale wake-up for a
/// completed task can never resume an unrelated process that recycled its
/// slot.
pub type TaskId = u64;

fn task_id(index: u32, generation: u32) -> TaskId {
    (generation as u64) << 32 | index as u64
}

fn task_index(id: TaskId) -> u32 {
    id as u32
}

fn task_generation(id: TaskId) -> u32 {
    (id >> 32) as u32
}

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// What to do when a timer fires.
pub(crate) enum TimerAction {
    /// Wake a future that is waiting on this timer.
    Wake(Waker),
    /// Run an arbitrary callback (used by the flow-level resource models to
    /// re-evaluate bandwidth shares at the next completion point).
    Callback(Box<dyn FnOnce(&SimContext)>),
}

/// One live process in the task slab: its future, its cached waker (created
/// once at spawn, cloned per poll — no per-poll allocation), and whether it
/// already sits in the ready queue (replaces the O(ready) `contains` dedup
/// scan with an O(1) bit check).
struct TaskSlot {
    fut: Option<LocalFuture>,
    waker: Waker,
    queued: bool,
}

struct Engine {
    now: SimTime,
    seq: u64,
    wheel: TimerWheel,
    /// Liveness authority: a timer is armed iff its action is here. The
    /// wheel's stored keys are validated against this map on peek/pop.
    timers: HashMap<TimerId, TimerAction>,
    /// Task slab: `slots[i]` is `Some` while task `i` is alive.
    slots: Vec<Option<TaskSlot>>,
    /// Reuse generation of each slot; bumped when a task completes so stale
    /// [`TaskId`]s (from wakers outliving their task) are recognised.
    generations: Vec<u32>,
    /// Indices of vacated slots available for reuse.
    free_slots: Vec<u32>,
    /// Number of live (spawned, not yet completed) tasks.
    live_tasks: usize,
    /// Slot indices of tasks ready to be polled, FIFO.
    ready: VecDeque<u32>,
    next_timer_id: u64,
    /// Tasks woken through a `Waker`; drained into `ready` by the run loop.
    wake_queue: Arc<Mutex<Vec<TaskId>>>,
}

impl Engine {
    fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            wheel: TimerWheel::new(),
            timers: HashMap::new(),
            slots: Vec::new(),
            generations: Vec::new(),
            free_slots: Vec::new(),
            live_tasks: 0,
            ready: VecDeque::new(),
            next_timer_id: 0,
            wake_queue: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn schedule(&mut self, at: SimTime, action: TimerAction) -> TimerId {
        let id = TimerId::from_raw(self.next_timer_id);
        self.next_timer_id += 1;
        self.seq += 1;
        self.wheel.schedule(TimerKey {
            time: at.max(self.now),
            seq: self.seq,
            id,
        });
        self.timers.insert(id, action);
        id
    }

    /// Vacates a completed task's slot and bumps its generation so any
    /// outstanding wake-up for it becomes a recognised no-op.
    fn remove_task(&mut self, index: u32) {
        self.slots[index as usize] = None;
        self.generations[index as usize] = self.generations[index as usize].wrapping_add(1);
        self.free_slots.push(index);
        self.live_tasks -= 1;
    }
}

struct SimWaker {
    task: TaskId,
    queue: Arc<Mutex<Vec<TaskId>>>,
}

impl std::task::Wake for SimWaker {
    fn wake(self: Arc<Self>) {
        self.queue.lock().unwrap().push(self.task);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.lock().unwrap().push(self.task);
    }
}

/// A handle to the simulation usable from inside simulated processes.
///
/// Cloning is cheap (reference-counted). All interactions with virtual time —
/// reading the clock, sleeping, spawning further processes, scheduling
/// callbacks — go through this handle.
#[derive(Clone)]
pub struct SimContext {
    engine: Rc<RefCell<Engine>>,
}

impl SimContext {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.borrow().now
    }

    /// Returns a future that completes after `secs` seconds of virtual time.
    pub fn sleep(&self, secs: f64) -> Sleep {
        assert!(
            secs >= 0.0 && !secs.is_nan(),
            "sleep duration must be non-negative, got {secs}"
        );
        let deadline = self.now() + secs;
        Sleep {
            ctx: self.clone(),
            deadline,
            timer: None,
        }
    }

    /// Returns a future that completes at the given absolute virtual time
    /// (immediately if `deadline` is in the past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            ctx: self.clone(),
            deadline,
            timer: None,
        }
    }

    /// Yields to other runnable processes once, without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { polled: false }
    }

    /// Spawns a new simulated process and returns a handle to await its result.
    pub fn spawn<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
            finished: false,
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            s.finished = true;
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        };
        let id = {
            let mut eng = self.engine.borrow_mut();
            let index = match eng.free_slots.pop() {
                Some(i) => i,
                None => {
                    eng.slots.push(None);
                    eng.generations.push(0);
                    let i = (eng.slots.len() - 1) as u32;
                    assert!(i != u32::MAX, "task slab exhausted u32 index space");
                    i
                }
            };
            let id = task_id(index, eng.generations[index as usize]);
            // The task's one waker, shared by every poll of its lifetime.
            let waker = Waker::from(Arc::new(SimWaker {
                task: id,
                queue: Arc::clone(&eng.wake_queue),
            }));
            eng.slots[index as usize] = Some(TaskSlot {
                fut: Some(Box::pin(wrapped)),
                waker,
                queued: true,
            });
            eng.ready.push_back(index);
            eng.live_tasks += 1;
            id
        };
        JoinHandle { state, task: id }
    }

    /// Schedules `callback` to run at virtual time `at` (clamped to now if in
    /// the past). Returns a [`TimerId`] that can be cancelled.
    pub fn schedule_callback<F>(&self, at: SimTime, callback: F) -> TimerId
    where
        F: FnOnce(&SimContext) + 'static,
    {
        self.engine
            .borrow_mut()
            .schedule(at, TimerAction::Callback(Box::new(callback)))
    }

    /// Cancels a previously scheduled timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    ///
    /// The timer's action is revoked immediately; its key in the wheel is
    /// reclaimed eagerly once cancelled keys outnumber live ones, so
    /// cancel-heavy workloads (timeouts, hedged requests) cannot grow the
    /// scheduler without bound.
    pub fn cancel_timer(&self, id: TimerId) {
        let mut eng = self.engine.borrow_mut();
        let eng = &mut *eng;
        if eng.timers.remove(&id).is_some() {
            eng.wheel.note_cancel();
            if eng.wheel.should_compact() {
                let timers = &eng.timers;
                eng.wheel.compact(|t| timers.contains_key(&t));
            }
        }
    }

    fn schedule_wake(&self, at: SimTime, waker: Waker) -> TimerId {
        self.engine
            .borrow_mut()
            .schedule(at, TimerAction::Wake(waker))
    }

    fn replace_waker(&self, id: TimerId, waker: Waker) {
        if let Some(action) = self.engine.borrow_mut().timers.get_mut(&id) {
            *action = TimerAction::Wake(waker);
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Handle returned by [`SimContext::spawn`]; awaiting it yields the process'
/// result.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
    task: TaskId,
}

impl<T> JoinHandle<T> {
    /// The identifier of the spawned process.
    pub fn id(&self) -> TaskId {
        self.task
    }

    /// Whether the process has completed.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Takes the result if the process has completed, without awaiting.
    pub fn try_take_result(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if s.finished {
            Poll::Ready(s.result.take().expect("JoinHandle polled after completion"))
        } else {
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`SimContext::sleep`].
pub struct Sleep {
    ctx: SimContext,
    deadline: SimTime,
    timer: Option<TimerId>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.ctx.now() >= self.deadline {
            if let Some(t) = self.timer.take() {
                self.ctx.cancel_timer(t);
            }
            return Poll::Ready(());
        }
        match self.timer {
            Some(t) => self.ctx.replace_waker(t, cx.waker().clone()),
            None => {
                let t = self.ctx.schedule_wake(self.deadline, cx.waker().clone());
                self.timer = Some(t);
            }
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        // A `Sleep` dropped before its deadline (e.g. the losing side of a
        // `select2` timeout race) must not leave its timer armed: a live
        // wake-up timer would still be "work" and drag the virtual clock to
        // the abandoned deadline. Cancelled timers are skipped by the engine
        // without advancing `now`, so cancellation here is free.
        if let Some(t) = self.timer.take() {
            self.ctx.cancel_timer(t);
        }
    }
}

/// Future returned by [`SimContext::yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// A complete simulation: the virtual clock, the processes, and the run loop.
pub struct Simulation {
    engine: Rc<RefCell<Engine>>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            engine: Rc::new(RefCell::new(Engine::new())),
        }
    }

    /// Returns a context handle for spawning processes and reading the clock.
    pub fn context(&self) -> SimContext {
        SimContext {
            engine: Rc::clone(&self.engine),
        }
    }

    /// Spawns a root process. Equivalent to `self.context().spawn(fut)`.
    pub fn spawn<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        self.context().spawn(fut)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.borrow().now
    }

    /// Number of processes that have been spawned and not yet completed.
    pub fn pending_tasks(&self) -> usize {
        self.engine.borrow().live_tasks
    }

    /// Runs until no more work can make progress, returning the final virtual
    /// time. Processes still pending at that point are deadlocked (typically
    /// an infinite background loop such as the periodical flusher, which is
    /// expected and harmless).
    pub fn run(&self) -> SimTime {
        self.run_until(SimTime::from_secs(f64::INFINITY))
    }

    /// Runs until no more work can make progress or the clock would pass
    /// `horizon`. Returns the final virtual time (never beyond `horizon`).
    ///
    /// # Panics
    /// Panics if the simulation livelocks: tens of millions of events fire
    /// without virtual time advancing, which indicates a model bug (e.g. a
    /// process that re-schedules work at the current instant forever). A
    /// correct model always moves the clock forward eventually.
    pub fn run_until(&self, horizon: SimTime) -> SimTime {
        const LIVELOCK_THRESHOLD: u64 = 20_000_000;
        let mut last_time = self.now();
        let mut stagnant_steps: u64 = 0;
        loop {
            self.drain_wake_queue();
            loop {
                let next = self.engine.borrow_mut().ready.pop_front();
                match next {
                    Some(task) => {
                        self.poll_task(task);
                        self.drain_wake_queue();
                    }
                    None => break,
                }
            }
            if !self.advance(horizon) {
                break;
            }
            let now = self.now();
            if now > last_time {
                last_time = now;
                stagnant_steps = 0;
            } else {
                stagnant_steps += 1;
                assert!(
                    stagnant_steps < LIVELOCK_THRESHOLD,
                    "simulation livelock: {LIVELOCK_THRESHOLD} events fired at virtual time {now} without progress"
                );
            }
        }
        self.now()
    }

    fn drain_wake_queue(&self) {
        let mut eng = self.engine.borrow_mut();
        let woken: Vec<TaskId> = std::mem::take(&mut *eng.wake_queue.lock().unwrap());
        for task in woken {
            let index = task_index(task);
            // Stale wake-ups (completed task, possibly recycled slot) are
            // recognised by the generation mismatch; duplicate wake-ups by
            // the queued bit — no scan of the ready queue.
            if eng.generations.get(index as usize) == Some(&task_generation(task)) {
                if let Some(slot) = eng.slots[index as usize].as_mut() {
                    if !slot.queued {
                        slot.queued = true;
                        eng.ready.push_back(index);
                    }
                }
            }
        }
    }

    fn poll_task(&self, index: u32) {
        let (mut fut, waker) = {
            let mut eng = self.engine.borrow_mut();
            let Some(slot) = eng.slots[index as usize].as_mut() else {
                return; // already completed
            };
            slot.queued = false;
            let Some(fut) = slot.fut.take() else {
                return; // re-entrant poll; cannot happen single-threaded
            };
            // The cached waker: cloning is a refcount bump, not an allocation.
            (fut, slot.waker.clone())
        };
        let mut cx = Context::from_waker(&waker);
        let done = fut.as_mut().poll(&mut cx).is_ready();
        let mut eng = self.engine.borrow_mut();
        if done {
            eng.remove_task(index);
        } else if let Some(slot) = eng.slots[index as usize].as_mut() {
            slot.fut = Some(fut);
        }
    }

    /// Advances to the next timer event strictly necessary to make progress.
    /// Returns false when there is nothing left to do (or the horizon is hit).
    fn advance(&self, horizon: SimTime) -> bool {
        let action = {
            let mut eng = self.engine.borrow_mut();
            let eng = &mut *eng;
            // Peek discards cancelled keys on the way, so the head is always
            // a live timer — a timer left in place by a horizon stop keeps
            // its original (time, seq) position.
            let timers = &eng.timers;
            let Some(key) = eng.wheel.peek(|t| timers.contains_key(&t)) else {
                return false;
            };
            if key.time > horizon {
                eng.now = eng.now.max(horizon.min(key.time));
                return false;
            }
            let key = eng
                .wheel
                .pop(|t| timers.contains_key(&t))
                .expect("peeked key is present");
            eng.now = eng.now.max(key.time);
            eng.timers
                .remove(&key.id)
                .expect("live timer has an action")
        };
        match action {
            TimerAction::Wake(waker) => waker.wake(),
            TimerAction::Callback(cb) => cb(&self.context()),
        }
        true
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Break potential Rc cycles between the engine and callbacks/tasks
        // that capture SimContext handles. The contents are moved out and
        // dropped *after* the borrow is released: dropping a task future can
        // run `Drop` impls (e.g. `Sleep` cancelling its timer) that re-enter
        // the engine.
        let (timers, wheel, slots, ready) = {
            let mut eng = self.engine.borrow_mut();
            (
                std::mem::take(&mut eng.timers),
                std::mem::take(&mut eng.wheel),
                std::mem::take(&mut eng.slots),
                std::mem::take(&mut eng.ready),
            )
        };
        drop((timers, wheel, slots, ready));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Simulation::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let h = sim.spawn(async move {
            ctx.sleep(5.0).await;
            ctx.now()
        });
        sim.run();
        assert_eq!(h.try_take_result().unwrap().as_secs(), 5.0);
        assert_eq!(sim.now().as_secs(), 5.0);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let h = sim.spawn(async move {
            ctx.sleep(0.0).await;
            ctx.now().as_secs()
        });
        sim.run();
        assert_eq!(h.try_take_result().unwrap(), 0.0);
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let sim = Simulation::new();
        let ctx = sim.context();
        sim.spawn(async move {
            ctx.sleep(1.0).await;
            ctx.sleep(2.0).await;
            ctx.sleep(3.0).await;
        });
        let end = sim.run();
        assert!((end.as_secs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_processes_interleave_in_virtual_time() {
        let sim = Simulation::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 2.0), ("a", 1.0), ("c", 3.0)] {
            let ctx = sim.context();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                ctx.sleep(delay).await;
                order.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(sim.now().as_secs(), 3.0);
    }

    #[test]
    fn spawn_returns_result_via_join_handle() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let handle = sim.spawn(async move {
            ctx.sleep(1.0).await;
            42
        });
        sim.run();
        assert!(handle.is_finished());
        assert_eq!(handle.try_take_result(), Some(42));
    }

    #[test]
    fn join_handle_can_be_awaited() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let outer = sim.spawn({
            let ctx = ctx.clone();
            async move {
                let inner = ctx.spawn({
                    let ctx = ctx.clone();
                    async move {
                        ctx.sleep(4.0).await;
                        "done"
                    }
                });
                let r = inner.await;
                (r, ctx.now().as_secs())
            }
        });
        sim.run();
        assert_eq!(outer.try_take_result(), Some(("done", 4.0)));
    }

    #[test]
    fn callbacks_fire_in_time_order_then_schedule_order() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (tag, t) in [("x", 2.0), ("y", 1.0), ("z", 2.0)] {
            let log = Rc::clone(&log);
            ctx.schedule_callback(SimTime::from_secs(t), move |c| {
                log.borrow_mut().push((tag, c.now().as_secs()));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![("y", 1.0), ("x", 2.0), ("z", 2.0)]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let fired = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&fired);
        let id = ctx.schedule_callback(SimTime::from_secs(1.0), move |_| f2.set(true));
        ctx.cancel_timer(id);
        sim.run();
        assert!(!fired.get());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = Simulation::new();
        let ctx = sim.context();
        sim.spawn(async move {
            ctx.sleep(100.0).await;
        });
        let t = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(t.as_secs(), 10.0);
        assert_eq!(sim.pending_tasks(), 1);
        // Resuming finishes the process.
        sim.run();
        assert_eq!(sim.now().as_secs(), 100.0);
        assert_eq!(sim.pending_tasks(), 0);
    }

    #[test]
    fn yield_now_lets_other_tasks_run_at_same_time() {
        let sim = Simulation::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let ctx = sim.context();
        {
            let log = Rc::clone(&log);
            let ctx = ctx.clone();
            sim.spawn(async move {
                log.borrow_mut().push(1);
                ctx.yield_now().await;
                log.borrow_mut().push(3);
            });
        }
        {
            let log = Rc::clone(&log);
            sim.spawn(async move {
                log.borrow_mut().push(2);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn infinite_background_loop_leaves_pending_task() {
        let sim = Simulation::new();
        let ctx = sim.context();
        sim.spawn(async move {
            loop {
                ctx.sleep(5.0).await;
            }
        });
        // A bounded foreground process.
        let ctx2 = sim.context();
        sim.spawn(async move { ctx2.sleep(12.0).await });
        let t = sim.run_until(SimTime::from_secs(60.0));
        assert_eq!(t.as_secs(), 60.0);
        assert_eq!(sim.pending_tasks(), 1);
    }

    #[test]
    fn high_fan_out_timer_load_fires_in_order() {
        // An open-loop traffic generator spawns one task per request: tens
        // of thousands of timers live in the wheel at once. Spawn 20k
        // sleepers with scrambled durations and verify they fire in exact
        // virtual-time order with ties broken deterministically.
        const N: u64 = 20_000;
        let sim = Simulation::new();
        let fired = Rc::new(RefCell::new(Vec::with_capacity(N as usize)));
        let peak = Rc::new(Cell::new(0u64));
        let live = Rc::new(Cell::new(0u64));
        for i in 0..N {
            let ctx = sim.context();
            let fired = Rc::clone(&fired);
            let peak = Rc::clone(&peak);
            let live = Rc::clone(&live);
            // Scrambled, collision-heavy durations in [0.1, 500].
            let delay = ((i.wrapping_mul(2654435761)) % 5000 + 1) as f64 / 10.0;
            sim.spawn(async move {
                live.set(live.get() + 1);
                peak.set(peak.get().max(live.get()));
                ctx.sleep(delay).await;
                live.set(live.get() - 1);
                fired.borrow_mut().push((ctx.now().as_secs(), i));
            });
        }
        sim.run();
        let fired = fired.borrow();
        assert_eq!(fired.len(), N as usize);
        assert_eq!(peak.get(), N, "all sleepers were concurrently in flight");
        for pair in fired.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "timers fired out of order");
            if pair[0].0 == pair[1].0 {
                // Equal deadlines fire in spawn order: determinism under
                // heavy timer collisions.
                assert!(pair[0].1 < pair[1].1);
            }
        }
        assert_eq!(sim.now().as_secs(), 500.0);
    }

    #[test]
    fn cancel_storm_keeps_scheduler_size_bounded() {
        // Regression test for the cancelled-timer leak: the old engine left
        // every cancelled TimerKey in the heap until popped, so a timeout-
        // heavy workload (each `select2` loser drops a `Sleep` and cancels
        // its timer) accumulated unbounded garbage and paid O(log garbage)
        // per push. The wheel must reclaim cancelled slots eagerly.
        let sim = Simulation::new();
        let ctx = sim.context();
        let mut peak = 0usize;
        for round in 0..100 {
            let ids: Vec<TimerId> = (0..1000)
                .map(|i| {
                    ctx.schedule_callback(
                        SimTime::from_secs(1e6 + (round * 1000 + i) as f64),
                        |_| panic!("cancelled timer must not fire"),
                    )
                })
                .collect();
            for id in ids {
                ctx.cancel_timer(id);
            }
            peak = peak.max(sim.engine.borrow().wheel.len());
        }
        // 100k timers were scheduled and cancelled; the scheduler never held
        // more than a small multiple of one round's worth.
        assert!(peak <= 4096, "scheduler grew to {peak} physical keys");
        assert_eq!(sim.engine.borrow().wheel.live(), 0);
        sim.run();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn timer_scheduled_after_horizon_stop_fires_in_order() {
        // run_until leaves the far timer in the wheel with the cursor primed
        // past it; a timer scheduled afterwards at an *earlier* time must
        // still fire first (the wheel's front heap absorbs it).
        let sim = Simulation::new();
        let ctx = sim.context();
        let log = Rc::new(RefCell::new(Vec::new()));
        {
            let log = Rc::clone(&log);
            ctx.schedule_callback(SimTime::from_secs(100.0), move |c| {
                log.borrow_mut().push(("far", c.now().as_secs()));
            });
        }
        let t = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(t.as_secs(), 10.0);
        {
            let log = Rc::clone(&log);
            ctx.schedule_callback(SimTime::from_secs(20.0), move |c| {
                log.borrow_mut().push(("near", c.now().as_secs()));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![("near", 20.0), ("far", 100.0)]);
    }

    #[test]
    fn determinism_same_program_same_trace() {
        fn trace() -> Vec<(u32, f64)> {
            let sim = Simulation::new();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..10u32 {
                let ctx = sim.context();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    ctx.sleep(((i * 7) % 5) as f64).await;
                    log.borrow_mut().push((i, ctx.now().as_secs()));
                });
            }
            sim.run();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(trace(), trace());
    }
}
