//! Virtual time representation.
//!
//! Simulated time is a non-negative number of seconds since the start of the
//! simulation, stored as an `f64`. The paper's storage models (SimGrid's
//! macroscopic flow models) operate on continuous time, so a floating-point
//! clock is the natural representation. [`SimTime`] guarantees that the value
//! is never NaN, which makes it totally ordered.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point from seconds since simulation start.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative (got {secs})");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is in
    /// the future (this can happen with floating-point rounding at flow
    /// completion boundaries).
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: construction forbids NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn ordering() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = a + 2.5;
        assert_eq!(b.as_secs(), 3.5);
        assert_eq!(b - a, 2.5);
        assert_eq!(b.duration_since(a), 2.5);
        // saturating in the other direction
        assert_eq!(a.duration_since(b), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000000s");
    }
}
