//! Racing two futures against each other.
//!
//! [`select2`] is the timeout/hedging primitive of the network tier: a client
//! races an I/O operation against a [`sleep`](crate::SimContext::sleep)
//! (per-request timeout) or races a primary request against a delayed replica
//! request (hedged read). The losing future is dropped, which cancels
//! whatever it was doing — a pending [`Sleep`](crate::Sleep) cancels its
//! timer, and an in-flight storage transfer removes its flow from the shared
//! resource — so abandoned work consumes neither virtual time nor bandwidth.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// The result of [`select2`]: which future finished first, with its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future completed first (the second was dropped).
    Left(A),
    /// The second future completed first (the first was dropped).
    Right(B),
}

impl<A, B> Either<A, B> {
    /// Whether this is the [`Either::Left`] variant.
    pub fn is_left(&self) -> bool {
        matches!(self, Either::Left(_))
    }

    /// Whether this is the [`Either::Right`] variant.
    pub fn is_right(&self) -> bool {
        matches!(self, Either::Right(_))
    }
}

/// Runs two futures concurrently and resolves with the output of whichever
/// completes first, dropping the other. If both complete at the same poll,
/// the first future wins (deterministic tie-break).
pub fn select2<FA, FB>(a: FA, b: FB) -> Select2<FA, FB>
where
    FA: Future,
    FB: Future,
{
    Select2 {
        a: Some(Box::pin(a)),
        b: Some(Box::pin(b)),
    }
}

/// Future returned by [`select2`].
pub struct Select2<FA: Future, FB: Future> {
    a: Option<Pin<Box<FA>>>,
    b: Option<Pin<Box<FB>>>,
}

impl<FA: Future, FB: Future> Future for Select2<FA, FB> {
    type Output = Either<FA::Output, FB::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        if let Some(a) = this.a.as_mut() {
            if let Poll::Ready(out) = a.as_mut().poll(cx) {
                this.a = None;
                this.b = None; // drop the loser: cancels its timers/flows
                return Poll::Ready(Either::Left(out));
            }
        }
        if let Some(b) = this.b.as_mut() {
            if let Poll::Ready(out) = b.as_mut().poll(cx) {
                this.a = None;
                this.b = None;
                return Poll::Ready(Either::Right(out));
            }
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    #[test]
    fn faster_future_wins_and_clock_stops_at_winner() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move {
                let r = select2(
                    async {
                        ctx.sleep(5.0).await;
                        "slow"
                    },
                    async {
                        ctx.sleep(2.0).await;
                        "fast"
                    },
                )
                .await;
                (r, ctx.now().as_secs())
            }
        });
        sim.run();
        let (r, t) = h.try_take_result().unwrap();
        assert_eq!(r, Either::Right("fast"));
        assert_eq!(t, 2.0);
        // The loser's 5 s timer was cancelled with it: the simulation does
        // not run on to the abandoned deadline.
        assert_eq!(sim.now().as_secs(), 2.0);
    }

    #[test]
    fn left_wins_ties() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move { select2(ctx.sleep(1.0), ctx.sleep(1.0)).await }
        });
        sim.run();
        assert!(h.try_take_result().unwrap().is_left());
        assert_eq!(sim.now().as_secs(), 1.0);
    }

    #[test]
    fn immediate_future_wins_without_time_passing() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move { select2(async { 7 }, ctx.sleep(10.0)).await }
        });
        sim.run();
        assert_eq!(h.try_take_result().unwrap(), Either::Left(7));
        assert_eq!(sim.now().as_secs(), 0.0);
    }

    #[test]
    fn nested_selects_cancel_transitively() {
        // A timeout around a select of two sleeps: dropping the outer loser
        // must cancel both inner timers.
        let sim = Simulation::new();
        let ctx = sim.context();
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move {
                let inner = select2(ctx.sleep(50.0), ctx.sleep(60.0));
                select2(ctx.sleep(1.0), inner).await.is_left()
            }
        });
        sim.run();
        assert!(h.try_take_result().unwrap());
        assert_eq!(sim.now().as_secs(), 1.0);
    }
}
