//! Timer schedulers: the hierarchical timer wheel used by the engine and a
//! naive binary-heap reference model.
//!
//! The wheel is the engine's hot path — every `sleep`, storage-transfer
//! completion and callback goes through [`TimerWheel::schedule`] /
//! [`TimerWheel::pop`] — so it is exposed here (rather than buried in the
//! engine) for two reasons: the randomized differential test drives it
//! side-by-side with [`NaiveHeapScheduler`] over mixed op streams, and the
//! `des_engine` benchmarks measure both implementations on identical
//! workloads. It is **not** a stable public API; simulated processes never
//! touch it directly.
//!
//! ## Firing-order contract
//!
//! Both schedulers pop timers in exactly `(time, seq)` order: virtual time
//! first, schedule sequence number second. `seq` is unique per engine, so the
//! order is total and the simulation stays deterministic under dense timer
//! collisions. The wheel reproduces this order *bit-exactly* — it is not an
//! approximation of the heap, which is what allows swapping it in without
//! regenerating any golden baseline.
//!
//! ## Wheel shape
//!
//! Virtual time is quantized to ticks of 2⁻²⁰ s (≈ 0.95 µs; the scale factor
//! is a power of two, so the f64 → tick mapping involves no rounding and is
//! strictly monotonic). Six levels of 64 slots each cover 64⁶ = 2³⁶ ticks
//! (≈ 18 virtual hours) ahead of the cursor:
//!
//! | level | slot width          | range covered    |
//! |-------|---------------------|------------------|
//! | 0     | 1 tick (≈ 1 µs)     | 64 ticks         |
//! | 1     | 64 ticks (≈ 61 µs)  | 4096 ticks       |
//! | 2     | ≈ 3.9 ms            | ≈ 250 ms         |
//! | 3     | ≈ 250 ms            | ≈ 16 s           |
//! | 4     | ≈ 16 s              | ≈ 17 min         |
//! | 5     | ≈ 17 min            | ≈ 18 h           |
//!
//! An entry lives at the level of the highest bit in which its tick differs
//! from the cursor (the tokio/dslab "hashed hierarchical wheel" placement),
//! so every slot index at that level is strictly ahead of the cursor — no
//! modular wrap-around is needed and a per-level occupancy bitmap finds the
//! next non-empty slot with one `trailing_zeros`. Entries further than 2³⁶
//! ticks out (or at `t = ∞`) wait in an **overflow heap** and are folded into
//! the wheel when the cursor reaches their 2³⁶-tick page.
//!
//! **Cascade rule:** when the earliest occupied slot is at level `l > 0`, the
//! cursor jumps to that slot's start tick and the slot's entries are
//! re-scheduled relative to the new cursor — each lands at a strictly lower
//! level, so an entry cascades at most `LEVELS` times over its lifetime.
//! Level-0 slots hold exactly one tick, whose entries are drained into a
//! small **front heap** ordered by `(time, seq)`; the front heap restores
//! sub-tick f64 ordering and absorbs entries scheduled at or before the
//! cursor (the cursor may run ahead of the engine's clock after a peek).
//!
//! ## Cancellation
//!
//! Cancellation is O(1): the engine removes the timer's action from its map
//! and calls [`TimerWheel::note_cancel`]; the dead key is discarded when it
//! surfaces at the front, or reclaimed in bulk by [`TimerWheel::compact`]
//! once cancelled keys outnumber live ones ([`TimerWheel::should_compact`]).
//! This bounds the physical size at ~2× the live count under cancel storms —
//! the `BinaryHeap` engine kept dead keys until popped and paid
//! O(log garbage) per push on timeout/hedge-heavy workloads.
//!
//! ## Complexity
//!
//! | operation  | wheel                     | binary heap      |
//! |------------|---------------------------|------------------|
//! | schedule   | O(1)                      | O(log n)         |
//! | pop        | amortized O(1)            | O(log n)         |
//! | cancel     | O(1), amortized reclaim   | O(1), never reclaimed |
//! | space      | ≤ 2× live entries         | live + all dead  |

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Builds a `TimerId` from a raw integer.
    ///
    /// Only scheduler-level tests and benchmarks construct ids directly; the
    /// engine allocates them from its own counter.
    pub fn from_raw(raw: u64) -> TimerId {
        TimerId(raw)
    }

    /// The raw integer behind this id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A scheduled timer's position in the firing order.
///
/// Ordering — and, consistently, equality — is by `(time, seq)`. The engine
/// allocates a fresh `seq` per schedule, so two distinct timers never compare
/// equal; `id` deliberately takes no part in either impl, keeping `Ord`,
/// `PartialOrd`, `PartialEq` and `Eq` mutually consistent (the contract
/// `BinaryHeap` and sort routines assume).
#[derive(Debug, Clone, Copy)]
pub struct TimerKey {
    /// Virtual firing time.
    pub time: SimTime,
    /// Engine-wide schedule sequence number; the deterministic tie-break.
    pub seq: u64,
    /// The timer this key belongs to.
    pub id: TimerId,
}

impl PartialEq for TimerKey {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl Eq for TimerKey {}

impl Ord for TimerKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for TimerKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 6;
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// Ticks per virtual second: 2²⁰, so seconds → ticks is an exact f64
/// exponent shift and the mapping is strictly monotonic.
const TICKS_PER_SEC: f64 = (1u64 << 20) as f64;
/// Compaction is considered once this many cancelled keys have accumulated.
/// Large enough that a compaction pass (which visits all `LEVELS × SLOTS`
/// buckets) amortizes to well under one bucket visit per cancellation.
const COMPACT_MIN_CANCELLED: usize = 1024;

#[inline]
fn tick_of(time: SimTime) -> u64 {
    // Saturating cast: +inf and times beyond u64 range map to u64::MAX and
    // simply stay in the overflow heap until everything else has fired.
    (time.as_secs() * TICKS_PER_SEC) as u64
}

/// The hierarchical timer wheel. See the [module docs](self) for the design.
pub struct TimerWheel {
    /// Tick of the batch currently draining through the front heap. Entries
    /// in wheel slots always have `tick > cursor`; the front heap holds
    /// everything with `tick <= cursor`.
    cursor: u64,
    /// `(time, seq)`-ordered min-heap of the imminent entries.
    front: BinaryHeap<Reverse<TimerKey>>,
    /// `LEVELS × SLOTS` buckets, flattened.
    slots: Vec<Vec<TimerKey>>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Entries beyond the wheel's 2³⁶-tick page, ordered by `(time, seq)`.
    overflow: BinaryHeap<Reverse<TimerKey>>,
    /// Physical entries across front + slots + overflow (live + cancelled).
    len: usize,
    /// Cancelled entries still physically present.
    cancelled: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// Creates an empty wheel with the cursor at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            cursor: 0,
            front: BinaryHeap::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            len: 0,
            cancelled: 0,
        }
    }

    /// Number of physically stored keys, including cancelled ones not yet
    /// reclaimed. The bounded-size guarantee under cancel storms is on this
    /// number.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are stored at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live (not cancelled) keys.
    pub fn live(&self) -> usize {
        self.len - self.cancelled
    }

    /// Inserts a key. O(1).
    pub fn schedule(&mut self, key: TimerKey) {
        let tick = tick_of(key.time);
        self.len += 1;
        if tick <= self.cursor {
            // At or behind the draining batch (the cursor can run ahead of
            // the engine clock after a peek): the front heap keeps the exact
            // (time, seq) order regardless.
            self.front.push(Reverse(key));
            return;
        }
        let diff = tick ^ self.cursor;
        if diff >> WHEEL_BITS != 0 {
            self.overflow.push(Reverse(key));
            return;
        }
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(key);
        self.occupied[level] |= 1 << slot;
    }

    /// The earliest live key, or `None` if none remain. Cancelled keys
    /// reaching the front are discarded on the way (`live` decides: it
    /// receives a stored id and returns whether that timer is still armed).
    pub fn peek(&mut self, mut live: impl FnMut(TimerId) -> bool) -> Option<TimerKey> {
        loop {
            self.prime();
            let &Reverse(head) = self.front.peek()?;
            if live(head.id) {
                return Some(head);
            }
            self.front.pop();
            self.len -= 1;
            self.cancelled -= 1;
        }
    }

    /// Removes and returns the earliest live key. Amortized O(1).
    pub fn pop(&mut self, live: impl FnMut(TimerId) -> bool) -> Option<TimerKey> {
        let key = self.peek(live)?;
        self.front.pop();
        self.len -= 1;
        Some(key)
    }

    /// Records that one stored key was cancelled (its action revoked by the
    /// engine). The key itself is reclaimed lazily; see [`Self::compact`].
    pub fn note_cancel(&mut self) {
        self.cancelled += 1;
        debug_assert!(self.cancelled <= self.len);
    }

    /// Whether cancelled keys have accumulated enough to be worth a
    /// compaction pass (they outnumber live keys).
    pub fn should_compact(&self) -> bool {
        self.cancelled > COMPACT_MIN_CANCELLED && self.cancelled * 2 > self.len
    }

    /// Drops every cancelled key in one O(physical) pass. Amortized against
    /// the cancellations that triggered it, this keeps the physical size
    /// bounded by ~2× the live count.
    pub fn compact(&mut self, mut live: impl FnMut(TimerId) -> bool) {
        let mut total = drain_filter_heap(&mut self.front, &mut live);
        total += drain_filter_heap(&mut self.overflow, &mut live);
        for level in 0..LEVELS {
            for slot in 0..SLOTS {
                let bucket = &mut self.slots[level * SLOTS + slot];
                if bucket.is_empty() {
                    continue;
                }
                bucket.retain(|k| live(k.id));
                total += bucket.len();
                if bucket.is_empty() {
                    self.occupied[level] &= !(1u64 << slot);
                }
            }
        }
        self.len = total;
        self.cancelled = 0;
    }

    /// Ensures the front heap holds the globally earliest batch: advances the
    /// cursor to the next occupied tick, cascading higher-level slots and
    /// folding in the overflow page as needed. Pure reorganization — firing
    /// order is untouched.
    fn prime(&mut self) {
        while self.front.is_empty() {
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: jump to the overflow's page, if any.
                let Some(Reverse(min)) = self.overflow.pop() else {
                    return;
                };
                self.cursor = tick_of(min.time);
                self.front.push(Reverse(min));
                let page = self.cursor >> WHEEL_BITS;
                while let Some(Reverse(k)) = self.overflow.peek() {
                    if tick_of(k.time) >> WHEEL_BITS != page {
                        break;
                    }
                    let Reverse(k) = self.overflow.pop().expect("peeked entry");
                    self.len -= 1; // schedule() re-counts it
                    self.schedule(k);
                }
                return;
            };
            let slot = self.occupied[level].trailing_zeros() as u64;
            let shift = SLOT_BITS * level as u32;
            // The slot's start tick: shared high bits, this slot's digit,
            // zeros below. Strictly ahead of the old cursor, at or before
            // every entry in the slot.
            self.cursor = (((self.cursor >> (shift + SLOT_BITS)) << SLOT_BITS) | slot) << shift;
            self.occupied[level] &= !(1u64 << slot as usize);
            // Swap the bucket out, drain it, swap it back: cascades target
            // strictly lower levels (and level 0 drains to the front heap),
            // never this bucket, and keeping it preserves its allocation —
            // slot buckets are reused millions of times on dense workloads.
            let mut entries = std::mem::take(&mut self.slots[level * SLOTS + slot as usize]);
            if level == 0 {
                // A level-0 slot is exactly one tick: the whole batch is the
                // next to fire, ordered within by the front heap.
                for k in entries.drain(..) {
                    self.front.push(Reverse(k));
                }
            } else {
                // Cascade: re-place relative to the advanced cursor; each
                // entry lands at a strictly lower level (or the front).
                for k in entries.drain(..) {
                    self.len -= 1; // schedule() re-counts it
                    self.schedule(k);
                }
            }
            self.slots[level * SLOTS + slot as usize] = entries;
        }
    }
}

/// Rebuilds `heap` keeping only live keys; returns how many were kept.
fn drain_filter_heap(
    heap: &mut BinaryHeap<Reverse<TimerKey>>,
    live: &mut dyn FnMut(TimerId) -> bool,
) -> usize {
    let kept: Vec<Reverse<TimerKey>> = std::mem::take(heap)
        .into_iter()
        .filter(|Reverse(k)| live(k.id))
        .collect();
    let n = kept.len();
    *heap = BinaryHeap::from(kept);
    n
}

/// The pre-wheel scheduler: a plain `(time, seq)`-ordered binary heap.
///
/// Kept as the differential reference model and benchmark baseline. It
/// faithfully reproduces the old engine's behavior, including the
/// cancelled-key leak: dead keys stay in the heap until they surface at the
/// top ([`NaiveHeapScheduler::note_cancel`] only counts them), so pushes pay
/// O(log garbage) under cancel storms — the cost the wheel's compaction
/// eliminates.
#[derive(Default)]
pub struct NaiveHeapScheduler {
    heap: BinaryHeap<Reverse<TimerKey>>,
    cancelled: usize,
}

impl NaiveHeapScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of physically stored keys, cancelled ones included.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of live keys.
    pub fn live(&self) -> usize {
        self.heap.len() - self.cancelled
    }

    /// Inserts a key. O(log n) — n includes dead keys.
    pub fn schedule(&mut self, key: TimerKey) {
        self.heap.push(Reverse(key));
    }

    /// The earliest live key; discards dead keys surfacing at the top.
    pub fn peek(&mut self, mut live: impl FnMut(TimerId) -> bool) -> Option<TimerKey> {
        loop {
            let &Reverse(head) = self.heap.peek()?;
            if live(head.id) {
                return Some(head);
            }
            self.heap.pop();
            self.cancelled -= 1;
        }
    }

    /// Removes and returns the earliest live key.
    pub fn pop(&mut self, live: impl FnMut(TimerId) -> bool) -> Option<TimerKey> {
        let key = self.peek(live)?;
        self.heap.pop();
        Some(key)
    }

    /// Records a cancellation. The key is **not** reclaimed — this is the
    /// leak the wheel fixes, kept for differential honesty.
    pub fn note_cancel(&mut self) {
        self.cancelled += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time: f64, seq: u64, id: u64) -> TimerKey {
        TimerKey {
            time: SimTime::from_secs(time),
            seq,
            id: TimerId(id),
        }
    }

    /// The satellite bugfix: derived `PartialEq` used to compare
    /// `(time, seq, id)` while `Ord` compared `(time, seq)`, so two keys
    /// could be `cmp == Equal` yet `!=` — violating the consistency contract
    /// `BinaryHeap` assumes. Both now agree on `(time, seq)`.
    #[test]
    fn ord_and_eq_are_consistent() {
        let a = key(1.0, 7, 100);
        let b = key(1.0, 7, 200); // same (time, seq), different id
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a, b, "cmp == Equal must imply eq");
        assert_eq!(a.partial_cmp(&b), Some(std::cmp::Ordering::Equal));

        let c = key(1.0, 8, 100);
        assert_ne!(a, c);
        assert!(a < c, "seq breaks ties");
        let d = key(2.0, 0, 0);
        assert!(c < d, "time dominates");
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        // Scrambled times including exact ties and sub-tick spacings.
        let keys = [
            key(5.0, 1, 0),
            key(1.0, 2, 1),
            key(5.0, 3, 2),        // tie with seq 1 on time
            key(1.0 + 1e-9, 4, 3), // same tick as 1.0, later f64 time
            key(0.25, 5, 4),
            key(1e5, 6, 5), // overflow range (beyond ~18 h page)
            key(0.0, 7, 6),
        ];
        for k in keys {
            w.schedule(k);
        }
        let mut order = Vec::new();
        while let Some(k) = w.pop(|_| true) {
            order.push(k.id.raw());
        }
        assert_eq!(order, vec![6, 4, 1, 3, 0, 2, 5]);
        assert!(w.is_empty());
    }

    #[test]
    fn schedule_behind_cursor_goes_to_front() {
        let mut w = TimerWheel::new();
        w.schedule(key(100.0, 1, 0));
        // Peek primes the wheel: the cursor advances to the 100 s tick.
        assert_eq!(w.peek(|_| true).unwrap().id.raw(), 0);
        // A later schedule at an earlier time must still fire first.
        w.schedule(key(50.0, 2, 1));
        assert_eq!(w.pop(|_| true).unwrap().id.raw(), 1);
        assert_eq!(w.pop(|_| true).unwrap().id.raw(), 0);
    }

    #[test]
    fn infinity_fires_last() {
        let mut w = TimerWheel::new();
        w.schedule(key(f64::INFINITY, 1, 0));
        w.schedule(key(3.0, 2, 1));
        w.schedule(key(f64::INFINITY, 3, 2));
        let order: Vec<u64> = std::iter::from_fn(|| w.pop(|_| true))
            .map(|k| k.id.raw())
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn cancel_storm_is_reclaimed_by_compaction() {
        let mut w = TimerWheel::new();
        let mut dead = vec![false; 200_000];
        let mut seq = 0u64;
        let mut next_id = 0u64;
        let mut peak = 0usize;
        for _round in 0..100 {
            let round_ids: Vec<u64> = (0..1000)
                .map(|i| {
                    let id = next_id;
                    next_id += 1;
                    seq += 1;
                    w.schedule(key(86_000.0 + i as f64, seq, id));
                    id
                })
                .collect();
            for id in round_ids {
                dead[id as usize] = true;
                w.note_cancel();
                if w.should_compact() {
                    w.compact(|t| !dead[t.raw() as usize]);
                }
            }
            peak = peak.max(w.len());
        }
        assert_eq!(w.live(), 0);
        // 100k keys were scheduled and cancelled; the wheel never held more
        // than a small multiple of one round's worth.
        assert!(peak <= 4096, "peak physical size {peak} not bounded");
        assert!(w.pop(|t| !dead[t.raw() as usize]).is_none());
    }

    #[test]
    fn naive_heap_leaks_cancelled_keys_by_design() {
        let mut h = NaiveHeapScheduler::new();
        for i in 0..1000u64 {
            h.schedule(key(10.0 + i as f64, i, i));
            h.note_cancel();
        }
        assert_eq!(h.live(), 0);
        assert_eq!(h.len(), 1000, "the reference model keeps dead keys");
        assert!(h.pop(|_| false).is_none());
        assert_eq!(h.len(), 0, "popping past dead keys drains them");
    }

    #[test]
    fn differential_smoke_against_naive_heap() {
        // A quick in-module mirror of the full randomized differential test
        // in `tests/scheduler_differential.rs`.
        let mut w = TimerWheel::new();
        let mut h = NaiveHeapScheduler::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut clock = 0.0f64;
        let mut dead = vec![false; 4000];
        let mut ids: Vec<u64> = Vec::new();
        for seq in 0..4000u64 {
            let r = rng();
            match r % 10 {
                0..=5 => {
                    let delta = match r % 4 {
                        0 => 0.0,
                        1 => (r % 64) as f64 * 1e-9,
                        2 => (r % 1000) as f64 * 1e-3,
                        _ => (r % 100) as f64 * 250.0,
                    };
                    let k = key(clock + delta, seq, seq);
                    w.schedule(k);
                    h.schedule(k);
                    ids.push(seq);
                }
                6 | 7 => {
                    let a = w.pop(|t| !dead[t.raw() as usize]);
                    let b = h.pop(|t| !dead[t.raw() as usize]);
                    assert_eq!(a, b);
                    if let Some(k) = a {
                        clock = clock.max(k.time.as_secs());
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let pick = ids.swap_remove((r % ids.len() as u64) as usize) as usize;
                        if !dead[pick] {
                            dead[pick] = true;
                            w.note_cancel();
                            if w.should_compact() {
                                w.compact(|t| !dead[t.raw() as usize]);
                            }
                            h.note_cancel();
                        }
                    }
                }
            }
        }
        loop {
            let a = w.pop(|t| !dead[t.raw() as usize]);
            let b = h.pop(|t| !dead[t.raw() as usize]);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
