//! Synchronization primitives for simulated processes.
//!
//! All primitives here block in *virtual* time only: a process waiting on a
//! [`Semaphore`] or [`Notify`] is simply not runnable until another simulated
//! process releases/notifies it. They are single-threaded (the whole engine
//! is), so they use `Rc`/`RefCell` internally and are intentionally `!Send`.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A counting semaphore with FIFO fairness.
///
/// Used by the workflow layer to model bounded resources that are acquired for
/// a whole operation (e.g. CPU cores of a host).
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

struct SemInner {
    permits: usize,
    waiters: VecDeque<SemWaiter>,
}

struct SemWaiter {
    granted: Rc<Cell<bool>>,
    waker: Option<Waker>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Number of permits currently available.
    pub fn available_permits(&self) -> usize {
        self.inner.borrow().permits
    }

    /// Number of processes currently queued waiting for a permit.
    pub fn waiters(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// Acquires one permit, waiting in FIFO order if none is available.
    /// The permit is released when the returned [`SemaphorePermit`] is dropped.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone(),
            ticket: None,
        }
    }

    /// Tries to acquire a permit without waiting.
    pub fn try_acquire(&self) -> Option<SemaphorePermit> {
        let mut inner = self.inner.borrow_mut();
        if inner.permits > 0 && inner.waiters.is_empty() {
            inner.permits -= 1;
            Some(SemaphorePermit { sem: self.clone() })
        } else {
            None
        }
    }

    fn release_one(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.permits += 1;
        while inner.permits > 0 {
            match inner.waiters.pop_front() {
                Some(w) => {
                    inner.permits -= 1;
                    w.granted.set(true);
                    if let Some(waker) = w.waker {
                        waker.wake();
                    }
                }
                None => break,
            }
        }
    }
}

/// A permit acquired from a [`Semaphore`]; released on drop.
pub struct SemaphorePermit {
    sem: Semaphore,
}

impl Drop for SemaphorePermit {
    fn drop(&mut self) {
        self.sem.release_one();
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    ticket: Option<Rc<Cell<bool>>>,
}

impl Future for Acquire {
    type Output = SemaphorePermit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemaphorePermit> {
        let sem = self.sem.clone();
        let mut inner = sem.inner.borrow_mut();
        match &self.ticket {
            None => {
                if inner.permits > 0 && inner.waiters.is_empty() {
                    inner.permits -= 1;
                    drop(inner);
                    Poll::Ready(SemaphorePermit { sem })
                } else {
                    let granted = Rc::new(Cell::new(false));
                    inner.waiters.push_back(SemWaiter {
                        granted: Rc::clone(&granted),
                        waker: Some(cx.waker().clone()),
                    });
                    drop(inner);
                    self.ticket = Some(granted);
                    Poll::Pending
                }
            }
            Some(ticket) => {
                if ticket.get() {
                    drop(inner);
                    self.ticket = None;
                    Poll::Ready(SemaphorePermit { sem })
                } else {
                    for w in inner.waiters.iter_mut() {
                        if Rc::ptr_eq(&w.granted, ticket) {
                            w.waker = Some(cx.waker().clone());
                            break;
                        }
                    }
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket.take() {
            if ticket.get() {
                // The permit was granted but never observed; return it.
                self.sem.release_one();
            } else {
                // Still queued; remove ourselves.
                let mut inner = self.sem.inner.borrow_mut();
                inner.waiters.retain(|w| !Rc::ptr_eq(&w.granted, &ticket));
            }
        }
    }
}

/// A notification primitive: processes wait until another process calls
/// [`Notify::notify_all`]. Every call wakes all current waiters (level
/// semantics are the caller's responsibility — re-check your condition).
#[derive(Clone, Default)]
pub struct Notify {
    waiters: Rc<RefCell<Vec<Waker>>>,
    generation: Rc<Cell<u64>>,
}

impl Notify {
    /// Creates a new notifier with no pending notifications.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes every process currently waiting in [`Notify::notified`].
    pub fn notify_all(&self) {
        self.generation.set(self.generation.get() + 1);
        for w in self.waiters.borrow_mut().drain(..) {
            w.wake();
        }
    }

    /// Waits for the next notification.
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            armed_at: self.generation.get(),
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    armed_at: u64,
}

impl Future for Notified {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.notify.generation.get() != self.armed_at {
            Poll::Ready(())
        } else {
            self.notify.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// An unbounded FIFO queue with asynchronous `pop`, for actor-style processes
/// (e.g. an NFS server loop consuming requests).
pub struct Queue<T> {
    inner: Rc<RefCell<QueueInner<T>>>,
}

impl<T> Clone for Queue<T> {
    fn clone(&self) -> Self {
        Queue {
            inner: Rc::clone(&self.inner),
        }
    }
}

struct QueueInner<T> {
    items: VecDeque<T>,
    waiters: VecDeque<PopWaiter>,
}

/// One parked consumer. `notified` is the waiter's identity (for removal on
/// drop) *and* its hand-off flag: a `push` sets it before waking, so a
/// [`Pop`] dropped after being chosen can tell it still owes the wake-up to
/// the next waiter.
struct PopWaiter {
    notified: Rc<Cell<bool>>,
    waker: Waker,
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Queue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Queue {
            inner: Rc::new(RefCell::new(QueueInner {
                items: VecDeque::new(),
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Appends an item and wakes one waiting consumer, if any. The chosen
    /// waiter is marked as notified: if its `Pop` future is dropped before
    /// consuming the item (a lost `select2` race), the drop forwards the
    /// notification to the next waiter instead of swallowing it.
    pub fn push(&self, item: T) {
        let mut inner = self.inner.borrow_mut();
        inner.items.push_back(item);
        if let Some(w) = inner.waiters.pop_front() {
            w.notified.set(true);
            w.waker.wake();
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.borrow().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns the front item, waiting if the queue is empty.
    pub fn pop(&self) -> Pop<T> {
        Pop {
            queue: self.clone(),
            ticket: None,
        }
    }

    /// Number of consumers currently parked in [`Queue::pop`].
    pub fn waiters(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// Removes and returns the front item without waiting.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.borrow_mut().items.pop_front()
    }
}

/// Future returned by [`Queue::pop`].
///
/// Dropping a pending `Pop` is safe: it unregisters itself, and if it had
/// already been chosen by a [`Queue::push`] it forwards that notification to
/// the next waiter — the losing side of a `select2` timeout race can never
/// strand an item in the queue while live waiters sleep.
pub struct Pop<T> {
    queue: Queue<T>,
    /// `Some` while registered in `waiters`; the cell is set by `push` when
    /// this waiter is chosen.
    ticket: Option<Rc<Cell<bool>>>,
}

impl<T> Future for Pop<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let queue = self.queue.clone();
        let mut inner = queue.inner.borrow_mut();
        if let Some(item) = inner.items.pop_front() {
            if let Some(ticket) = self.ticket.take() {
                if !ticket.get() {
                    // Took an item without having been chosen: leave the
                    // waiter queue so a future push doesn't pick a ghost.
                    inner.waiters.retain(|w| !Rc::ptr_eq(&w.notified, &ticket));
                }
            }
            return Poll::Ready(item);
        }
        match &self.ticket {
            Some(ticket) if ticket.get() => {
                // Chosen by a push, but the item was consumed by someone else
                // (try_pop or a fresh pop) before this poll ran: re-park at
                // the front — this waiter is still the oldest.
                ticket.set(false);
                let notified = Rc::clone(ticket);
                inner.waiters.push_front(PopWaiter {
                    notified,
                    waker: cx.waker().clone(),
                });
            }
            Some(ticket) => {
                // Still parked: refresh the waker in place (no duplicate
                // registrations across polls, e.g. from select2 re-polls).
                for w in inner.waiters.iter_mut() {
                    if Rc::ptr_eq(&w.notified, ticket) {
                        w.waker = cx.waker().clone();
                        break;
                    }
                }
            }
            None => {
                let ticket = Rc::new(Cell::new(false));
                inner.waiters.push_back(PopWaiter {
                    notified: Rc::clone(&ticket),
                    waker: cx.waker().clone(),
                });
                drop(inner);
                self.ticket = Some(ticket);
            }
        }
        Poll::Pending
    }
}

impl<T> Drop for Pop<T> {
    fn drop(&mut self) {
        let Some(ticket) = self.ticket.take() else {
            return;
        };
        let mut inner = self.queue.inner.borrow_mut();
        if ticket.get() {
            // A push chose this waiter but the item was never collected.
            // Forward the notification so the item isn't stranded while
            // other waiters sleep forever in virtual time.
            if !inner.items.is_empty() {
                if let Some(w) = inner.waiters.pop_front() {
                    w.notified.set(true);
                    w.waker.wake();
                }
            }
        } else {
            inner.waiters.retain(|w| !Rc::ptr_eq(&w.notified, &ticket));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Simulation::new();
        let sem = Semaphore::new(2);
        let peak = Rc::new(Cell::new(0usize));
        let current = Rc::new(Cell::new(0usize));
        for _ in 0..6 {
            let ctx = sim.context();
            let sem = sem.clone();
            let peak = Rc::clone(&peak);
            let current = Rc::clone(&current);
            sim.spawn(async move {
                let _permit = sem.acquire().await;
                current.set(current.get() + 1);
                peak.set(peak.get().max(current.get()));
                ctx.sleep(1.0).await;
                current.set(current.get() - 1);
            });
        }
        sim.run();
        assert_eq!(peak.get(), 2);
        // 6 jobs, 2 at a time, 1s each => 3s.
        assert_eq!(sim.now().as_secs(), 3.0);
    }

    #[test]
    fn semaphore_try_acquire() {
        let sem = Semaphore::new(1);
        let p = sem.try_acquire();
        assert!(p.is_some());
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn semaphore_fifo_order() {
        let sim = Simulation::new();
        let sem = Semaphore::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        // Occupy the semaphore for 1s, then five waiters should be served in
        // the order they arrived.
        {
            let ctx = sim.context();
            let sem = sem.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                ctx.sleep(1.0).await;
            });
        }
        for i in 0..5 {
            let ctx = sim.context();
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                // Stagger arrival to fix the expected order.
                ctx.sleep(0.1 * (i + 1) as f64).await;
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                ctx.sleep(0.5).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dropping_acquire_future_releases_queue_slot() {
        let sem = Semaphore::new(0);
        let fut = sem.acquire();
        drop(fut);
        assert_eq!(sem.waiters(), 0);
    }

    #[test]
    fn notify_wakes_all_waiters() {
        let sim = Simulation::new();
        let notify = Notify::new();
        let done = Rc::new(Cell::new(0));
        for _ in 0..3 {
            let notify = notify.clone();
            let done = Rc::clone(&done);
            sim.spawn(async move {
                notify.notified().await;
                done.set(done.get() + 1);
            });
        }
        {
            let ctx = sim.context();
            let notify = notify.clone();
            sim.spawn(async move {
                ctx.sleep(2.0).await;
                notify.notify_all();
            });
        }
        sim.run();
        assert_eq!(done.get(), 3);
        assert_eq!(sim.now().as_secs(), 2.0);
    }

    #[test]
    fn queue_delivers_in_order_and_blocks_when_empty() {
        let sim = Simulation::new();
        let queue: Queue<u32> = Queue::new();
        let received = Rc::new(RefCell::new(Vec::new()));
        {
            let queue = queue.clone();
            let received = Rc::clone(&received);
            sim.spawn(async move {
                for _ in 0..3 {
                    let v = queue.pop().await;
                    received.borrow_mut().push(v);
                }
            });
        }
        {
            let ctx = sim.context();
            let queue = queue.clone();
            sim.spawn(async move {
                for v in [10, 20, 30] {
                    ctx.sleep(1.0).await;
                    queue.push(v);
                }
            });
        }
        sim.run();
        assert_eq!(*received.borrow(), vec![10, 20, 30]);
        assert!(queue.is_empty());
    }

    #[test]
    fn queue_try_pop() {
        let queue: Queue<u32> = Queue::new();
        assert_eq!(queue.try_pop(), None);
        queue.push(7);
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.try_pop(), Some(7));
    }

    /// Regression test for the `Queue::pop` lost wakeup: a `Pop` dropped by
    /// the losing side of a `select2` timeout race used to leave its stale
    /// waker queued, so a later `push` woke the dead consumer and the live
    /// one slept forever with the item stranded.
    #[test]
    fn dropped_pop_from_select2_race_does_not_swallow_the_item() {
        let sim = Simulation::new();
        let queue: Queue<u32> = Queue::new();
        let timed_out = Rc::new(Cell::new(false));
        let received = Rc::new(Cell::new(0u32));
        // Consumer A: races pop against a 1s timeout; the queue stays empty
        // until t=2, so A loses and its Pop is dropped while registered.
        {
            let ctx = sim.context();
            let queue = queue.clone();
            let timed_out = Rc::clone(&timed_out);
            sim.spawn(async move {
                match crate::select2(queue.pop(), ctx.sleep(1.0)).await {
                    crate::Either::Left(_) => panic!("pop should time out"),
                    crate::Either::Right(()) => timed_out.set(true),
                }
            });
        }
        // Consumer B: parks right behind A and must receive the item.
        {
            let queue = queue.clone();
            let received = Rc::clone(&received);
            sim.spawn(async move {
                received.set(queue.pop().await);
            });
        }
        {
            let ctx = sim.context();
            let queue = queue.clone();
            sim.spawn(async move {
                ctx.sleep(2.0).await;
                queue.push(42);
            });
        }
        sim.run();
        assert!(timed_out.get());
        assert_eq!(received.get(), 42);
        assert!(queue.is_empty());
        assert_eq!(queue.waiters(), 0);
        assert_eq!(sim.pending_tasks(), 0);
    }

    /// A `Pop` that was already chosen by a `push` but is dropped before it
    /// can collect the item must forward the notification to the next waiter
    /// instead of swallowing it.
    #[test]
    fn dropped_notified_pop_forwards_the_wakeup() {
        use std::task::Waker;

        let queue: Queue<u32> = Queue::new();
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);

        let mut a = Box::pin(queue.pop());
        let mut b = Box::pin(queue.pop());
        assert!(a.as_mut().poll(&mut cx).is_pending());
        assert!(b.as_mut().poll(&mut cx).is_pending());
        assert_eq!(queue.waiters(), 2);

        // The push chooses A (the oldest waiter) and marks it notified.
        queue.push(9);
        assert_eq!(queue.waiters(), 1);

        // A dies before polling again — e.g. its task was cancelled. The
        // notification must be handed to B, not dropped on the floor.
        drop(a);
        assert_eq!(queue.waiters(), 0);
        assert_eq!(b.as_mut().poll(&mut cx), Poll::Ready(9));
        assert!(queue.is_empty());
    }
}
