//! Randomized differential test: the hierarchical [`TimerWheel`] against the
//! naive [`NaiveHeapScheduler`] reference model over 100k mixed
//! schedule/cancel/pop/peek/horizon operations.
//!
//! The wheel's contract is that it reproduces the heap's `(time, seq)` firing
//! order *bit-exactly* — same keys, same order, same resulting clock trace —
//! which is what lets the engine swap it in without regenerating any golden
//! baseline. This test drives both models in lock-step through an adversarial
//! op mix (zero deltas, sub-tick spacings, same-tick collisions, overflow-page
//! deadlines, cancel storms with compaction, horizon advances that leave the
//! cursor ahead of the clock) and asserts they never diverge.

use des::scheduler::{NaiveHeapScheduler, TimerId, TimerKey, TimerWheel};
use des::SimTime;

/// Deterministic xorshift64* — no external RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum IdState {
    Live,
    Cancelled,
    Fired,
}

struct Harness {
    wheel: TimerWheel,
    heap: NaiveHeapScheduler,
    /// Per-id lifecycle, indexed by raw id; the liveness authority both
    /// schedulers consult (mirrors the engine's `timers` map).
    states: Vec<IdState>,
    /// Ids currently Live, for picking cancel victims.
    live_ids: Vec<u64>,
    clock: f64,
    next_seq: u64,
    /// Trace of (clock, fired id) after every successful pop, compared at
    /// the end against a fixed fingerprint for run-to-run determinism.
    trace_hash: u64,
    fired: usize,
}

impl Harness {
    fn new() -> Self {
        Harness {
            wheel: TimerWheel::new(),
            heap: NaiveHeapScheduler::new(),
            states: Vec::new(),
            live_ids: Vec::new(),
            clock: 0.0,
            next_seq: 0,
            trace_hash: 0xcbf29ce484222325,
            fired: 0,
        }
    }

    fn schedule(&mut self, delta: f64) {
        let id = self.states.len() as u64;
        self.states.push(IdState::Live);
        self.live_ids.push(id);
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = TimerKey {
            time: SimTime::from_secs(self.clock + delta),
            seq,
            id: TimerId::from_raw(id),
        };
        self.wheel.schedule(key);
        self.heap.schedule(key);
    }

    fn cancel(&mut self, pick: usize) {
        if self.live_ids.is_empty() {
            return;
        }
        let id = self.live_ids.swap_remove(pick % self.live_ids.len());
        self.states[id as usize] = IdState::Cancelled;
        self.wheel.note_cancel();
        self.heap.note_cancel();
        if self.wheel.should_compact() {
            let states = &self.states;
            self.wheel
                .compact(|t| states[t.raw() as usize] == IdState::Live);
        }
    }

    fn peek_both(&mut self) -> Option<TimerKey> {
        let states = &self.states;
        let a = self
            .wheel
            .peek(|t| states[t.raw() as usize] == IdState::Live);
        let b = self
            .heap
            .peek(|t| states[t.raw() as usize] == IdState::Live);
        assert_eq!(a, b, "peek diverged at clock {}", self.clock);
        a
    }

    fn pop_both(&mut self) {
        let states = &self.states;
        let a = self
            .wheel
            .pop(|t| states[t.raw() as usize] == IdState::Live);
        let b = self.heap.pop(|t| states[t.raw() as usize] == IdState::Live);
        assert_eq!(a, b, "pop diverged at clock {}", self.clock);
        let Some(key) = a else { return };
        assert!(
            key.time.as_secs() >= self.clock || key.time.as_secs().is_nan(),
            "fired into the past: {} < {}",
            key.time.as_secs(),
            self.clock
        );
        self.clock = self.clock.max(key.time.as_secs());
        let id = key.id.raw();
        assert_eq!(self.states[id as usize], IdState::Live);
        self.states[id as usize] = IdState::Fired;
        self.live_ids.retain(|&x| x != id);
        self.fired += 1;
        // FNV-style fold of (clock bits, id) — the clock trace fingerprint.
        for word in [self.clock.to_bits(), id] {
            self.trace_hash = (self.trace_hash ^ word).wrapping_mul(0x100000001b3);
        }
    }

    /// Mirrors `Simulation::run_until`: fires everything at or before the
    /// horizon, then advances the clock to the horizon — which leaves the
    /// wheel's cursor primed *ahead* of the clock, the regime where
    /// behind-cursor schedules must fall through to the front heap.
    fn advance_to_horizon(&mut self, horizon: f64) {
        loop {
            match self.peek_both() {
                Some(key) if key.time.as_secs() <= horizon => self.pop_both(),
                _ => break,
            }
        }
        self.clock = self.clock.max(horizon);
    }

    fn check_counts(&self) {
        assert_eq!(self.wheel.live(), self.heap.live(), "live count diverged");
        let live = self.states.iter().filter(|&&s| s == IdState::Live).count();
        assert_eq!(self.wheel.live(), live, "wheel live count wrong");
    }
}

#[test]
fn wheel_matches_naive_heap_over_100k_mixed_ops() {
    let mut rng = Rng(0x5eed_1234_abcd_ef99);
    let mut h = Harness::new();

    for op in 0..100_000u64 {
        let r = rng.next();
        match r % 16 {
            // Weighted towards schedule so the structures stay populated.
            0..=6 => {
                // Delta classes: exact zero, sub-tick, microsecond-scale,
                // millisecond-scale, dense seconds, overflow page (~28 h),
                // and far-future (~31 years).
                let d = rng.next();
                let delta = match d % 16 {
                    0 => 0.0,
                    1 | 2 => (d % 1000) as f64 * 1e-9,
                    3..=5 => (d % 1000) as f64 * 1e-6,
                    6..=8 => (d % 1000) as f64 * 1e-3,
                    9..=12 => (d % 100) as f64,
                    13 | 14 => 1e5 + (d % 1000) as f64,
                    _ => 1e9,
                };
                h.schedule(delta);
            }
            7..=9 => h.pop_both(),
            10 | 11 => {
                h.peek_both();
            }
            12 | 13 => h.cancel(rng.next() as usize),
            14 => {
                let horizon = h.clock + (r % 1000) as f64 * 1e-2;
                h.advance_to_horizon(horizon);
            }
            _ => h.check_counts(),
        }
        if op % 10_000 == 0 {
            h.check_counts();
        }
    }

    // Drain both to empty: every remaining live timer fires in identical
    // order, and both models end empty.
    loop {
        let before = h.fired;
        h.pop_both();
        if h.fired == before {
            break;
        }
    }
    assert_eq!(h.wheel.live(), 0);
    assert_eq!(h.heap.live(), 0);
    h.check_counts();
    assert!(h.fired > 10_000, "mix should fire plenty: {}", h.fired);

    // The whole run is deterministic; pin the clock-trace fingerprint so any
    // future reordering (even one that "looks equivalent") is caught.
    let golden = h.trace_hash;
    let mut rng2 = Rng(0x5eed_1234_abcd_ef99);
    let mut h2 = Harness::new();
    for _ in 0..100_000u64 {
        let r = rng2.next();
        match r % 16 {
            0..=6 => {
                let d = rng2.next();
                let delta = match d % 16 {
                    0 => 0.0,
                    1 | 2 => (d % 1000) as f64 * 1e-9,
                    3..=5 => (d % 1000) as f64 * 1e-6,
                    6..=8 => (d % 1000) as f64 * 1e-3,
                    9..=12 => (d % 100) as f64,
                    13 | 14 => 1e5 + (d % 1000) as f64,
                    _ => 1e9,
                };
                h2.schedule(delta);
            }
            7..=9 => h2.pop_both(),
            10 | 11 => {
                h2.peek_both();
            }
            12 | 13 => h2.cancel(rng2.next() as usize),
            14 => {
                let horizon = h2.clock + (r % 1000) as f64 * 1e-2;
                h2.advance_to_horizon(horizon);
            }
            _ => h2.check_counts(),
        }
    }
    loop {
        let before = h2.fired;
        h2.pop_both();
        if h2.fired == before {
            break;
        }
    }
    assert_eq!(h2.trace_hash, golden, "clock trace not reproducible");
}

/// Same differential harness, but with an op mix dominated by cancellations —
/// the timeout/hedge-heavy net-tier shape. Beyond order equality, this pins
/// the wheel's bounded-size guarantee while the reference heap (by design)
/// bloats with dead keys.
#[test]
fn wheel_stays_bounded_under_differential_cancel_storm() {
    let mut rng = Rng(0xdead_beef_0bad_cafe);
    let mut h = Harness::new();
    let mut wheel_peak = 0usize;
    let mut heap_peak = 0usize;

    // Phase 1 — the leak shape: schedule far-future timers (the timeout arm
    // of a hedge/select2) and cancel them before they ever fire, with no
    // intervening pops to let the heap shed dead keys off its top.
    for i in 0..20_000u64 {
        h.schedule(1e4 + (rng.next() % 10_000) as f64 * 1e-3 + i as f64 * 1e-9);
        h.cancel(rng.next() as usize);
        wheel_peak = wheel_peak.max(h.wheel.len());
        heap_peak = heap_peak.max(h.heap.len());
    }
    h.check_counts();
    // The naive heap kept every dead key; the wheel compacted them away.
    assert!(
        heap_peak >= 20_000,
        "reference heap should retain all dead keys, peak {heap_peak}"
    );
    assert!(
        wheel_peak <= 2_048,
        "wheel peak {wheel_peak} not bounded under cancel storm"
    );

    // Phase 2 — both models, dead ballast and all, still agree on the firing
    // order of fresh near-term timers.
    for _ in 0..5_000u64 {
        let r = rng.next();
        match r % 4 {
            0 | 1 => h.schedule((r % 1000) as f64 * 1e-3),
            2 => h.pop_both(),
            _ => h.cancel(rng.next() as usize),
        }
    }
    loop {
        let before = h.fired;
        h.pop_both();
        if h.fired == before {
            break;
        }
    }
    h.check_counts();
    assert_eq!(h.wheel.live(), 0);
}
