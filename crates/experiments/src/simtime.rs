//! Figure 8: simulation (wall-clock) time as a function of the number of
//! concurrent application instances, for WRENCH and WRENCH-cache, with local
//! and NFS storage, including the linear fits shown in the figure.

use workflow::{
    run_scenario, ApplicationSpec, PlatformSpec, Scenario, ScenarioError, SimulatorKind,
};

/// Ordinary least-squares fit of `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fit.
    pub slope: f64,
    /// Intercept of the fit.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Fits a line through the given points.
///
/// # Panics
/// Panics if fewer than two points are given or the x values are all equal.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points for a fit");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "x values must not all be equal");
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot <= 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Wall-clock simulation times for one instance count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTimePoint {
    /// Number of concurrent application instances simulated.
    pub instances: usize,
    /// Cacheless simulator, local storage.
    pub cacheless_local: f64,
    /// Cacheless simulator, NFS storage.
    pub cacheless_nfs: f64,
    /// WRENCH-cache, local storage.
    pub cache_local: f64,
    /// WRENCH-cache, NFS storage.
    pub cache_nfs: f64,
}

/// Result of the Fig. 8 measurement: raw points plus the four linear fits.
#[derive(Debug, Clone)]
pub struct SimTimeResult {
    /// One point per instance count.
    pub points: Vec<SimTimePoint>,
    /// Fit of the cacheless/local series.
    pub fit_cacheless_local: LinearFit,
    /// Fit of the cacheless/NFS series.
    pub fit_cacheless_nfs: LinearFit,
    /// Fit of the WRENCH-cache/local series.
    pub fit_cache_local: LinearFit,
    /// Fit of the WRENCH-cache/NFS series.
    pub fit_cache_nfs: LinearFit,
}

/// Measures simulation wall-clock time for the four configurations of Fig. 8.
pub fn run_simulation_time_measurement(
    platform: &PlatformSpec,
    file_size: f64,
    instance_counts: &[usize],
) -> Result<SimTimeResult, ScenarioError> {
    let app = ApplicationSpec::synthetic_pipeline(file_size);
    let mut points = Vec::new();
    for &instances in instance_counts {
        let measure = |kind: SimulatorKind, nfs: bool| -> Result<f64, ScenarioError> {
            let platform = if nfs {
                platform.clone().with_nfs()
            } else {
                platform.clone()
            };
            let report = run_scenario(
                &Scenario::new(platform, app.clone(), kind)
                    .with_instances(instances)?
                    .with_sample_interval(None),
            )?;
            Ok(report.wall_clock_seconds)
        };
        points.push(SimTimePoint {
            instances,
            cacheless_local: measure(SimulatorKind::Cacheless, false)?,
            cacheless_nfs: measure(SimulatorKind::Cacheless, true)?,
            cache_local: measure(SimulatorKind::PageCache, false)?,
            cache_nfs: measure(SimulatorKind::PageCache, true)?,
        });
    }
    let series = |pick: fn(&SimTimePoint) -> f64| -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|p| (p.instances as f64, pick(p)))
            .collect()
    };
    Ok(SimTimeResult {
        fit_cacheless_local: linear_fit(&series(|p| p.cacheless_local)),
        fit_cacheless_nfs: linear_fit(&series(|p| p.cacheless_nfs)),
        fit_cache_local: linear_fit(&series(|p| p.cache_local)),
        fit_cache_nfs: linear_fit(&series(|p| p.cache_nfs)),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::scaled_platform;
    use storage_model::units::{GB, MB};

    #[test]
    fn linear_fit_recovers_exact_line() {
        let points: Vec<(f64, f64)> = (1..=10).map(|x| (x as f64, 3.0 * x as f64 + 2.0)).collect();
        let fit = linear_fit(&points);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_handles_noisy_data() {
        let points = vec![(1.0, 1.1), (2.0, 1.9), (3.0, 3.2), (4.0, 3.9)];
        let fit = linear_fit(&points);
        assert!(fit.slope > 0.8 && fit.slope < 1.2);
        assert!(fit.r_squared > 0.95);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linear_fit_rejects_single_point() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    fn simulation_time_measurement_runs_and_fits() {
        let platform = scaled_platform(8.0 * GB);
        let result = run_simulation_time_measurement(&platform, 200.0 * MB, &[1, 2, 4]).unwrap();
        assert_eq!(result.points.len(), 3);
        for p in &result.points {
            assert!(p.cacheless_local >= 0.0);
            assert!(p.cache_local >= 0.0);
        }
        // Wall-clock time is noisy in a test environment; just check that the
        // fits exist and are finite.
        for fit in [
            result.fit_cacheless_local,
            result.fit_cacheless_nfs,
            result.fit_cache_local,
            result.fit_cache_nfs,
        ] {
            assert!(fit.slope.is_finite());
            assert!(fit.intercept.is_finite());
        }
    }
}
