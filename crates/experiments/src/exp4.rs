//! Experiment 4 (paper §IV-D, Fig. 6): the Nighres cortical-reconstruction
//! workflow on a single node with local I/O.
//!
//! The figure reports, for each of the four workflow steps, the absolute
//! relative error of the read and write times of WRENCH and WRENCH-cache with
//! respect to the real execution.

use workflow::{
    absolute_relative_error_pct, run_scenario, ApplicationSpec, PlatformSpec, Scenario,
    ScenarioError, SimulatorKind,
};

/// Per-phase (read or write of one step) timings and errors.
#[derive(Debug, Clone, PartialEq)]
pub struct NighresPhase {
    /// Phase label, e.g. "Read 2" / "Write 2".
    pub label: String,
    /// Workflow step name, e.g. "Tissue classification".
    pub step: String,
    /// Ground-truth time, seconds.
    pub real: f64,
    /// Cacheless (vanilla WRENCH) time, seconds.
    pub cacheless: f64,
    /// WRENCH-cache time, seconds.
    pub wrench_cache: f64,
}

impl NighresPhase {
    /// Error of the cacheless simulator, percent.
    pub fn error_cacheless(&self) -> f64 {
        absolute_relative_error_pct(self.cacheless, self.real)
    }

    /// Error of WRENCH-cache, percent.
    pub fn error_wrench_cache(&self) -> f64 {
        absolute_relative_error_pct(self.wrench_cache, self.real)
    }
}

/// Result of Exp 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Exp4Result {
    /// The eight phases (read + write of each of the four steps).
    pub phases: Vec<NighresPhase>,
}

impl Exp4Result {
    /// Mean error of the cacheless simulator across phases with a non-zero
    /// ground-truth time, percent (the paper reports 337 %).
    pub fn mean_error_cacheless(&self) -> f64 {
        mean(
            self.phases
                .iter()
                .filter(|p| p.real > 1e-9)
                .map(NighresPhase::error_cacheless),
        )
    }

    /// Mean error of WRENCH-cache, percent (the paper reports 47 %).
    pub fn mean_error_wrench_cache(&self) -> f64 {
        mean(
            self.phases
                .iter()
                .filter(|p| p.real > 1e-9)
                .map(NighresPhase::error_wrench_cache),
        )
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = iter.collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Runs Exp 4 on the given platform.
pub fn run_exp4(platform: &PlatformSpec) -> Result<Exp4Result, ScenarioError> {
    let app = ApplicationSpec::nighres();
    let run =
        |kind: SimulatorKind| run_scenario(&Scenario::new(platform.clone(), app.clone(), kind));
    let real = run(SimulatorKind::KernelEmu)?;
    let cacheless = run(SimulatorKind::Cacheless)?;
    let wrench_cache = run(SimulatorKind::PageCache)?;

    let mut phases = Vec::new();
    for (idx, task) in real.instance_reports[0].tasks.iter().enumerate() {
        let cl = &cacheless.instance_reports[0].tasks[idx];
        let wc = &wrench_cache.instance_reports[0].tasks[idx];
        phases.push(NighresPhase {
            label: format!("Read {}", idx + 1),
            step: task.task_name.clone(),
            real: task.read_time,
            cacheless: cl.read_time,
            wrench_cache: wc.read_time,
        });
        phases.push(NighresPhase {
            label: format!("Write {}", idx + 1),
            step: task.task_name.clone(),
            real: task.write_time,
            cacheless: cl.write_time,
            wrench_cache: wc.write_time,
        });
    }
    Ok(Exp4Result { phases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::scaled_platform;
    use storage_model::units::GB;

    #[test]
    fn exp4_error_ordering_matches_the_paper() {
        // The Nighres files (hundreds of MB) all fit in even a small node's
        // cache, so the cacheless simulator overestimates I/O times massively
        // while WRENCH-cache stays close to the ground truth.
        let platform = scaled_platform(16.0 * GB);
        let result = run_exp4(&platform).unwrap();
        assert_eq!(result.phases.len(), 8);
        assert_eq!(result.phases[0].label, "Read 1");
        assert_eq!(result.phases[0].step, "Skull stripping");

        let cacheless = result.mean_error_cacheless();
        let cache = result.mean_error_wrench_cache();
        assert!(
            cacheless > 2.0 * cache,
            "cacheless {cacheless}% vs wrench-cache {cache}%"
        );

        // The first read happens entirely from disk and is accurately
        // simulated by both simulators (paper §IV-D).
        let read1 = &result.phases[0];
        assert!(
            read1.error_cacheless() < 30.0,
            "{}",
            read1.error_cacheless()
        );
        assert!(
            read1.error_wrench_cache() < 30.0,
            "{}",
            read1.error_wrench_cache()
        );
    }
}
