//! Platform configuration of the paper's cluster (Table III and §III-D).
//!
//! The simulators are parameterised with the *symmetric averages* of the
//! measured read/write bandwidths (a SimGrid 3.25 limitation the paper calls
//! out), while the ground-truth emulator uses the measured asymmetric values.

use storage_model::units::{GB, GIB, MB};
use storage_model::DeviceSpec;
use workflow::{DeviceSet, PlatformSpec};

/// Measured bandwidths of the cluster, in MBps (Table III, "Cluster (real)").
pub mod measured {
    /// Memory read bandwidth.
    pub const MEMORY_READ: f64 = 6860.0;
    /// Memory write bandwidth.
    pub const MEMORY_WRITE: f64 = 2764.0;
    /// Local disk read bandwidth.
    pub const LOCAL_DISK_READ: f64 = 510.0;
    /// Local disk write bandwidth.
    pub const LOCAL_DISK_WRITE: f64 = 420.0;
    /// Remote (NFS) disk read bandwidth.
    pub const REMOTE_DISK_READ: f64 = 515.0;
    /// Remote (NFS) disk write bandwidth.
    pub const REMOTE_DISK_WRITE: f64 = 375.0;
    /// Network bandwidth.
    pub const NETWORK: f64 = 3000.0;
}

/// Bandwidths used to configure the simulators, in MBps (Table III, "Python
/// prototype" / "WRENCH simulator" columns).
pub mod simulated {
    /// Memory bandwidth (mean of measured read and write).
    pub const MEMORY: f64 = 4812.0;
    /// Local disk bandwidth (mean of measured read and write).
    pub const LOCAL_DISK: f64 = 465.0;
    /// Remote (NFS) disk bandwidth (mean of measured read and write).
    pub const REMOTE_DISK: f64 = 445.0;
    /// Network bandwidth.
    pub const NETWORK: f64 = 3000.0;
}

/// RAM of a cluster compute node (250 GiB).
pub const NODE_MEMORY: f64 = 250.0 * GIB;

/// Capacity of one local SSD (450 GiB).
pub const LOCAL_DISK_CAPACITY: f64 = 450.0 * GIB;

/// Capacity of the NFS-mounted partition used in Exp 3 (50 GiB partition of a
/// 450 GiB remote disk; we expose the full remote disk to avoid spurious
/// disk-full failures when many instances run concurrently).
pub const REMOTE_DISK_CAPACITY: f64 = 450.0 * GIB;

/// The platform of the paper's experiments: one 250 GiB compute node, local
/// SSDs, and an NFS server reachable over a 25 Gbps network.
pub fn paper_platform() -> PlatformSpec {
    let simulated_set = DeviceSet {
        memory: DeviceSpec::symmetric(simulated::MEMORY * MB, 0.0, f64::INFINITY),
        disk: DeviceSpec::symmetric(simulated::LOCAL_DISK * MB, 0.0, LOCAL_DISK_CAPACITY),
        remote_disk: DeviceSpec::symmetric(simulated::REMOTE_DISK * MB, 0.0, REMOTE_DISK_CAPACITY),
        network_bandwidth: simulated::NETWORK * MB,
        network_latency: 0.0,
    };
    let real_set = DeviceSet {
        memory: DeviceSpec::asymmetric(
            measured::MEMORY_READ * MB,
            measured::MEMORY_WRITE * MB,
            0.0,
            f64::INFINITY,
        ),
        disk: DeviceSpec::asymmetric(
            measured::LOCAL_DISK_READ * MB,
            measured::LOCAL_DISK_WRITE * MB,
            0.0,
            LOCAL_DISK_CAPACITY,
        ),
        remote_disk: DeviceSpec::asymmetric(
            measured::REMOTE_DISK_READ * MB,
            measured::REMOTE_DISK_WRITE * MB,
            0.0,
            REMOTE_DISK_CAPACITY,
        ),
        network_bandwidth: measured::NETWORK * MB,
        network_latency: 0.0,
    };
    let mut platform = PlatformSpec::uniform(NODE_MEMORY, simulated_set.memory, simulated_set.disk);
    platform.simulated = simulated_set;
    platform.real = real_set;
    platform.server_memory = NODE_MEMORY;
    platform
}

/// A proportionally scaled-down platform (1/`factor` of the node memory and
/// file sizes still expressed by the caller), useful for fast tests.
pub fn scaled_platform(memory: f64) -> PlatformSpec {
    let mut p = paper_platform();
    p.host_memory = memory;
    p.server_memory = memory;
    p
}

/// File sizes evaluated in Exp 1 (paper: 20, 50, 75 and 100 GB; Fig. 4 reports
/// 20 and 100 GB).
pub fn exp1_file_sizes() -> Vec<f64> {
    vec![20.0 * GB, 100.0 * GB]
}

/// File size of the concurrent experiments (Exp 2 and 3): 3 GB.
pub const EXP2_FILE_SIZE: f64 = 3.0 * GB;

/// Instance counts used for the concurrency sweeps (paper: 1 to 32).
pub fn concurrency_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_matches_table3() {
        let p = paper_platform();
        assert!(p.validate().is_ok());
        assert_eq!(p.host_memory, 250.0 * GIB);
        assert_eq!(p.simulated.memory.read_bandwidth, 4812.0 * MB);
        assert_eq!(p.simulated.disk.read_bandwidth, 465.0 * MB);
        assert_eq!(p.simulated.remote_disk.write_bandwidth, 445.0 * MB);
        assert_eq!(p.real.memory.read_bandwidth, 6860.0 * MB);
        assert_eq!(p.real.memory.write_bandwidth, 2764.0 * MB);
        assert_eq!(p.real.disk.write_bandwidth, 420.0 * MB);
        assert_eq!(p.real.remote_disk.read_bandwidth, 515.0 * MB);
        assert_eq!(p.simulated.network_bandwidth, 3000.0 * MB);
    }

    #[test]
    fn simulated_bandwidths_are_means_of_measured() {
        assert_eq!(
            simulated::MEMORY,
            (measured::MEMORY_READ + measured::MEMORY_WRITE) / 2.0
        );
        assert_eq!(
            simulated::LOCAL_DISK,
            (measured::LOCAL_DISK_READ + measured::LOCAL_DISK_WRITE) / 2.0
        );
        assert_eq!(
            simulated::REMOTE_DISK,
            (measured::REMOTE_DISK_READ + measured::REMOTE_DISK_WRITE) / 2.0
        );
    }

    #[test]
    fn sweeps_are_sane() {
        assert_eq!(exp1_file_sizes(), vec![20.0 * GB, 100.0 * GB]);
        let sweep = concurrency_sweep();
        assert_eq!(*sweep.first().unwrap(), 1);
        assert_eq!(*sweep.last().unwrap(), 32);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        let scaled = scaled_platform(8.0 * GB);
        assert_eq!(scaled.host_memory, 8.0 * GB);
    }
}
