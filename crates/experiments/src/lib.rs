//! # `experiments` — reproduction of every table and figure of the paper
//!
//! Each experiment of *"Modeling the Linux page cache for accurate simulation
//! of data-intensive applications"* (CLUSTER 2021) is available both as a
//! library function (used by the test suite and by the benchmark harness) and
//! as a binary that prints the corresponding table or figure data:
//!
//! | Artefact | Function | Binary |
//! |---|---|---|
//! | Table I (synthetic app parameters) | [`workflow::ApplicationSpec::synthetic_cpu_time`] | `table1` |
//! | Table II (Nighres parameters) | [`workflow::ApplicationSpec::nighres`] | `table2` |
//! | Table III (bandwidths) | [`platform::paper_platform`] | `table3` |
//! | Fig. 4a (Exp 1 errors) | [`exp1::run_exp1`] | `fig4a` |
//! | Fig. 4b (memory profiles) | [`exp1::run_exp1`] | `fig4b` |
//! | Fig. 4c (cache contents) | [`exp1::run_exp1`] | `fig4c` |
//! | Fig. 5 (Exp 2, concurrent, local) | [`exp_concurrent::run_exp2`] | `fig5` |
//! | Fig. 6 (Exp 4, Nighres) | [`exp4::run_exp4`] | `fig6` |
//! | Fig. 7 (Exp 3, concurrent, NFS) | [`exp_concurrent::run_exp3`] | `fig7` |
//! | Fig. 8 (simulation time) | [`simtime::run_simulation_time_measurement`] | `fig8` |
//!
//! Ground truth is provided by the `kernel-emu` crate (see `DESIGN.md` §5 for
//! the substitution rationale); "paper-scale" runs use the full 250 GiB node
//! and 20–100 GB files, while tests use proportionally scaled-down inputs.

#![warn(missing_docs)]

pub mod exp1;
pub mod exp4;
pub mod exp_concurrent;
pub mod figures;
pub mod platform;
pub mod simtime;
pub mod table;

pub use exp1::{run_exp1, run_exp1_for_size, Exp1SizeResult, PhaseTiming};
pub use exp4::{run_exp4, Exp4Result, NighresPhase};
pub use exp_concurrent::{run_exp2, run_exp3, ConcurrencyPoint, ConcurrencySweep};
pub use platform::{
    concurrency_sweep, exp1_file_sizes, paper_platform, scaled_platform, EXP2_FILE_SIZE,
};
pub use simtime::{
    linear_fit, run_simulation_time_measurement, LinearFit, SimTimePoint, SimTimeResult,
};
