//! Renderers for every table and figure of the paper.
//!
//! Each `*_report` function runs the corresponding experiment and renders the
//! same plain-text table its binary used to print inline; the binaries under
//! `src/bin/` are now thin shims around these functions, so the sweep harness
//! (`crates/harness`), the test suite, and the CLI all share one code path.
//!
//! Every function takes a `quick` flag: `false` reproduces the paper-scale
//! configuration (250 GiB node, 20–100 GB files), `true` runs a
//! proportionally scaled-down configuration that finishes in seconds.

use storage_model::units::GB;
use workflow::ApplicationSpec;

use crate::exp1::run_exp1;
use crate::exp4::run_exp4;
use crate::exp_concurrent::{run_exp2, run_exp3, ConcurrencySweep};
use crate::platform::{
    concurrency_sweep, exp1_file_sizes, measured, paper_platform, scaled_platform, simulated,
    EXP2_FILE_SIZE,
};
use crate::simtime::run_simulation_time_measurement;
use crate::table::{pct, secs, TextTable};

/// The Exp 1 configuration: paper scale or the quick 16 GB / 2 GB variant.
fn exp1_config(quick: bool) -> (workflow::PlatformSpec, Vec<f64>) {
    if quick {
        (scaled_platform(16.0 * GB), vec![2.0 * GB])
    } else {
        (paper_platform(), exp1_file_sizes())
    }
}

/// The Exp 2/3 configuration: platform, file size and instance counts.
fn concurrency_config(quick: bool) -> (workflow::PlatformSpec, f64, Vec<usize>) {
    if quick {
        (scaled_platform(32.0 * GB), 1.0 * GB, vec![1, 4, 8])
    } else {
        (paper_platform(), EXP2_FILE_SIZE, concurrency_sweep())
    }
}

/// Fig. 4a: absolute relative simulation errors of the synthetic application
/// (Exp 1), per I/O phase and per simulator.
pub fn fig4a_report(quick: bool) -> String {
    let (platform, sizes) = exp1_config(quick);
    let results = run_exp1(&platform, &sizes).expect("Exp 1 failed");
    let mut out = String::new();
    for result in &results {
        out.push_str(&format!(
            "\n=== Exp 1, {} GB files ===\n",
            result.file_size / GB
        ));
        let mut table = TextTable::new(&[
            "Phase",
            "Real (s)",
            "Prototype (s)",
            "WRENCH (s)",
            "WRENCH-cache (s)",
            "err proto %",
            "err WRENCH %",
            "err cache %",
        ]);
        for p in &result.phases {
            table.add_row(vec![
                p.label.clone(),
                secs(p.real),
                secs(p.prototype),
                secs(p.cacheless),
                secs(p.wrench_cache),
                pct(p.error_prototype()),
                pct(p.error_cacheless()),
                pct(p.error_wrench_cache()),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n'); // the binaries printed the table with println!
        out.push_str(&format!(
            "Mean errors: prototype {:.0}%, WRENCH {:.0}%, WRENCH-cache {:.0}%\n",
            result.mean_error_prototype(),
            result.mean_error_cacheless(),
            result.mean_error_wrench_cache()
        ));
    }
    out
}

fn render_trace(out: &mut String, label: &str, trace: &Option<pagecache::MemoryTrace>) {
    out.push_str(&format!("\n--- {label} ---\n"));
    out.push_str(&format!(
        "{:>10}  {:>12}  {:>12}  {:>12}\n",
        "time (s)", "used (GB)", "cache (GB)", "dirty (GB)"
    ));
    let Some(trace) = trace else {
        out.push_str("(no memory model)\n");
        return;
    };
    // Down-sample to at most 40 rows to keep the output readable.
    let samples = trace.samples();
    let step = (samples.len() / 40).max(1);
    for s in samples.iter().step_by(step) {
        out.push_str(&format!(
            "{:>10.1}  {:>12.2}  {:>12.2}  {:>12.2}\n",
            s.time.as_secs(),
            s.used / GB,
            s.cached / GB,
            s.dirty / GB
        ));
    }
    out.push_str(&format!(
        "max dirty: {:.2} GB, max cache: {:.2} GB\n",
        trace.max_dirty() / GB,
        trace.max_cached() / GB
    ));
}

/// Fig. 4b: memory profiles (used, cached, dirty) over time for the real
/// execution (kernel emulator), the prototype, and WRENCH-cache.
pub fn fig4b_report(quick: bool) -> String {
    let (platform, sizes) = exp1_config(quick);
    let results = run_exp1(&platform, &sizes).expect("Exp 1 failed");
    let mut out = String::new();
    for result in &results {
        out.push_str(&format!(
            "\n=== Fig. 4b, {} GB files ===\n",
            result.file_size / GB
        ));
        render_trace(
            &mut out,
            "Real execution (kernel emulator)",
            &result.real_trace,
        );
        render_trace(
            &mut out,
            "Python prototype back-end",
            &result.prototype_trace,
        );
        render_trace(&mut out, "WRENCH-cache", &result.wrench_cache_trace);
    }
    out
}

fn render_snapshots(out: &mut String, label: &str, snaps: &[pagecache::CacheContentSnapshot]) {
    out.push_str(&format!("\n--- {label} ---\n"));
    for snap in snaps {
        let mut parts: Vec<String> = snap
            .per_file
            .iter()
            .map(|(f, bytes)| format!("{f}={:.1}GB", bytes / GB))
            .collect();
        parts.sort();
        out.push_str(&format!(
            "{:>8}: total {:>6.1} GB  [{}]\n",
            snap.label,
            snap.total() / GB,
            parts.join(", ")
        ));
    }
}

/// Fig. 4c: cache contents per file after each application I/O operation,
/// real execution vs WRENCH-cache.
pub fn fig4c_report(quick: bool) -> String {
    let (platform, sizes) = exp1_config(quick);
    let results = run_exp1(&platform, &sizes).expect("Exp 1 failed");
    let mut out = String::new();
    for result in &results {
        out.push_str(&format!(
            "\n=== Fig. 4c, {} GB files ===\n",
            result.file_size / GB
        ));
        render_snapshots(
            &mut out,
            "Real execution (kernel emulator)",
            &result.real_snapshots,
        );
        render_snapshots(&mut out, "WRENCH-cache", &result.wrench_cache_snapshots);
    }
    out
}

fn render_concurrency(sweep: &ConcurrencySweep, header: &str) -> String {
    let mut out = format!("{header}\n");
    let mut table = TextTable::new(&[
        "instances",
        "real read",
        "real write",
        "WRENCH read",
        "WRENCH write",
        "cache read",
        "cache write",
    ]);
    for p in &sweep.points {
        table.add_row(vec![
            p.instances.to_string(),
            secs(p.real_read),
            secs(p.real_write),
            secs(p.cacheless_read),
            secs(p.cacheless_write),
            secs(p.cache_read),
            secs(p.cache_write),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n'); // the binaries printed the table with println!
    out
}

/// Fig. 5 (Exp 2): cumulative read/write times of concurrent application
/// instances with 3 GB files on local storage.
pub fn fig5_report(quick: bool) -> String {
    let (platform, size, counts) = concurrency_config(quick);
    let sweep = run_exp2(&platform, size, &counts).expect("Exp 2 failed");
    render_concurrency(
        &sweep,
        &format!(
            "Fig. 5 (Exp 2): concurrent instances, {} GB files, local disk",
            size / GB
        ),
    )
}

/// Fig. 6 (Exp 4): per-step read/write simulation errors for the Nighres
/// workflow, WRENCH vs WRENCH-cache.
pub fn fig6_report(quick: bool) -> String {
    let platform = if quick {
        scaled_platform(16.0 * GB)
    } else {
        paper_platform()
    };
    let result = run_exp4(&platform).expect("Exp 4 failed");
    let mut out =
        String::from("Fig. 6 (Exp 4): Nighres cortical reconstruction, per-phase errors\n");
    let mut table = TextTable::new(&[
        "Phase",
        "Step",
        "Real (s)",
        "WRENCH (s)",
        "WRENCH-cache (s)",
        "err WRENCH %",
        "err cache %",
    ]);
    for p in &result.phases {
        table.add_row(vec![
            p.label.clone(),
            p.step.clone(),
            secs(p.real),
            secs(p.cacheless),
            secs(p.wrench_cache),
            pct(p.error_cacheless()),
            pct(p.error_wrench_cache()),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n'); // the binaries printed the table with println!
    out.push_str(&format!(
        "Mean errors: WRENCH {:.0}%, WRENCH-cache {:.0}% (paper: 337% and 47%)\n",
        result.mean_error_cacheless(),
        result.mean_error_wrench_cache()
    ));
    out
}

/// Fig. 7 (Exp 3): cumulative read/write times of concurrent application
/// instances with 3 GB files on NFS storage.
pub fn fig7_report(quick: bool) -> String {
    let (platform, size, counts) = concurrency_config(quick);
    let sweep = run_exp3(&platform, size, &counts).expect("Exp 3 failed");
    render_concurrency(
        &sweep,
        &format!(
            "Fig. 7 (Exp 3): concurrent instances, {} GB files, NFS storage",
            size / GB
        ),
    )
}

/// Fig. 8: simulation wall-clock time vs number of concurrent application
/// instances, with linear fits. Wall-clock times are machine-dependent, so
/// this report is informational and never golden-gated.
pub fn fig8_report(quick: bool) -> String {
    let (platform, size, counts) = if quick {
        (scaled_platform(32.0 * GB), 1.0 * GB, vec![1, 2, 4, 8])
    } else {
        (paper_platform(), EXP2_FILE_SIZE, concurrency_sweep())
    };
    let result = run_simulation_time_measurement(&platform, size, &counts).expect("Fig. 8 failed");
    let mut out = String::from("Fig. 8: simulation time vs concurrent applications\n");
    let mut table = TextTable::new(&[
        "instances",
        "WRENCH local (s)",
        "WRENCH NFS (s)",
        "cache local (s)",
        "cache NFS (s)",
    ]);
    for p in &result.points {
        table.add_row(vec![
            p.instances.to_string(),
            format!("{:.4}", p.cacheless_local),
            format!("{:.4}", p.cacheless_nfs),
            format!("{:.4}", p.cache_local),
            format!("{:.4}", p.cache_nfs),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n'); // the binaries printed the table with println!
    for (label, fit) in [
        ("WRENCH (local)", result.fit_cacheless_local),
        ("WRENCH (NFS)", result.fit_cacheless_nfs),
        ("WRENCH-cache (local)", result.fit_cache_local),
        ("WRENCH-cache (NFS)", result.fit_cache_nfs),
    ] {
        out.push_str(&format!(
            "{label}: y = {:.4}x + {:.4} (R^2 = {:.3})\n",
            fit.slope, fit.intercept, fit.r_squared
        ));
    }
    out
}

/// Table I: synthetic application parameters (input size vs CPU time).
pub fn table1_report() -> String {
    let mut table = TextTable::new(&["Input size (GB)", "CPU time (s)"]);
    for gb in [3.0, 20.0, 50.0, 75.0, 100.0] {
        let cpu = ApplicationSpec::synthetic_cpu_time(gb * GB);
        table.add_row(vec![format!("{gb:.0}"), format!("{cpu:.1}")]);
    }
    format!(
        "Table I: Synthetic application parameters\n{}\n",
        table.render()
    )
}

/// Table II: Nighres application parameters.
pub fn table2_report() -> String {
    use storage_model::units::MB;
    let app = ApplicationSpec::nighres();
    let mut table = TextTable::new(&[
        "Workflow step",
        "Input size (MB)",
        "Output size (MB)",
        "CPU time (s)",
    ]);
    for task in &app.tasks {
        table.add_row(vec![
            task.name.clone(),
            format!("{:.0}", task.input_bytes() / MB),
            format!("{:.0}", task.output_bytes() / MB),
            format!("{:.0}", task.cpu_time),
        ]);
    }
    format!(
        "Table II: Nighres application parameters\n{}\n",
        table.render()
    )
}

/// Table III: bandwidth benchmarks and simulator configurations.
pub fn table3_report() -> String {
    let mut table = TextTable::new(&[
        "Device",
        "Direction",
        "Cluster (real, MBps)",
        "Simulators (MBps)",
    ]);
    let rows: Vec<(&str, &str, f64, f64)> = vec![
        ("Memory", "read", measured::MEMORY_READ, simulated::MEMORY),
        ("Memory", "write", measured::MEMORY_WRITE, simulated::MEMORY),
        (
            "Local disk",
            "read",
            measured::LOCAL_DISK_READ,
            simulated::LOCAL_DISK,
        ),
        (
            "Local disk",
            "write",
            measured::LOCAL_DISK_WRITE,
            simulated::LOCAL_DISK,
        ),
        (
            "Remote disk",
            "read",
            measured::REMOTE_DISK_READ,
            simulated::REMOTE_DISK,
        ),
        (
            "Remote disk",
            "write",
            measured::REMOTE_DISK_WRITE,
            simulated::REMOTE_DISK,
        ),
        ("Network", "-", measured::NETWORK, simulated::NETWORK),
    ];
    for (dev, dir, real, sim) in rows {
        table.add_row(vec![
            dev.into(),
            dir.into(),
            format!("{real:.0}"),
            format!("{sim:.0}"),
        ]);
    }
    format!(
        "Table III: Bandwidth benchmarks (MBps) and simulator configurations\n\
         (simulators use the mean of the measured read and write bandwidths)\n{}\n",
        table.render()
    )
}

/// Reads the `--quick` flag the report binaries share.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reports_render() {
        let t1 = table1_report();
        assert!(t1.contains("Table I"));
        assert!(t1.contains("100"));
        let t2 = table2_report();
        assert!(t2.contains("Table II"));
        assert!(t2.contains("Skull stripping"));
        let t3 = table3_report();
        assert!(t3.contains("Table III"));
        assert!(t3.contains("6860"));
    }

    #[test]
    fn fig6_quick_report_renders_phases() {
        let report = fig6_report(true);
        assert!(report.contains("Read 1"));
        assert!(report.contains("Mean errors"));
    }
}
