//! Thin shim around [`experiments::figures::table2_report`].

fn main() {
    print!("{}", experiments::figures::table2_report());
}
