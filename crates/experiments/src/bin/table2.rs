//! Reproduces Table II: Nighres application parameters.

use experiments::table::TextTable;
use storage_model::units::MB;
use workflow::ApplicationSpec;

fn main() {
    let app = ApplicationSpec::nighres();
    let mut table = TextTable::new(&[
        "Workflow step",
        "Input size (MB)",
        "Output size (MB)",
        "CPU time (s)",
    ]);
    for task in &app.tasks {
        table.add_row(vec![
            task.name.clone(),
            format!("{:.0}", task.input_bytes() / MB),
            format!("{:.0}", task.output_bytes() / MB),
            format!("{:.0}", task.cpu_time),
        ]);
    }
    println!("Table II: Nighres application parameters");
    println!("{}", table.render());
}
