//! Thin shim around [`experiments::figures::fig7_report`]; pass `--quick`
//! for the scaled-down configuration.

fn main() {
    print!(
        "{}",
        experiments::figures::fig7_report(experiments::figures::quick_flag())
    );
}
