//! Reproduces Fig. 7 (Exp 3): cumulative read/write times of concurrent
//! application instances with 3 GB files on NFS storage.

use experiments::platform::{concurrency_sweep, paper_platform, scaled_platform, EXP2_FILE_SIZE};
use experiments::run_exp3;
use experiments::table::{secs, TextTable};
use storage_model::units::GB;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (platform, size, counts) = if quick {
        (scaled_platform(32.0 * GB), 1.0 * GB, vec![1, 4, 8])
    } else {
        (paper_platform(), EXP2_FILE_SIZE, concurrency_sweep())
    };
    let sweep = run_exp3(&platform, size, &counts).expect("Exp 3 failed");
    println!(
        "Fig. 7 (Exp 3): concurrent instances, {} GB files, NFS storage",
        size / GB
    );
    let mut table = TextTable::new(&[
        "instances",
        "real read",
        "real write",
        "WRENCH read",
        "WRENCH write",
        "cache read",
        "cache write",
    ]);
    for p in &sweep.points {
        table.add_row(vec![
            p.instances.to_string(),
            secs(p.real_read),
            secs(p.real_write),
            secs(p.cacheless_read),
            secs(p.cacheless_write),
            secs(p.cache_read),
            secs(p.cache_write),
        ]);
    }
    println!("{}", table.render());
}
