//! Reproduces Fig. 6 (Exp 4): per-step read/write simulation errors for the
//! Nighres workflow, WRENCH vs WRENCH-cache.

use experiments::platform::{paper_platform, scaled_platform};
use experiments::run_exp4;
use experiments::table::{pct, secs, TextTable};
use storage_model::units::GB;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let platform = if quick {
        scaled_platform(16.0 * GB)
    } else {
        paper_platform()
    };
    let result = run_exp4(&platform).expect("Exp 4 failed");
    println!("Fig. 6 (Exp 4): Nighres cortical reconstruction, per-phase errors");
    let mut table = TextTable::new(&[
        "Phase",
        "Step",
        "Real (s)",
        "WRENCH (s)",
        "WRENCH-cache (s)",
        "err WRENCH %",
        "err cache %",
    ]);
    for p in &result.phases {
        table.add_row(vec![
            p.label.clone(),
            p.step.clone(),
            secs(p.real),
            secs(p.cacheless),
            secs(p.wrench_cache),
            pct(p.error_cacheless()),
            pct(p.error_wrench_cache()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Mean errors: WRENCH {:.0}%, WRENCH-cache {:.0}% (paper: 337% and 47%)",
        result.mean_error_cacheless(),
        result.mean_error_wrench_cache()
    );
}
