//! Thin shim around [`experiments::figures::fig6_report`]; pass `--quick`
//! for the scaled-down configuration.

fn main() {
    print!(
        "{}",
        experiments::figures::fig6_report(experiments::figures::quick_flag())
    );
}
