//! Reproduces Fig. 4a: absolute relative simulation errors of the synthetic
//! application (Exp 1), per I/O phase and per simulator.

use experiments::platform::{exp1_file_sizes, paper_platform, scaled_platform};
use experiments::run_exp1;
use experiments::table::{pct, secs, TextTable};
use storage_model::units::GB;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (platform, sizes) = if quick {
        (scaled_platform(16.0 * GB), vec![2.0 * GB])
    } else {
        (paper_platform(), exp1_file_sizes())
    };
    let results = run_exp1(&platform, &sizes).expect("Exp 1 failed");
    for result in &results {
        println!("\n=== Exp 1, {} GB files ===", result.file_size / GB);
        let mut table = TextTable::new(&[
            "Phase",
            "Real (s)",
            "Prototype (s)",
            "WRENCH (s)",
            "WRENCH-cache (s)",
            "err proto %",
            "err WRENCH %",
            "err cache %",
        ]);
        for p in &result.phases {
            table.add_row(vec![
                p.label.clone(),
                secs(p.real),
                secs(p.prototype),
                secs(p.cacheless),
                secs(p.wrench_cache),
                pct(p.error_prototype()),
                pct(p.error_cacheless()),
                pct(p.error_wrench_cache()),
            ]);
        }
        println!("{}", table.render());
        println!(
            "Mean errors: prototype {:.0}%, WRENCH {:.0}%, WRENCH-cache {:.0}%",
            result.mean_error_prototype(),
            result.mean_error_cacheless(),
            result.mean_error_wrench_cache()
        );
    }
}
