//! Thin shim around [`experiments::figures::fig4a_report`]; pass `--quick`
//! for the scaled-down configuration.

fn main() {
    print!(
        "{}",
        experiments::figures::fig4a_report(experiments::figures::quick_flag())
    );
}
