//! Reproduces Fig. 4b: memory profiles (used, cached, dirty) over time for the
//! real execution (kernel emulator), the prototype, and WRENCH-cache.

use experiments::platform::{exp1_file_sizes, paper_platform, scaled_platform};
use experiments::run_exp1;
use pagecache::MemoryTrace;
use storage_model::units::GB;

fn print_trace(label: &str, trace: &Option<MemoryTrace>) {
    println!("\n--- {label} ---");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>12}",
        "time (s)", "used (GB)", "cache (GB)", "dirty (GB)"
    );
    let Some(trace) = trace else {
        println!("(no memory model)");
        return;
    };
    // Down-sample to at most 40 rows to keep the output readable.
    let samples = trace.samples();
    let step = (samples.len() / 40).max(1);
    for s in samples.iter().step_by(step) {
        println!(
            "{:>10.1}  {:>12.2}  {:>12.2}  {:>12.2}",
            s.time.as_secs(),
            s.used / GB,
            s.cached / GB,
            s.dirty / GB
        );
    }
    println!(
        "max dirty: {:.2} GB, max cache: {:.2} GB",
        trace.max_dirty() / GB,
        trace.max_cached() / GB
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (platform, sizes) = if quick {
        (scaled_platform(16.0 * GB), vec![2.0 * GB])
    } else {
        (paper_platform(), exp1_file_sizes())
    };
    let results = run_exp1(&platform, &sizes).expect("Exp 1 failed");
    for result in &results {
        println!("\n=== Fig. 4b, {} GB files ===", result.file_size / GB);
        print_trace("Real execution (kernel emulator)", &result.real_trace);
        print_trace("Python prototype back-end", &result.prototype_trace);
        print_trace("WRENCH-cache", &result.wrench_cache_trace);
    }
}
