//! Thin shim around [`experiments::figures::fig4b_report`]; pass `--quick`
//! for the scaled-down configuration.

fn main() {
    print!(
        "{}",
        experiments::figures::fig4b_report(experiments::figures::quick_flag())
    );
}
