//! Reproduces Table I: synthetic application parameters (input size vs CPU time).

use experiments::table::TextTable;
use storage_model::units::GB;
use workflow::ApplicationSpec;

fn main() {
    let mut table = TextTable::new(&["Input size (GB)", "CPU time (s)"]);
    for gb in [3.0, 20.0, 50.0, 75.0, 100.0] {
        let cpu = ApplicationSpec::synthetic_cpu_time(gb * GB);
        table.add_row(vec![format!("{gb:.0}"), format!("{cpu:.1}")]);
    }
    println!("Table I: Synthetic application parameters");
    println!("{}", table.render());
}
