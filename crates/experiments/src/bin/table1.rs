//! Thin shim around [`experiments::figures::table1_report`].

fn main() {
    print!("{}", experiments::figures::table1_report());
}
