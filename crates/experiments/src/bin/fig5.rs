//! Thin shim around [`experiments::figures::fig5_report`]; pass `--quick`
//! for the scaled-down configuration.

fn main() {
    print!(
        "{}",
        experiments::figures::fig5_report(experiments::figures::quick_flag())
    );
}
