//! Thin shim around [`experiments::figures::fig8_report`]; pass `--quick`
//! for the scaled-down configuration.

fn main() {
    print!(
        "{}",
        experiments::figures::fig8_report(experiments::figures::quick_flag())
    );
}
