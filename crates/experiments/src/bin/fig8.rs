//! Reproduces Fig. 8: simulation wall-clock time vs number of concurrent
//! application instances, with linear fits.

use experiments::platform::{concurrency_sweep, paper_platform, scaled_platform, EXP2_FILE_SIZE};
use experiments::run_simulation_time_measurement;
use experiments::table::TextTable;
use storage_model::units::GB;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (platform, size, counts) = if quick {
        (scaled_platform(32.0 * GB), 1.0 * GB, vec![1, 2, 4, 8])
    } else {
        (paper_platform(), EXP2_FILE_SIZE, concurrency_sweep())
    };
    let result = run_simulation_time_measurement(&platform, size, &counts).expect("Fig. 8 failed");
    println!("Fig. 8: simulation time vs concurrent applications");
    let mut table = TextTable::new(&[
        "instances",
        "WRENCH local (s)",
        "WRENCH NFS (s)",
        "cache local (s)",
        "cache NFS (s)",
    ]);
    for p in &result.points {
        table.add_row(vec![
            p.instances.to_string(),
            format!("{:.4}", p.cacheless_local),
            format!("{:.4}", p.cacheless_nfs),
            format!("{:.4}", p.cache_local),
            format!("{:.4}", p.cache_nfs),
        ]);
    }
    println!("{}", table.render());
    for (label, fit) in [
        ("WRENCH (local)", result.fit_cacheless_local),
        ("WRENCH (NFS)", result.fit_cacheless_nfs),
        ("WRENCH-cache (local)", result.fit_cache_local),
        ("WRENCH-cache (NFS)", result.fit_cache_nfs),
    ] {
        println!(
            "{label}: y = {:.4}x + {:.4} (R^2 = {:.3})",
            fit.slope, fit.intercept, fit.r_squared
        );
    }
}
