//! Reproduces Fig. 4c: cache contents per file after each application I/O
//! operation, real execution vs WRENCH-cache.

use experiments::platform::{exp1_file_sizes, paper_platform, scaled_platform};
use experiments::run_exp1;
use pagecache::CacheContentSnapshot;
use storage_model::units::GB;

fn print_snapshots(label: &str, snaps: &[CacheContentSnapshot]) {
    println!("\n--- {label} ---");
    for snap in snaps {
        let mut parts: Vec<String> = snap
            .per_file
            .iter()
            .map(|(f, bytes)| format!("{f}={:.1}GB", bytes / GB))
            .collect();
        parts.sort();
        println!(
            "{:>8}: total {:>6.1} GB  [{}]",
            snap.label,
            snap.total() / GB,
            parts.join(", ")
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (platform, sizes) = if quick {
        (scaled_platform(16.0 * GB), vec![2.0 * GB])
    } else {
        (paper_platform(), exp1_file_sizes())
    };
    let results = run_exp1(&platform, &sizes).expect("Exp 1 failed");
    for result in &results {
        println!("\n=== Fig. 4c, {} GB files ===", result.file_size / GB);
        print_snapshots("Real execution (kernel emulator)", &result.real_snapshots);
        print_snapshots("WRENCH-cache", &result.wrench_cache_snapshots);
    }
}
