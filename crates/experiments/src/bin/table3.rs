//! Reproduces Table III: bandwidth benchmarks and simulator configurations.

use experiments::platform::{measured, simulated};
use experiments::table::TextTable;

fn main() {
    let mut table = TextTable::new(&[
        "Device",
        "Direction",
        "Cluster (real, MBps)",
        "Simulators (MBps)",
    ]);
    let rows: Vec<(&str, &str, f64, f64)> = vec![
        ("Memory", "read", measured::MEMORY_READ, simulated::MEMORY),
        ("Memory", "write", measured::MEMORY_WRITE, simulated::MEMORY),
        (
            "Local disk",
            "read",
            measured::LOCAL_DISK_READ,
            simulated::LOCAL_DISK,
        ),
        (
            "Local disk",
            "write",
            measured::LOCAL_DISK_WRITE,
            simulated::LOCAL_DISK,
        ),
        (
            "Remote disk",
            "read",
            measured::REMOTE_DISK_READ,
            simulated::REMOTE_DISK,
        ),
        (
            "Remote disk",
            "write",
            measured::REMOTE_DISK_WRITE,
            simulated::REMOTE_DISK,
        ),
        ("Network", "-", measured::NETWORK, simulated::NETWORK),
    ];
    for (dev, dir, real, sim) in rows {
        table.add_row(vec![
            dev.into(),
            dir.into(),
            format!("{real:.0}"),
            format!("{sim:.0}"),
        ]);
    }
    println!("Table III: Bandwidth benchmarks (MBps) and simulator configurations");
    println!("(simulators use the mean of the measured read and write bandwidths)");
    println!("{}", table.render());
}
