//! Thin shim around [`experiments::figures::table3_report`].

fn main() {
    print!("{}", experiments::figures::table3_report());
}
