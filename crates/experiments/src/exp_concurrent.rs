//! Experiments 2 and 3 (paper §IV-B and §IV-C, Figs. 5 and 7): concurrent
//! instances of the synthetic application with 3 GB files, on local storage
//! (Exp 2) or on an NFS mount (Exp 3).
//!
//! The reported metric is the cumulative read time and cumulative write time
//! per application instance (averaged across instances), as a function of the
//! number of concurrent instances.

use workflow::{
    run_scenario, ApplicationSpec, PlatformSpec, Scenario, ScenarioError, SimulatorKind,
};

/// Read/write times for one instance count, for the ground truth and the two
/// simulators of Figs. 5 and 7.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencyPoint {
    /// Number of concurrent application instances.
    pub instances: usize,
    /// Ground-truth cumulative read time per instance, seconds.
    pub real_read: f64,
    /// Ground-truth cumulative write time per instance, seconds.
    pub real_write: f64,
    /// Cacheless (vanilla WRENCH) read time, seconds.
    pub cacheless_read: f64,
    /// Cacheless write time, seconds.
    pub cacheless_write: f64,
    /// WRENCH-cache read time, seconds.
    pub cache_read: f64,
    /// WRENCH-cache write time, seconds.
    pub cache_write: f64,
}

/// Result of a full concurrency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencySweep {
    /// Whether the sweep used NFS storage (Exp 3) or local storage (Exp 2).
    pub nfs: bool,
    /// File size of the synthetic application, bytes.
    pub file_size: f64,
    /// One point per instance count.
    pub points: Vec<ConcurrencyPoint>,
}

impl ConcurrencySweep {
    /// Maximum ground-truth write time observed (the plateau level of Fig. 5).
    pub fn max_real_write(&self) -> f64 {
        self.points.iter().map(|p| p.real_write).fold(0.0, f64::max)
    }
}

/// Runs one concurrency sweep (Exp 2 if `nfs` is false, Exp 3 if true).
pub fn run_concurrency_sweep(
    platform: &PlatformSpec,
    file_size: f64,
    instance_counts: &[usize],
    nfs: bool,
) -> Result<ConcurrencySweep, ScenarioError> {
    let platform = if nfs {
        platform.clone().with_nfs()
    } else {
        platform.clone()
    };
    let app = ApplicationSpec::synthetic_pipeline(file_size);
    let mut points = Vec::new();
    for &instances in instance_counts {
        let run = |kind: SimulatorKind| -> Result<_, ScenarioError> {
            let report = run_scenario(
                &Scenario::new(platform.clone(), app.clone(), kind)
                    .with_instances(instances)?
                    .with_sample_interval(None),
            )?;
            Ok((
                report.mean_total_read_time(),
                report.mean_total_write_time(),
            ))
        };
        let (real_read, real_write) = run(SimulatorKind::KernelEmu)?;
        let (cacheless_read, cacheless_write) = run(SimulatorKind::Cacheless)?;
        let (cache_read, cache_write) = run(SimulatorKind::PageCache)?;
        points.push(ConcurrencyPoint {
            instances,
            real_read,
            real_write,
            cacheless_read,
            cacheless_write,
            cache_read,
            cache_write,
        });
    }
    Ok(ConcurrencySweep {
        nfs,
        file_size,
        points,
    })
}

/// Runs Exp 2 (local storage).
pub fn run_exp2(
    platform: &PlatformSpec,
    file_size: f64,
    instance_counts: &[usize],
) -> Result<ConcurrencySweep, ScenarioError> {
    run_concurrency_sweep(platform, file_size, instance_counts, false)
}

/// Runs Exp 3 (NFS storage).
pub fn run_exp3(
    platform: &PlatformSpec,
    file_size: f64,
    instance_counts: &[usize],
) -> Result<ConcurrencySweep, ScenarioError> {
    run_concurrency_sweep(platform, file_size, instance_counts, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::scaled_platform;
    use storage_model::units::GB;

    #[test]
    fn exp2_shape_cacheless_overestimates_and_contention_grows() {
        let platform = scaled_platform(32.0 * GB);
        let sweep = run_exp2(&platform, 1.0 * GB, &[1, 4, 8]).unwrap();
        assert_eq!(sweep.points.len(), 3);
        assert!(!sweep.nfs);
        for p in &sweep.points {
            // Cacheless WRENCH overestimates both reads (no cache hits) and
            // writes (no writeback cache) compared to the ground truth.
            assert!(
                p.cacheless_read > p.real_read,
                "n={}: cacheless read {} vs real {}",
                p.instances,
                p.cacheless_read,
                p.real_read
            );
            assert!(
                p.cacheless_write > p.real_write,
                "n={}: cacheless write {} vs real {}",
                p.instances,
                p.cacheless_write,
                p.real_write
            );
            // WRENCH-cache is closer to the ground truth than cacheless for
            // reads (the paper's headline improvement).
            let err_cache = (p.cache_read - p.real_read).abs();
            let err_cacheless = (p.cacheless_read - p.real_read).abs();
            assert!(
                err_cache <= err_cacheless,
                "n={}: cache err {} vs cacheless err {}",
                p.instances,
                err_cache,
                err_cacheless
            );
        }
        // Contention: the cacheless read time grows with the instance count.
        assert!(sweep.points[2].cacheless_read > 1.5 * sweep.points[0].cacheless_read);
    }

    #[test]
    fn exp3_nfs_writes_are_disk_bound_in_all_simulators() {
        let platform = scaled_platform(32.0 * GB);
        let sweep = run_exp3(&platform, 1.0 * GB, &[1, 4]).unwrap();
        assert!(sweep.nfs);
        for p in &sweep.points {
            // With a writethrough server cache there is no write caching, so
            // WRENCH-cache and the ground truth are both disk-bound: the gap
            // between them is small relative to the write time.
            let gap = (p.cache_write - p.real_write).abs();
            assert!(
                gap < 0.35 * p.real_write.max(1.0),
                "n={}: cache write {} vs real {}",
                p.instances,
                p.cache_write,
                p.real_write
            );
            // Reads benefit from caches in both the ground truth and
            // WRENCH-cache, so the cacheless simulator overestimates them.
            assert!(p.cacheless_read > p.cache_read);
        }
    }
}
