//! Experiment 1 (paper §IV-A, Fig. 4): a single instance of the synthetic
//! three-task pipeline on a single node with local I/O, for several input
//! file sizes.
//!
//! Produces, for each file size:
//! * the per-phase I/O times (Read 1 … Write 3) of the ground truth and of the
//!   three simulators, plus their absolute relative errors (Fig. 4a);
//! * the memory profiles (Fig. 4b);
//! * the cache content per file after each phase (Fig. 4c).

use pagecache::{CacheContentSnapshot, MemoryTrace};
use workflow::{
    absolute_relative_error_pct, run_scenario, ApplicationSpec, PlatformSpec, Scenario,
    ScenarioError, ScenarioReport, SimulatorKind,
};

/// I/O times of one phase (one read or one write of one task) in every
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase label ("Read 1", "Write 1", ...).
    pub label: String,
    /// Ground-truth time (kernel emulator), seconds.
    pub real: f64,
    /// Python-prototype back-end time, seconds.
    pub prototype: f64,
    /// Cacheless (vanilla WRENCH) time, seconds.
    pub cacheless: f64,
    /// WRENCH-cache time, seconds.
    pub wrench_cache: f64,
}

impl PhaseTiming {
    /// Absolute relative error of the prototype for this phase, percent.
    pub fn error_prototype(&self) -> f64 {
        absolute_relative_error_pct(self.prototype, self.real)
    }

    /// Absolute relative error of the cacheless simulator, percent.
    pub fn error_cacheless(&self) -> f64 {
        absolute_relative_error_pct(self.cacheless, self.real)
    }

    /// Absolute relative error of WRENCH-cache, percent.
    pub fn error_wrench_cache(&self) -> f64 {
        absolute_relative_error_pct(self.wrench_cache, self.real)
    }
}

/// Result of Exp 1 for one input file size.
#[derive(Debug, Clone)]
pub struct Exp1SizeResult {
    /// Input file size in bytes.
    pub file_size: f64,
    /// Per-phase timings and errors (Fig. 4a).
    pub phases: Vec<PhaseTiming>,
    /// Ground-truth memory profile (Fig. 4b, top row).
    pub real_trace: Option<MemoryTrace>,
    /// Prototype memory profile (Fig. 4b, middle row).
    pub prototype_trace: Option<MemoryTrace>,
    /// WRENCH-cache memory profile (Fig. 4b, bottom row).
    pub wrench_cache_trace: Option<MemoryTrace>,
    /// Ground-truth cache content after each phase (Fig. 4c).
    pub real_snapshots: Vec<CacheContentSnapshot>,
    /// WRENCH-cache cache content after each phase (Fig. 4c).
    pub wrench_cache_snapshots: Vec<CacheContentSnapshot>,
}

impl Exp1SizeResult {
    /// Mean absolute relative error of a simulator across phases, skipping
    /// phases with an (effectively) zero ground-truth time.
    pub fn mean_error(&self, pick: impl Fn(&PhaseTiming) -> f64) -> f64 {
        let errors: Vec<f64> = self
            .phases
            .iter()
            .filter(|p| p.real > 1e-9)
            .map(pick)
            .collect();
        if errors.is_empty() {
            0.0
        } else {
            errors.iter().sum::<f64>() / errors.len() as f64
        }
    }

    /// Mean error of the prototype, percent.
    pub fn mean_error_prototype(&self) -> f64 {
        self.mean_error(PhaseTiming::error_prototype)
    }

    /// Mean error of the cacheless simulator, percent.
    pub fn mean_error_cacheless(&self) -> f64 {
        self.mean_error(PhaseTiming::error_cacheless)
    }

    /// Mean error of WRENCH-cache, percent.
    pub fn mean_error_wrench_cache(&self) -> f64 {
        self.mean_error(PhaseTiming::error_wrench_cache)
    }
}

/// Extracts the interleaved Read/Write phase times from a scenario report.
pub fn phase_times(report: &ScenarioReport) -> Vec<(String, f64)> {
    let mut phases = Vec::new();
    if let Some(instance) = report.instance_reports.first() {
        for (idx, task) in instance.tasks.iter().enumerate() {
            phases.push((format!("Read {}", idx + 1), task.read_time));
            phases.push((format!("Write {}", idx + 1), task.write_time));
        }
    }
    phases
}

/// Runs Exp 1 for one file size on the given platform.
pub fn run_exp1_for_size(
    platform: &PlatformSpec,
    file_size: f64,
) -> Result<Exp1SizeResult, ScenarioError> {
    let app = ApplicationSpec::synthetic_pipeline(file_size);
    let run = |kind: SimulatorKind| -> Result<ScenarioReport, ScenarioError> {
        run_scenario(&Scenario::new(platform.clone(), app.clone(), kind))
    };
    let real = run(SimulatorKind::KernelEmu)?;
    let prototype = run(SimulatorKind::Prototype)?;
    let cacheless = run(SimulatorKind::Cacheless)?;
    let wrench_cache = run(SimulatorKind::PageCache)?;

    let real_phases = phase_times(&real);
    let proto_phases = phase_times(&prototype);
    let cacheless_phases = phase_times(&cacheless);
    let cache_phases = phase_times(&wrench_cache);

    let phases = real_phases
        .iter()
        .enumerate()
        .map(|(i, (label, real_time))| PhaseTiming {
            label: label.clone(),
            real: *real_time,
            prototype: proto_phases[i].1,
            cacheless: cacheless_phases[i].1,
            wrench_cache: cache_phases[i].1,
        })
        .collect();

    Ok(Exp1SizeResult {
        file_size,
        phases,
        real_trace: real.memory_trace.clone(),
        prototype_trace: prototype.memory_trace.clone(),
        wrench_cache_trace: wrench_cache.memory_trace.clone(),
        real_snapshots: real.cache_snapshots.clone(),
        wrench_cache_snapshots: wrench_cache.cache_snapshots.clone(),
    })
}

/// Runs Exp 1 for every requested file size.
pub fn run_exp1(
    platform: &PlatformSpec,
    file_sizes: &[f64],
) -> Result<Vec<Exp1SizeResult>, ScenarioError> {
    file_sizes
        .iter()
        .map(|&size| run_exp1_for_size(platform, size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::scaled_platform;
    use storage_model::units::GB;

    #[test]
    fn exp1_small_scale_reproduces_the_error_ordering() {
        // 2 GB files on a 16 GB node: everything fits in the cache, so the
        // cacheless simulator must grossly overestimate re-reads and writes
        // while the cache-aware simulators stay close to the ground truth.
        let platform = scaled_platform(16.0 * GB);
        let result = run_exp1_for_size(&platform, 2.0 * GB).unwrap();
        assert_eq!(result.phases.len(), 6);
        assert_eq!(result.phases[0].label, "Read 1");
        assert_eq!(result.phases[5].label, "Write 3");

        // The headline result of the paper: the page cache model reduces the
        // simulation error by a large factor compared to cacheless WRENCH.
        let err_cacheless = result.mean_error_cacheless();
        let err_cache = result.mean_error_wrench_cache();
        assert!(
            err_cacheless > 2.0 * err_cache,
            "cacheless error {err_cacheless}% should dwarf WRENCH-cache error {err_cache}%"
        );
        // Re-reads (Read 2, Read 3) are where the cacheless model hurts most.
        let read2 = &result.phases[2];
        assert!(
            read2.error_cacheless() > 100.0,
            "{}",
            read2.error_cacheless()
        );
        assert!(
            read2.error_wrench_cache() < 60.0,
            "{}",
            read2.error_wrench_cache()
        );

        // Read 1 is a cold read in every simulator: everyone is accurate.
        let read1 = &result.phases[0];
        assert!(read1.error_cacheless() < 30.0);
        assert!(read1.error_wrench_cache() < 30.0);

        // Memory traces and snapshots were collected for the cache-aware runs.
        assert!(result.real_trace.is_some());
        assert!(result.wrench_cache_trace.is_some());
        assert_eq!(result.real_snapshots.len(), 6);
        assert_eq!(result.wrench_cache_snapshots.len(), 6);
    }

    #[test]
    fn exp1_runs_for_multiple_sizes() {
        let platform = scaled_platform(16.0 * GB);
        let results = run_exp1(&platform, &[1.0 * GB, 2.0 * GB]).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].file_size < results[1].file_size);
    }
}
