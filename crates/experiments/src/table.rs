//! Plain-text table formatting for the report binaries.
//!
//! The binaries print the same rows/series as the paper's tables and figures;
//! this module keeps the formatting consistent and testable.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same number of cells as the header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width does not match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a number of seconds with two decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.1}")
    }
}

/// Formats a byte count in GB with two decimals.
pub fn gb(v: f64) -> String {
    format!("{:.2}", v / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(&["phase", "real", "err %"]);
        t.add_row(vec!["Read 1".into(), "39.22".into(), "1.5".into()]);
        t.add_row(vec!["Write 10".into(), "7.1".into(), "320.0".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("phase"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("Read 1"));
        assert!(lines[3].contains("Write 10"));
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(pct(33.33), "33.3");
        assert_eq!(pct(f64::INFINITY), "inf");
        assert_eq!(gb(20e9), "20.00");
    }
}
