//! Micro-benchmarks of the core data structures: LRU list operations, the
//! I/O controller fast path, and the discrete-event engine.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use des::{SimTime, Simulation};
use pagecache::{EvictionPolicy, FileId, IoController, LruLists, MemoryManager, PageCacheConfig};
use storage_model::units::{GB, MB};
use storage_model::{DeviceSpec, Disk, MemoryDevice, SharedResource, SharingPolicy};

fn bench_lru_operations(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_lists");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &blocks in &[100usize, 1_000, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("add_and_read", blocks),
            &blocks,
            |b, &n| {
                b.iter(|| {
                    let mut lru = LruLists::new();
                    let file: FileId = "f".into();
                    for i in 0..n {
                        lru.add_clean(file.clone(), 1.0 * MB, SimTime::from_secs(i as f64));
                    }
                    lru.read_cached(&file, n as f64 * MB, SimTime::from_secs(n as f64));
                    lru.total_cached()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flush_and_evict", blocks),
            &blocks,
            |b, &n| {
                b.iter(|| {
                    let mut lru = LruLists::new();
                    for i in 0..n {
                        lru.add_dirty(
                            FileId::new(format!("f{}", i % 10)),
                            1.0 * MB,
                            SimTime::from_secs(i as f64),
                        );
                    }
                    lru.flush_lru(n as f64 * MB / 2.0, None);
                    lru.evict(n as f64 * MB / 4.0, None);
                    lru.block_count()
                })
            },
        );
    }
    group.finish();
}

/// Interleaved multi-file workload: blocks of many files alternate on the
/// lists, so per-file reads cannot rely on the target file's blocks being
/// contiguous. This is the access pattern of `nfs_cluster` and
/// `concurrent_instances`: with scan-based lists every `read_cached` walks
/// every block of every file, degrading toward O(n²); with per-file chains it
/// touches only the target file's blocks.
fn bench_lru_interleaved(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_lists");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &blocks in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("interleaved_files", blocks),
            &blocks,
            |b, &n| {
                let files: Vec<FileId> = (0..100).map(|i| FileId::new(format!("f{i}"))).collect();
                b.iter(|| {
                    let mut lru = LruLists::new();
                    // Round-robin adds: each file's blocks are maximally
                    // interleaved with every other file's.
                    for i in 0..n {
                        let file = files[i % files.len()].clone();
                        if i % 10 < 3 {
                            lru.add_dirty(file, 1.0 * MB, SimTime::from_secs(i as f64));
                        } else {
                            lru.add_clean(file, 1.0 * MB, SimTime::from_secs(i as f64));
                        }
                    }
                    // Read every file fully, then age out half of the dirty
                    // data and evict a quarter of the total.
                    let per_file = n as f64 / files.len() as f64 * MB;
                    for (k, file) in files.iter().enumerate() {
                        lru.read_cached(file, per_file, SimTime::from_secs((n + k) as f64));
                    }
                    lru.flush_lru(n as f64 * MB * 0.15, None);
                    lru.evict(n as f64 * MB / 4.0, None);
                    lru.total_cached()
                })
            },
        );
    }
    // Full-scale point for the ROADMAP's million-block north star: 1M blocks
    // over 1000 files, every file read back, then bulk flush + evict. Must
    // complete in well under a second per iteration on the arena
    // implementation (the scan-based lists needed minutes here).
    group.bench_with_input(
        BenchmarkId::new("million_blocks", 1_000_000usize),
        &1_000_000usize,
        |b, &n| {
            let files: Vec<FileId> = (0..1000).map(|i| FileId::new(format!("f{i}"))).collect();
            b.iter(|| {
                let mut lru = LruLists::new();
                for i in 0..n {
                    let file = files[i % files.len()].clone();
                    if i % 10 < 3 {
                        lru.add_dirty(file, 1.0 * MB, SimTime::from_secs(i as f64));
                    } else {
                        lru.add_clean(file, 1.0 * MB, SimTime::from_secs(i as f64));
                    }
                }
                let per_file = n as f64 / files.len() as f64 * MB;
                for (k, file) in files.iter().enumerate() {
                    lru.read_cached(file, per_file, SimTime::from_secs((n + k) as f64));
                }
                lru.flush_lru(n as f64 * MB * 0.15, None);
                lru.evict(n as f64 * MB / 4.0, None);
                lru.total_cached()
            })
        },
    );
    group.finish();
}

/// The interleaved multi-file workload under each replacement policy. The
/// mechanism (chains, aggregates, coalescing) is shared; only the tier
/// decisions differ, so every policy must stay within a small constant
/// factor of the default 2-list numbers.
fn bench_lru_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_lists");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let blocks = 10_000usize;
    for policy in EvictionPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new(format!("policy_{policy}"), blocks),
            &blocks,
            |b, &n| {
                let files: Vec<FileId> = (0..100).map(|i| FileId::new(format!("f{i}"))).collect();
                b.iter(|| {
                    let mut lru = LruLists::with_policy(policy);
                    for i in 0..n {
                        let file = files[i % files.len()].clone();
                        if i % 10 < 3 {
                            lru.add_dirty(file, 1.0 * MB, SimTime::from_secs(i as f64));
                        } else {
                            lru.add_clean(file, 1.0 * MB, SimTime::from_secs(i as f64));
                        }
                    }
                    let per_file = n as f64 / files.len() as f64 * MB;
                    for (k, file) in files.iter().enumerate() {
                        lru.read_cached(file, per_file, SimTime::from_secs((n + k) as f64));
                    }
                    lru.flush_lru(n as f64 * MB * 0.15, None);
                    lru.evict(n as f64 * MB / 4.0, None);
                    lru.total_cached()
                })
            },
        );
    }
    group.finish();
}

fn bench_shared_resource(c: &mut Criterion) {
    // 1k concurrent flows on one device: the fair-share model used to re-sync
    // every flow at every completion (O(n) per event, O(n^2) per run); the
    // heap-based algorithm advances only the completing flow.
    let mut group = c.benchmark_group("shared_resource");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let flows = 1_000usize;
    for (label, policy) in [
        ("fair_share", SharingPolicy::FairShare),
        ("unlimited", SharingPolicy::Unlimited),
    ] {
        group.bench_with_input(BenchmarkId::new(label, flows), &flows, |b, &n| {
            b.iter(|| {
                let sim = Simulation::new();
                let ctx = sim.context();
                let res = SharedResource::with_policy(&ctx, "dev", 1000.0 * MB, 0.0, policy);
                for i in 0..n {
                    let res = res.clone();
                    // Distinct sizes so completions are staggered events.
                    let bytes = 1.0 * MB + i as f64;
                    sim.spawn(async move { res.transfer(bytes).await });
                }
                sim.run().as_secs()
            })
        });
    }
    group.finish();
}

fn bench_io_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("io_controller");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &file_gb in &[1.0f64, 10.0] {
        group.bench_with_input(
            BenchmarkId::new("read_write_cycle", format!("{file_gb}GB")),
            &file_gb,
            |b, &file_gb| {
                b.iter(|| {
                    let sim = Simulation::new();
                    let ctx = sim.context();
                    let memory = MemoryDevice::new(
                        &ctx,
                        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
                    );
                    let disk = Disk::new(
                        &ctx,
                        "d",
                        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
                    );
                    let mm = MemoryManager::new(
                        &ctx,
                        PageCacheConfig::with_memory(32.0 * GB),
                        memory,
                        disk,
                    );
                    let io = IoController::new(&ctx, mm);
                    sim.spawn(async move {
                        io.write_file(&"out".into(), file_gb * GB).await;
                        io.read_file(&"out".into(), file_gb * GB).await;
                    });
                    sim.run().as_secs()
                })
            },
        );
    }
    group.finish();
}

fn bench_des_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &processes in &[10usize, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("sleep_storm", processes),
            &processes,
            |b, &n| {
                b.iter(|| {
                    let sim = Simulation::new();
                    for i in 0..n {
                        let ctx = sim.context();
                        sim.spawn(async move {
                            for k in 0..20u32 {
                                ctx.sleep(((i + k as usize) % 7 + 1) as f64).await;
                            }
                        });
                    }
                    sim.run().as_secs()
                })
            },
        );
    }
    group.finish();
}

/// Head-to-head of the engine's hierarchical timer wheel against the old
/// `BinaryHeap` scheduler on identical key streams.
///
/// `timer_wheel`/`heap_baseline` is the dense-timer workload: a standing
/// population of N concurrent sleepers where every fired timer immediately
/// re-arms (the traffic tier's sleep-storm shape), 10 events per sleeper.
/// The `*_cancel_churn` pair is the net tier's timeout/hedge shape: every
/// request arms a far-future timeout that is cancelled when the request
/// completes — the heap keeps the dead keys and pays O(log garbage) per
/// push; the wheel compacts them away.
fn bench_timer_schedulers(c: &mut Criterion) {
    use des::scheduler::{NaiveHeapScheduler, TimerId, TimerKey, TimerWheel};

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545f4914f6cdd1d)
        }
        fn delta(&mut self) -> f64 {
            // Re-arm intervals of 1–101 ms — the traffic tier's pacing and
            // think-time scale. 100k sleepers in a ~100 ms window is ~1
            // timer per wheel tick: the dense regime.
            (self.next() % 100_000) as f64 * 1e-6 + 1e-3
        }
    }

    let key = |time: f64, seq: u64| TimerKey {
        time: SimTime::from_secs(time),
        seq,
        id: TimerId::from_raw(seq),
    };

    let mut group = c.benchmark_group("des_engine");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Steady-state dense-timer throughput at a standing population of `n`
    // concurrent sleepers: every event pops the earliest timer and re-arms
    // one 1–101 ms out. `iter_batched` builds the populated scheduler
    // outside the timer so only the pop/re-arm regime is measured (the
    // heap's population build is a cache-hot O(1) tail push per timer and
    // would otherwise dilute the contrast at the big points, where events
    // are capped). The wheel's O(1) schedule/pop vs the heap's O(log n)
    // sift — every level a cache miss once the backing array outgrows the
    // LLC — makes the ratio grow with the population: ~3× at 10k sleepers,
    // ~4.5× at 100k–1M, ~7× at 4M.
    for &sleepers in &[10_000usize, 100_000, 1_000_000, 4_000_000] {
        let events = (sleepers * 10).min(2_000_000);
        group.bench_with_input(
            BenchmarkId::new("timer_wheel", sleepers),
            &sleepers,
            |b, &n| {
                b.iter_batched(
                    || {
                        let mut rng = Rng(0x1234_5678_9abc_def0);
                        let mut w = TimerWheel::new();
                        for seq in 0..n as u64 {
                            let d = rng.delta();
                            w.schedule(key(d, seq));
                        }
                        (w, rng, n as u64)
                    },
                    |(mut w, mut rng, mut seq)| {
                        let mut clock = 0.0f64;
                        for _ in 0..events {
                            let k = w.pop(|_| true).expect("population never drains");
                            clock = clock.max(k.time.as_secs());
                            let d = rng.delta();
                            w.schedule(key(clock + d, seq));
                            seq += 1;
                        }
                        clock
                    },
                    BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("heap_baseline", sleepers),
            &sleepers,
            |b, &n| {
                b.iter_batched(
                    || {
                        let mut rng = Rng(0x1234_5678_9abc_def0);
                        let mut h = NaiveHeapScheduler::new();
                        for seq in 0..n as u64 {
                            let d = rng.delta();
                            h.schedule(key(d, seq));
                        }
                        (h, rng, n as u64)
                    },
                    |(mut h, mut rng, mut seq)| {
                        let mut clock = 0.0f64;
                        for _ in 0..events {
                            let k = h.pop(|_| true).expect("population never drains");
                            clock = clock.max(k.time.as_secs());
                            let d = rng.delta();
                            h.schedule(key(clock + d, seq));
                            seq += 1;
                        }
                        clock
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }

    let churn_events = 100_000usize;
    group.bench_with_input(
        BenchmarkId::new("timer_wheel_cancel_churn", churn_events),
        &churn_events,
        |b, &events| {
            b.iter(|| {
                let mut rng = Rng(0x0bad_cafe_dead_beef);
                let mut w = TimerWheel::new();
                let mut dead = vec![false; 2 * events + 1];
                let mut clock = 0.0f64;
                for seq in 0..events as u64 {
                    // The request's completion timer fires...
                    w.schedule(key(clock + rng.delta() * 1e-3, 2 * seq));
                    // ...its timeout hedge never does.
                    w.schedule(key(clock + 30.0, 2 * seq + 1));
                    dead[2 * seq as usize + 1] = true;
                    w.note_cancel();
                    if w.should_compact() {
                        w.compact(|t| !dead[t.raw() as usize]);
                    }
                    let k = w.pop(|t| !dead[t.raw() as usize]).expect("live timer");
                    clock = clock.max(k.time.as_secs());
                }
                clock
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("heap_baseline_cancel_churn", churn_events),
        &churn_events,
        |b, &events| {
            b.iter(|| {
                let mut rng = Rng(0x0bad_cafe_dead_beef);
                let mut h = NaiveHeapScheduler::new();
                let mut dead = vec![false; 2 * events + 1];
                let mut clock = 0.0f64;
                for seq in 0..events as u64 {
                    h.schedule(key(clock + rng.delta() * 1e-3, 2 * seq));
                    h.schedule(key(clock + 30.0, 2 * seq + 1));
                    dead[2 * seq as usize + 1] = true;
                    h.note_cancel();
                    let k = h.pop(|t| !dead[t.raw() as usize]).expect("live timer");
                    clock = clock.max(k.time.as_secs());
                }
                clock
            })
        },
    );
    group.finish();
}

fn bench_traffic_generate(c: &mut Criterion) {
    use workflow::{
        run_scenario, ApplicationSpec, PlatformSpec, Scenario, SimulatorKind, TrafficSpec,
    };
    let mut group = c.benchmark_group("traffic");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &requests in &[200usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("generate", requests),
            &requests,
            |b, &requests| {
                let platform = PlatformSpec::uniform(
                    8.0 * GB,
                    DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
                    DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
                );
                b.iter(|| {
                    let spec = TrafficSpec::open("bench", 500.0, requests)
                        .with_catalog(64, 8.0 * MB)
                        .with_request_bytes(1.0 * MB)
                        .with_seed(7);
                    let scenario = Scenario::new(
                        platform.clone(),
                        ApplicationSpec::new("bench"),
                        SimulatorKind::PageCache,
                    )
                    .with_sample_interval(None)
                    .with_traffic(vec![spec]);
                    run_scenario(&scenario).unwrap().simulated_duration
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lru_operations,
    bench_lru_interleaved,
    bench_lru_policies,
    bench_shared_resource,
    bench_io_controller,
    bench_des_engine,
    bench_timer_schedulers,
    bench_traffic_generate
);
criterion_main!(benches);
