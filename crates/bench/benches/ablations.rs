//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! chunk size (block coalescing granularity), dirty ratio, and bandwidth
//! sharing policy. Each reports the simulated makespan alongside the cost of
//! simulating it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storage_model::units::{GB, MB};
use storage_model::DeviceSpec;
use workflow::{run_scenario, ApplicationSpec, PlatformSpec, Scenario, SimulatorKind};

fn base_platform() -> PlatformSpec {
    PlatformSpec::uniform(
        16.0 * GB,
        DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
        DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
    )
}

fn bench_chunk_size_ablation(c: &mut Criterion) {
    let app = ApplicationSpec::synthetic_pipeline(2.0 * GB);
    let mut group = c.benchmark_group("ablation_chunk_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &chunk_mb in &[10.0f64, 100.0, 500.0] {
        let platform = base_platform().with_chunk_size(chunk_mb * MB);
        let scenario = Scenario::new(platform, app.clone(), SimulatorKind::PageCache)
            .with_sample_interval(None);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{chunk_mb}MB")),
            &scenario,
            |b, s| b.iter(|| run_scenario(s).unwrap().mean_makespan()),
        );
    }
    group.finish();
}

fn bench_dirty_ratio_ablation(c: &mut Criterion) {
    let app = ApplicationSpec::synthetic_pipeline(4.0 * GB);
    let mut group = c.benchmark_group("ablation_dirty_ratio");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &ratio in &[0.1f64, 0.2, 0.4] {
        let platform = base_platform().with_dirty_ratio(ratio);
        let scenario = Scenario::new(platform, app.clone(), SimulatorKind::PageCache)
            .with_sample_interval(None);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("ratio_{ratio}")),
            &scenario,
            |b, s| b.iter(|| run_scenario(s).unwrap().mean_total_write_time()),
        );
    }
    group.finish();
}

fn bench_sharing_policy_ablation(c: &mut Criterion) {
    // Prototype (no bandwidth sharing) vs full model, 8 concurrent instances.
    let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
    let mut group = c.benchmark_group("ablation_sharing_policy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, kind) in [
        ("fair_share", SimulatorKind::PageCache),
        ("no_sharing", SimulatorKind::Prototype),
    ] {
        let scenario = Scenario::new(base_platform(), app.clone(), kind)
            .with_instances(8)
            .expect("at least one instance")
            .with_sample_interval(None);
        group.bench_with_input(BenchmarkId::from_parameter(label), &scenario, |b, s| {
            b.iter(|| run_scenario(s).unwrap().mean_total_read_time())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chunk_size_ablation,
    bench_dirty_ratio_ablation,
    bench_sharing_policy_ablation
);
criterion_main!(benches);
