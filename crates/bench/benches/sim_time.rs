//! Fig. 8 benchmark: wall-clock simulation time as a function of the number of
//! concurrent application instances, for the cacheless simulator and
//! WRENCH-cache, on local and NFS storage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::platform::paper_platform;
use storage_model::units::GB;
use workflow::{run_scenario, ApplicationSpec, Scenario, SimulatorKind};

fn bench_simulation_time(c: &mut Criterion) {
    let platform = paper_platform();
    let app = ApplicationSpec::synthetic_pipeline(3.0 * GB);
    let mut group = c.benchmark_group("fig8_simulation_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &instances in &[1usize, 8, 16, 32] {
        for (label, kind, nfs) in [
            ("wrench_local", SimulatorKind::Cacheless, false),
            ("wrench_nfs", SimulatorKind::Cacheless, true),
            ("wrench_cache_local", SimulatorKind::PageCache, false),
            ("wrench_cache_nfs", SimulatorKind::PageCache, true),
        ] {
            let platform = if nfs {
                platform.clone().with_nfs()
            } else {
                platform.clone()
            };
            let scenario = Scenario::new(platform, app.clone(), kind)
                .with_instances(instances)
                .expect("at least one instance")
                .with_sample_interval(None);
            group.bench_with_input(
                BenchmarkId::new(label, instances),
                &scenario,
                |b, scenario| b.iter(|| run_scenario(scenario).expect("scenario failed")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_time);
criterion_main!(benches);
