//! # `bench` — benchmark harness
//!
//! Criterion benchmarks for the simulator itself:
//!
//! * `sim_time` — regenerates Fig. 8 (simulation wall-clock time vs number of
//!   concurrent application instances, local and NFS, cacheless and cached);
//! * `pagecache_micro` — micro-benchmarks of the LRU list operations and the
//!   discrete-event engine;
//! * `ablations` — design-choice ablations called out in `DESIGN.md`
//!   (block coalescing via chunk size, dirty ratio, sharing policy).
//!
//! Run with `cargo bench -p bench`.
