//! # `workflow` — WRENCH-like application layer
//!
//! Describes platforms and workloads, and runs them against one of four
//! simulator back-ends:
//!
//! * **Cacheless** — every I/O hits the disk (the original WRENCH simulator
//!   the paper uses as its baseline);
//! * **Prototype** — the page cache model without bandwidth sharing (the
//!   paper's Python prototype);
//! * **PageCache** — the full WRENCH-cache model on shared devices;
//! * **KernelEmu** — the page-granularity kernel emulator with measured
//!   bandwidths, standing in for the real cluster.
//!
//! The [`net`] module adds a distributed tier on top: a simulated link
//! fabric with partitions and a replicated storage fleet
//! ([`PlatformSpec::with_fleet`]) whose clients ride out faults with
//! timeouts, backoff retries, hedged reads, and failover.
//!
//! All back-ends live behind the [`IoBackend`] trait, whose primitives are
//! **offset-granular**: `read_range`, `write_range`, `fsync`, `sync`.
//! Whole-file operations are corollaries (`read_file ≡ read_range(0, size)`),
//! not primitives.
//!
//! ## Workload programs
//!
//! A task is a **program** of [`Op`] instructions — range reads and writes,
//! compute phases, `fsync`/`sync`, memory releases, [`Op::Repeat`] loops —
//! so workloads well beyond whole-file read→compute→write pipelines (small
//! interleaved writes with fsyncs, random partial re-reads, scan-then-reread
//! mixes) are expressible directly:
//!
//! ```
//! use storage_model::{DeviceSpec, units::{GB, MB}};
//! use workflow::{ApplicationSpec, Op, PlatformSpec, Scenario, SimulatorKind, TaskSpec,
//!                run_scenario};
//!
//! let platform = PlatformSpec::uniform(
//!     8.0 * GB,
//!     DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
//!     DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
//! );
//! // A database-style commit loop: rewrite a record, fsync it, think.
//! let app = ApplicationSpec::new("db").with_task(TaskSpec::program(
//!     "commits",
//!     vec![Op::repeat(8, vec![
//!         Op::write_range("table", 0.0, 16.0 * MB),
//!         Op::fsync("table"),
//!         Op::compute(0.1),
//!     ])],
//! ));
//! let report = run_scenario(&Scenario::new(platform, app, SimulatorKind::PageCache)).unwrap();
//! assert!(report.instance_reports[0].tasks[0].write_stats.bytes_to_disk > 100.0 * MB);
//! ```
//!
//! The classic builder API still works unchanged and **lowers** to a program
//! (see [`TaskSpec::lower`]), with identical simulated behaviour:
//!
//! ```
//! use storage_model::{DeviceSpec, units::{GB, MB}};
//! use workflow::{ApplicationSpec, PlatformSpec, Scenario, SimulatorKind, run_scenario};
//!
//! let platform = PlatformSpec::uniform(
//!     8.0 * GB,
//!     DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
//!     DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
//! );
//! let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
//! let report = run_scenario(&Scenario::new(platform, app, SimulatorKind::PageCache)).unwrap();
//! assert_eq!(report.instance_reports.len(), 1);
//! ```
//!
//! ## Migrating from the whole-file API
//!
//! | old builder call | lowered program |
//! |---|---|
//! | `.reads(FileSpec::new("in", s))` | `Op::Read {{ file: "in", offset: 0, len: ∞ }}` |
//! | `.writes(FileSpec::new("out", s))` | `Op::Write {{ file: "out", offset: 0, len: s }}` |
//! | `TaskSpec::new(name, cpu)` | `Op::Compute(cpu)` between the reads and writes |
//! | `release_memory_after: true` | trailing `Op::ReleaseMemory(input_bytes)` |
//! | *(implicit phase sampling)* | `Op::Sample` / `Op::Snapshot("Read i")` at phase ends |

#![warn(missing_docs)]

mod backend;
pub mod faults;
pub mod net;
mod platform;
mod report;
mod runner;
mod spec;
pub mod traffic;

pub use backend::{Backend, DirectNfs, IoBackend, ScenarioError, SimulatorKind};
pub use faults::{
    CrashReport, ErrorMode, FaultEvent, FaultPlan, FileDurability, InjectedFault,
    InjectedFaultKind, IoErrorSpec, OpClass, RetryPolicy, Trigger,
};
pub use net::{ClientNetStats, ClientPolicy, Fabric, FleetClient, FleetSpec, NetError, NetReport};
pub use pagecache::EvictionPolicy;
pub use platform::{DeviceSet, PlatformSpec, StorageKind};
pub use report::{
    absolute_relative_error_pct, InstanceReport, RunStats, ScenarioReport, TaskReport, TaskStatus,
    WritebackCounters,
};
pub use runner::{run_scenario, scoped_file, Scenario};
pub use spec::{
    flatten_program, ApplicationSpec, FileSpec, Op, ProgramError, TaskSpec, MAX_PROGRAM_OPS,
    MAX_REPEAT_DEPTH,
};
pub use traffic::{
    LatencyHistogram, LatencySummary, LoopMode, TenantSpec, TrafficGenReport, TrafficReport,
    TrafficSpec, ZipfSampler,
};
