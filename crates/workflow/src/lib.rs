//! # `workflow` — WRENCH-like application layer
//!
//! Describes platforms and applications, and runs them against one of four
//! simulator back-ends:
//!
//! * **Cacheless** — every I/O hits the disk (the original WRENCH simulator
//!   the paper uses as its baseline);
//! * **Prototype** — the page cache model without bandwidth sharing (the
//!   paper's Python prototype);
//! * **PageCache** — the full WRENCH-cache model on shared devices;
//! * **KernelEmu** — the page-granularity kernel emulator with measured
//!   bandwidths, standing in for the real cluster.
//!
//! ```
//! use storage_model::{DeviceSpec, units::{GB, MB}};
//! use workflow::{ApplicationSpec, PlatformSpec, Scenario, SimulatorKind, run_scenario};
//!
//! let platform = PlatformSpec::uniform(
//!     8.0 * GB,
//!     DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
//!     DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
//! );
//! let app = ApplicationSpec::synthetic_pipeline(1.0 * GB);
//! let report = run_scenario(&Scenario::new(platform, app, SimulatorKind::PageCache)).unwrap();
//! assert_eq!(report.instance_reports.len(), 1);
//! ```

#![warn(missing_docs)]

mod backend;
mod platform;
mod report;
mod runner;
mod spec;

pub use backend::{Backend, ScenarioError, SimulatorKind};
pub use platform::{DeviceSet, PlatformSpec, StorageKind};
pub use report::{
    absolute_relative_error_pct, InstanceReport, RunStats, ScenarioReport, TaskReport,
    WritebackCounters,
};
pub use runner::{run_scenario, scoped_file, Scenario};
pub use spec::{ApplicationSpec, FileSpec, TaskSpec};
