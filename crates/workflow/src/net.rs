//! Fault-tolerant network tier: a simulated link fabric plus a replicated
//! storage fleet.
//!
//! This module generalises the single-link NFS model to a *fabric* of named
//! hosts and shared links, and builds on it a **replicated storage fleet**:
//! `N` client hosts (each with a private page cache) talking to `M` storage
//! servers (each with its own write-back page cache and disk), with files
//! placed on `R` replicas by a stable hash of the file name.
//!
//! ## Topology
//!
//! The fleet uses a star topology: each server owns one ingress link
//! (modelling its NIC as the shared bottleneck) and every client routes to
//! the server through that link, so concurrent requests from many clients to
//! one server share its bandwidth fairly ([`storage_model::SharedResource`])
//! and pay the link latency per transfer. The legacy one-client/one-server
//! NFS back-end is re-expressed as a degenerate fabric (one host pair, one
//! link) and produces bit-identical predictions.
//!
//! ## Faults
//!
//! The fabric exposes the mutations the fault plan drives
//! ([`crate::faults::FaultEvent::LinkDown`],
//! [`crate::faults::FaultEvent::Partition`],
//! [`crate::faults::FaultEvent::ServerCrash`]): links can be taken down (and
//! back up — takedowns nest), hosts can be partitioned into groups that
//! cannot reach each other, and whole hosts can be marked down. Each
//! mutation aborts matching in-flight transfers immediately; later attempts
//! fail fast with a structured [`NetError`].
//!
//! ## Client robustness
//!
//! Clients run a [`ClientPolicy`]: per-request timeouts, exponential backoff
//! retries (reusing [`RetryPolicy`]), optional hedged reads, and read
//! failover across the replica ring. When the policy is exhausted the
//! operation fails *degraded* — surfaced as an injected
//! [`crate::faults::InjectedFaultKind::Network`] fault the runner records as
//! a failed task — rather than hanging or panicking. Writes go to every
//! replica (primary first); a write succeeds if at least one replica accepts
//! it, and replicas that missed it serve *stale* reads (counted in
//! [`NetReport`]) until they catch up via a later write.
//!
//! Consistency is close-to-open-flavoured: a successful write invalidates
//! the writer's own read cache, and every read is tagged with the version of
//! the replica that served it; serving a version older than the latest
//! successful write counts as a stale read.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::future::Future;
use std::rc::Rc;

use des::{select2, Either, SimContext};
use pagecache::{
    clamp_io_range, FileId, IoController, IoOpStats, MemoryManager, MemorySample, PageCacheConfig,
    EPSILON,
};
use simfs::{CachedFileSystem, FileRegistry, FsError};
use storage_model::{AbortHandle, Disk, MemoryDevice, SharedResource, TransferOutcome};

use crate::backend::{IoBackend, ScenarioError};
use crate::faults::{
    CrashReport, FileDurability, InjectedFault, InjectedFaultKind, OpClass, RetryPolicy,
};
use crate::platform::{DeviceSet, PlatformSpec};
use crate::report::WritebackCounters;

/// Why a network operation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The named link is down.
    LinkDown(String),
    /// Source and destination are in different partition groups.
    Partitioned,
    /// The named host is down (crashed or severed by a fault).
    HostDown(String),
    /// No route exists between the two hosts.
    NoRoute {
        /// Source host.
        from: String,
        /// Destination host.
        to: String,
    },
    /// The request exceeded the client's per-request timeout.
    TimedOut {
        /// The timeout that fired, in seconds.
        after: f64,
    },
    /// The server could not serve the request (missing replica or a
    /// server-side filesystem error such as a full disk).
    ServerUnavailable(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::LinkDown(link) => write!(f, "link '{link}' is down"),
            NetError::Partitioned => write!(f, "hosts are in different network partitions"),
            NetError::HostDown(host) => write!(f, "host '{host}' is down"),
            NetError::NoRoute { from, to } => write!(f, "no route from '{from}' to '{to}'"),
            NetError::TimedOut { after } => write!(f, "request timed out after {after} s"),
            NetError::ServerUnavailable(host) => {
                write!(f, "server '{host}' could not serve the request")
            }
        }
    }
}

impl std::error::Error for NetError {}

struct LinkState {
    channel: SharedResource,
    /// Nesting depth of `set_link_down` calls; the link carries traffic only
    /// at depth zero.
    down: Cell<u32>,
}

struct InflightEntry {
    link: String,
    from: String,
    to: String,
    handle: AbortHandle,
}

struct FabricInner {
    ctx: SimContext,
    hosts: RefCell<BTreeSet<String>>,
    links: RefCell<BTreeMap<String, LinkState>>,
    /// `(from, to) -> link` — both directions are inserted by `add_route`.
    routes: RefCell<BTreeMap<(String, String), String>>,
    partitions: RefCell<Vec<(u64, Vec<Vec<String>>)>>,
    down_hosts: RefCell<BTreeSet<String>>,
    inflight: RefCell<BTreeMap<u64, InflightEntry>>,
    next_id: Cell<u64>,
}

/// Removes the in-flight bookkeeping entry even when the transfer future is
/// dropped mid-flight (timed-out or hedged-away requests).
struct InflightGuard {
    fabric: Rc<FabricInner>,
    id: u64,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.fabric.inflight.borrow_mut().remove(&self.id);
    }
}

/// A simulated network fabric: named hosts, shared links (fair bandwidth
/// sharing plus per-link latency), and a routing table. Cloning shares the
/// fabric.
#[derive(Clone)]
pub struct Fabric {
    inner: Rc<FabricInner>,
}

impl Fabric {
    /// Creates an empty fabric.
    pub fn new(ctx: &SimContext) -> Self {
        Fabric {
            inner: Rc::new(FabricInner {
                ctx: ctx.clone(),
                hosts: RefCell::new(BTreeSet::new()),
                links: RefCell::new(BTreeMap::new()),
                routes: RefCell::new(BTreeMap::new()),
                partitions: RefCell::new(Vec::new()),
                down_hosts: RefCell::new(BTreeSet::new()),
                inflight: RefCell::new(BTreeMap::new()),
                next_id: Cell::new(0),
            }),
        }
    }

    /// Registers a host.
    pub fn add_host(&self, name: impl Into<String>) {
        self.inner.hosts.borrow_mut().insert(name.into());
    }

    /// Registers a shared link with the given bandwidth (bytes/s) and
    /// latency (s).
    pub fn add_link(&self, name: impl Into<String>, bandwidth: f64, latency: f64) {
        let name = name.into();
        let channel = SharedResource::new(&self.inner.ctx, name.clone(), bandwidth, latency);
        self.inner.links.borrow_mut().insert(
            name,
            LinkState {
                channel,
                down: Cell::new(0),
            },
        );
    }

    /// Routes traffic between two hosts (both directions) over a link.
    ///
    /// # Panics
    /// Panics if either host or the link has not been registered — routes
    /// are simulation configuration, so a dangling name is a programming
    /// error.
    pub fn add_route(&self, a: impl Into<String>, b: impl Into<String>, link: impl Into<String>) {
        let (a, b, link) = (a.into(), b.into(), link.into());
        {
            let hosts = self.inner.hosts.borrow();
            assert!(hosts.contains(&a), "unknown host '{a}'");
            assert!(hosts.contains(&b), "unknown host '{b}'");
        }
        assert!(
            self.inner.links.borrow().contains_key(&link),
            "unknown link '{link}'"
        );
        let mut routes = self.inner.routes.borrow_mut();
        routes.insert((a.clone(), b.clone()), link.clone());
        routes.insert((b, a), link);
    }

    /// The shared channel behind a link, if registered. Lets other models
    /// (e.g. the degenerate single-link NFS back-end) reuse a fabric-owned
    /// link directly.
    pub fn link_channel(&self, name: &str) -> Option<SharedResource> {
        self.inner
            .links
            .borrow()
            .get(name)
            .map(|l| l.channel.clone())
    }

    /// Checks whether `from` can currently reach `to`, returning the link
    /// that would carry the traffic.
    pub fn check_path(&self, from: &str, to: &str) -> Result<String, NetError> {
        {
            let down = self.inner.down_hosts.borrow();
            if down.contains(from) {
                return Err(NetError::HostDown(from.to_string()));
            }
            if down.contains(to) {
                return Err(NetError::HostDown(to.to_string()));
            }
        }
        for (_, groups) in self.inner.partitions.borrow().iter() {
            let side = |host: &str| groups.iter().position(|g| g.iter().any(|h| h == host));
            if let (Some(a), Some(b)) = (side(from), side(to)) {
                if a != b {
                    return Err(NetError::Partitioned);
                }
            }
        }
        let link = self
            .inner
            .routes
            .borrow()
            .get(&(from.to_string(), to.to_string()))
            .cloned()
            .ok_or_else(|| NetError::NoRoute {
                from: from.to_string(),
                to: to.to_string(),
            })?;
        if self.inner.links.borrow()[&link].down.get() > 0 {
            return Err(NetError::LinkDown(link));
        }
        Ok(link)
    }

    /// Transfers `bytes` from `from` to `to`. Fails fast if no path exists,
    /// and fails mid-flight (with the then-current path error) if a fault
    /// takes the link or either host down while the transfer is running.
    pub async fn transfer(&self, from: &str, to: &str, bytes: f64) -> Result<(), NetError> {
        let link = self.check_path(from, to)?;
        let channel = self.inner.links.borrow()[&link].channel.clone();
        let (fut, handle) = channel.transfer_abortable(bytes);
        let id = self.inner.next_id.get();
        self.inner.next_id.set(id + 1);
        self.inner.inflight.borrow_mut().insert(
            id,
            InflightEntry {
                link: link.clone(),
                from: from.to_string(),
                to: to.to_string(),
                handle,
            },
        );
        let _guard = InflightGuard {
            fabric: Rc::clone(&self.inner),
            id,
        };
        match fut.await {
            TransferOutcome::Completed => Ok(()),
            TransferOutcome::Aborted => Err(self
                .check_path(from, to)
                .err()
                .unwrap_or(NetError::LinkDown(link))),
        }
    }

    /// Takes a link down, aborting its in-flight transfers. Takedowns nest:
    /// the link carries traffic again once `set_link_up` has been called as
    /// many times. Returns `false` if the link is unknown.
    pub fn set_link_down(&self, link: &str) -> bool {
        let found = match self.inner.links.borrow().get(link) {
            Some(state) => {
                state.down.set(state.down.get() + 1);
                true
            }
            None => return false,
        };
        self.abort_where(|e| e.link == link);
        found
    }

    /// Brings a link back up (one nesting level). Returns `false` if the
    /// link is unknown.
    pub fn set_link_up(&self, link: &str) -> bool {
        match self.inner.links.borrow().get(link) {
            Some(state) => {
                state.down.set(state.down.get().saturating_sub(1));
                true
            }
            None => false,
        }
    }

    /// Applies a partition: hosts in *different* listed groups cannot reach
    /// each other; hosts not listed in any group are unaffected. Returns an
    /// id for [`Fabric::heal_partition`]. Several partitions may be active
    /// at once; a path is cut if any active partition cuts it.
    pub fn apply_partition(&self, groups: Vec<Vec<String>>) -> u64 {
        let id = self.inner.next_id.get();
        self.inner.next_id.set(id + 1);
        self.inner.partitions.borrow_mut().push((id, groups));
        self.abort_where(|e| self.check_path(&e.from, &e.to).is_err());
        id
    }

    /// Heals a partition previously applied. Returns `false` if the id is
    /// unknown (already healed).
    pub fn heal_partition(&self, id: u64) -> bool {
        let mut partitions = self.inner.partitions.borrow_mut();
        let before = partitions.len();
        partitions.retain(|(pid, _)| *pid != id);
        partitions.len() != before
    }

    /// Marks a host down, aborting in-flight transfers touching it.
    pub fn set_host_down(&self, host: &str) {
        self.inner.down_hosts.borrow_mut().insert(host.to_string());
        self.abort_where(|e| e.from == host || e.to == host);
    }

    /// Brings a host back up.
    pub fn set_host_up(&self, host: &str) {
        self.inner.down_hosts.borrow_mut().remove(host);
    }

    fn abort_where(&self, pred: impl Fn(&InflightEntry) -> bool) {
        let handles: Vec<AbortHandle> = self
            .inner
            .inflight
            .borrow()
            .values()
            .filter(|e| pred(e))
            .map(|e| e.handle.clone())
            .collect();
        for handle in handles {
            handle.abort();
        }
    }
}

/// How a fleet client behaves when the network or a server misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientPolicy {
    /// Per-request timeout in seconds (`f64::INFINITY` disables timeouts).
    pub timeout: f64,
    /// Backoff policy for retrying failed requests.
    pub retry: RetryPolicy,
    /// If set, a read not answered within this many seconds is *hedged*: a
    /// second copy of the request is sent to the next replica and the first
    /// answer wins.
    pub hedge_delay: Option<f64>,
    /// Whether retried reads fail over to the other replicas (round-robin
    /// over the replica ring) instead of hammering the primary.
    pub failover: bool,
}

impl Default for ClientPolicy {
    fn default() -> Self {
        ClientPolicy {
            timeout: f64::INFINITY,
            retry: RetryPolicy::new(3, 0.2),
            hedge_delay: None,
            failover: true,
        }
    }
}

impl ClientPolicy {
    /// Overrides the per-request timeout.
    pub fn with_timeout(mut self, timeout: f64) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables hedged reads after `delay` seconds.
    pub fn with_hedge(mut self, delay: f64) -> Self {
        self.hedge_delay = Some(delay);
        self
    }

    /// Enables or disables read failover.
    pub fn with_failover(mut self, failover: bool) -> Self {
        self.failover = failover;
        self
    }

    /// Validates the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.timeout.is_nan() || self.timeout <= 0.0 {
            return Err("client timeout must be positive (or infinite)".to_string());
        }
        if let Some(delay) = self.hedge_delay {
            if !delay.is_finite() || delay <= 0.0 {
                return Err("hedge delay must be finite and positive".to_string());
            }
        }
        if self.retry.max_attempts == 0 {
            return Err("client retry policy needs at least one attempt".to_string());
        }
        Ok(())
    }
}

/// Shape of a replicated storage fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Number of client hosts (application instances are spread over them
    /// round-robin).
    pub clients: usize,
    /// Number of storage servers.
    pub servers: usize,
    /// Number of replicas per file (`1..=servers`).
    pub replication: usize,
    /// Client robustness policy.
    pub policy: ClientPolicy,
}

impl FleetSpec {
    /// A fleet of `clients` clients and `servers` servers with `replication`
    /// replicas per file and the default policy.
    pub fn new(clients: usize, servers: usize, replication: usize) -> Self {
        FleetSpec {
            clients,
            servers,
            replication,
            policy: ClientPolicy::default(),
        }
    }

    /// Overrides the client policy.
    pub fn with_policy(mut self, policy: ClientPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Validates the fleet shape.
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("fleet needs at least one client host".to_string());
        }
        if self.servers == 0 {
            return Err("fleet needs at least one storage server".to_string());
        }
        if self.replication == 0 || self.replication > self.servers {
            return Err(format!(
                "replication factor must be in 1..={} (got {})",
                self.servers, self.replication
            ));
        }
        self.policy.validate()
    }
}

/// Canonical host name of fleet client `i` (`client00`, `client01`, …).
pub fn client_host(i: usize) -> String {
    format!("client{i:02}")
}

/// Canonical host name of fleet server `i` (`server00`, `server01`, …).
pub fn server_host(i: usize) -> String {
    format!("server{i:02}")
}

/// Canonical name of the ingress link of fleet server `i`.
pub fn server_link(i: usize) -> String {
    format!("link-server{i:02}")
}

/// Index of the primary server a file name places on, for a fleet of
/// `servers` servers. Scenario authors use this to aim a fault (e.g. a
/// [`crate::FaultEvent::ServerCrash`]) at the primary of a known file.
pub fn primary_server(servers: usize, name: &str) -> usize {
    assert!(servers > 0, "a fleet needs at least one server");
    (placement_hash(name) as usize) % servers
}

/// FNV-1a hash of a file name — the stable placement function.
fn placement_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Network-tier statistics of a fleet run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetReport {
    /// Reads served by a replica that had not seen the latest successful
    /// write of the file (at most one per read operation).
    pub stale_reads: f64,
    /// Reads won by the hedged (second) request.
    pub hedged_reads: f64,
    /// Reads that exhausted the robustness policy and failed degraded.
    pub failed_reads: f64,
    /// Per-replica writes that exhausted the retry budget (the write as a
    /// whole still succeeds if at least one replica accepted it).
    pub failed_writes: f64,
    /// Network-level retries (after timeouts, link/partition errors, …).
    pub net_retries: f64,
    /// Reads answered by a replica other than the file's primary.
    pub failovers: f64,
    /// Per-client degraded and stale read counts.
    pub per_client: Vec<ClientNetStats>,
    /// Durability report of each crashed server, in crash order.
    pub server_crashes: Vec<(String, CrashReport)>,
}

/// Per-client network statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientNetStats {
    /// Host name of the client.
    pub host: String,
    /// Reads that failed degraded on this client.
    pub degraded_reads: f64,
    /// Stale reads observed by this client.
    pub stale_reads: f64,
}

struct ServerNode {
    host: String,
    link: String,
    fs: CachedFileSystem,
    alive: Cell<bool>,
}

struct ClientNode {
    host: String,
    mm: MemoryManager,
    /// Version of each file the client's read cache holds.
    versions: RefCell<BTreeMap<FileId, u64>>,
    degraded_reads: Cell<u64>,
    stale_reads: Cell<u64>,
}

#[derive(Default)]
struct NetCounters {
    stale_reads: Cell<u64>,
    hedged_reads: Cell<u64>,
    failed_reads: Cell<u64>,
    failed_writes: Cell<u64>,
    net_retries: Cell<u64>,
    failovers: Cell<u64>,
}

fn bump(counter: &Cell<u64>) {
    counter.set(counter.get() + 1);
}

struct Fetched {
    server: usize,
    from_disk: f64,
    from_server_cache: f64,
}

struct FleetInner {
    ctx: SimContext,
    spec: FleetSpec,
    chunk_size: f64,
    fabric: Fabric,
    servers: Vec<ServerNode>,
    clients: Vec<ClientNode>,
    /// Fleet-level file registry (authoritative sizes).
    registry: FileRegistry,
    /// Latest successfully written version of each file.
    versions: RefCell<BTreeMap<FileId, u64>>,
    /// Version each replica has of each file.
    server_versions: RefCell<BTreeMap<(usize, FileId), u64>>,
    counters: NetCounters,
    crashes: RefCell<Vec<(String, CrashReport)>>,
}

impl FleetInner {
    fn replicas_of(&self, file: &FileId) -> Vec<usize> {
        let m = self.servers.len();
        let primary = (placement_hash(&file.to_string()) as usize) % m;
        (0..self.spec.replication)
            .map(|k| (primary + k) % m)
            .collect()
    }

    fn version(&self, file: &FileId) -> u64 {
        self.versions.borrow().get(file).copied().unwrap_or(0)
    }

    fn server_version(&self, server: usize, file: &FileId) -> u64 {
        self.server_versions
            .borrow()
            .get(&(server, file.clone()))
            .copied()
            .unwrap_or(0)
    }

    /// Serves `amount` bytes of a read on a server: server-cached data comes
    /// from its memory, the rest from its disk (entering the server cache).
    /// Mirrors [`simfs::NfsServer::serve_read`]; it deliberately bypasses
    /// the server's [`IoController`] so no *anonymous* memory is consumed on
    /// the server (the data's destination is the client).
    async fn serve_read(
        &self,
        server: usize,
        file: &FileId,
        amount: f64,
    ) -> Result<Fetched, NetError> {
        let node = &self.servers[server];
        let size = node
            .fs
            .registry()
            .size(file)
            .map_err(|_| NetError::ServerUnavailable(node.host.clone()))?;
        let amount = amount.min(size);
        if amount <= EPSILON {
            return Ok(Fetched {
                server,
                from_disk: 0.0,
                from_server_cache: 0.0,
            });
        }
        let mm = node.fs.memory_manager();
        let cached = mm.cached_amount(file);
        let uncached = (size - cached).max(0.0);
        let from_disk = amount.min(uncached);
        let from_cache = amount - from_disk;
        if from_disk > EPSILON {
            mm.evict(from_disk - mm.free_memory(), Some(file));
            let still_missing = from_disk - mm.free_memory();
            if still_missing > EPSILON {
                mm.evict(still_missing, None);
            }
            node.fs.disk().read(from_disk).await;
            mm.add_to_cache(file, from_disk);
        }
        if from_cache > EPSILON {
            mm.read_from_cache(file, from_cache).await;
        }
        Ok(Fetched {
            server,
            from_disk,
            from_server_cache: from_cache,
        })
    }

    /// One read request to one server: path check, server-side read, then
    /// the transfer back to the client over the server's ingress link.
    async fn fetch_once(
        &self,
        client: usize,
        server: usize,
        file: &FileId,
        amount: f64,
    ) -> Result<Fetched, NetError> {
        let node = &self.servers[server];
        if !node.alive.get() {
            return Err(NetError::HostDown(node.host.clone()));
        }
        let client_host = &self.clients[client].host;
        self.fabric.check_path(client_host, &node.host)?;
        let fetched = self.serve_read(server, file, amount).await?;
        self.fabric
            .transfer(&node.host, client_host, amount)
            .await?;
        Ok(fetched)
    }

    /// Wraps a request in the policy's per-request timeout. Dropping the
    /// inner future on timeout is safe: in-flight link transfers are
    /// force-drained and timers are cancelled.
    async fn with_timeout<T>(
        &self,
        fut: impl Future<Output = Result<T, NetError>>,
        timeout: f64,
    ) -> Result<T, NetError> {
        if timeout.is_finite() {
            match select2(fut, self.ctx.sleep(timeout)).await {
                Either::Left(result) => result,
                Either::Right(()) => Err(NetError::TimedOut { after: timeout }),
            }
        } else {
            fut.await
        }
    }

    /// A read request under the full robustness policy: timeout, hedging,
    /// backoff retries, and failover across the replica ring.
    async fn robust_fetch(
        &self,
        client: usize,
        candidates: &[usize],
        file: &FileId,
        amount: f64,
    ) -> Result<Fetched, NetError> {
        let policy = self.spec.policy;
        let targets = if policy.failover {
            candidates
        } else {
            &candidates[..1]
        };
        let mut attempt: u32 = 1;
        loop {
            let slot = (attempt - 1) as usize % targets.len();
            let target = targets[slot];
            let hedge = match policy.hedge_delay {
                Some(delay) if targets.len() > 1 => {
                    Some((delay, targets[(slot + 1) % targets.len()]))
                }
                _ => None,
            };
            let outcome = match hedge {
                None => {
                    self.with_timeout(
                        self.fetch_once(client, target, file, amount),
                        policy.timeout,
                    )
                    .await
                }
                Some((delay, alt)) => {
                    let primary = self.fetch_once(client, target, file, amount);
                    let hedged = async {
                        self.ctx.sleep(delay).await;
                        self.fetch_once(client, alt, file, amount).await
                    };
                    let race = async {
                        match select2(primary, hedged).await {
                            Either::Left(result) => result,
                            Either::Right(result) => {
                                if result.is_ok() {
                                    bump(&self.counters.hedged_reads);
                                }
                                result
                            }
                        }
                    };
                    self.with_timeout(race, policy.timeout).await
                }
            };
            match outcome {
                Ok(fetched) => {
                    if fetched.server != candidates[0] {
                        bump(&self.counters.failovers);
                    }
                    return Ok(fetched);
                }
                Err(error) => {
                    if attempt >= policy.retry.max_attempts {
                        return Err(error);
                    }
                    bump(&self.counters.net_retries);
                    let delay = policy.retry.delay(attempt);
                    if delay > 0.0 {
                        self.ctx.sleep(delay).await;
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// One write request to one replica: ship each chunk over the fabric,
    /// then write it into the server's (write-back) page cache. A server
    /// crash mid-operation is noticed at the next chunk boundary.
    async fn write_once(
        &self,
        client: usize,
        server: usize,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, NetError> {
        let node = &self.servers[server];
        let client_host = &self.clients[client].host;
        let mut stats = IoOpStats::default();
        let mut cursor = offset;
        let mut remaining = len;
        loop {
            if !node.alive.get() {
                return Err(NetError::HostDown(node.host.clone()));
            }
            self.fabric.check_path(client_host, &node.host)?;
            // A zero-length write still creates/extends the replica file.
            let chunk = remaining.min(self.chunk_size);
            if chunk > EPSILON {
                self.fabric.transfer(client_host, &node.host, chunk).await?;
            }
            let st = node
                .fs
                .write_range(file, cursor, chunk.max(0.0))
                .await
                .map_err(|_| NetError::ServerUnavailable(node.host.clone()))?;
            stats.bytes_to_cache += st.bytes_to_cache;
            stats.bytes_to_disk += st.bytes_to_disk;
            stats.throttle_stall += st.throttle_stall;
            cursor += chunk;
            remaining -= chunk;
            if remaining <= EPSILON {
                return Ok(stats);
            }
        }
    }

    /// A per-replica write under timeout + backoff retries (no failover: the
    /// replica set is fixed; the caller iterates over it).
    async fn robust_write(
        &self,
        client: usize,
        server: usize,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, NetError> {
        let policy = self.spec.policy;
        let mut attempt: u32 = 1;
        loop {
            let outcome = self
                .with_timeout(
                    self.write_once(client, server, file, offset, len),
                    policy.timeout,
                )
                .await;
            match outcome {
                Ok(stats) => return Ok(stats),
                Err(error) => {
                    if attempt >= policy.retry.max_attempts {
                        return Err(error);
                    }
                    bump(&self.counters.net_retries);
                    let delay = policy.retry.delay(attempt);
                    if delay > 0.0 {
                        self.ctx.sleep(delay).await;
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Durability of one server's files at this instant (discarding its
    /// dirty cached data), in the same leading-span approximation as the
    /// local back-ends.
    fn crash_one(&self, server: usize) -> CrashReport {
        let node = &self.servers[server];
        let lost: BTreeMap<_, _> = node
            .fs
            .memory_manager()
            .crash_discard()
            .into_iter()
            .collect();
        CrashReport {
            files: node
                .fs
                .registry()
                .list()
                .into_iter()
                .map(|(file, size)| {
                    let dirty = lost.get(&file).copied().unwrap_or(0.0);
                    (file, FileDurability::from_dirty_amount(size, dirty))
                })
                .collect(),
        }
    }

    fn injected(&self, op: OpClass, file: &FileId) -> ScenarioError {
        ScenarioError::Injected(InjectedFault {
            kind: InjectedFaultKind::Network,
            op,
            file: Some(file.clone()),
            at: self.ctx.now().as_secs(),
            transient: false,
        })
    }
}

/// One client's view of a replicated storage fleet. Implements
/// [`IoBackend`]; cloning shares the fleet, and [`FleetClient::for_client`]
/// re-homes the view onto another client host.
#[derive(Clone)]
pub struct FleetClient {
    inner: Rc<FleetInner>,
    client: usize,
}

impl FleetClient {
    /// Builds a fleet for a platform: `spec.servers` storage servers (each
    /// with a write-back page cache of `platform.server_memory` and a
    /// `devices.remote_disk` disk behind its own ingress link) and
    /// `spec.clients` client hosts (each with a private read cache of
    /// `platform.host_memory`). Returns the view of client 0.
    pub fn build(
        ctx: &SimContext,
        platform: &PlatformSpec,
        devices: &DeviceSet,
        spec: &FleetSpec,
    ) -> Result<FleetClient, ScenarioError> {
        spec.validate().map_err(ScenarioError::InvalidPlatform)?;
        let cache_config = |total: f64| {
            PageCacheConfig::with_memory(total)
                .with_dirty_ratio(platform.dirty_ratio)
                .with_dirty_expire(platform.dirty_expire)
                .with_flush_interval(platform.flush_interval)
                .with_eviction_policy(platform.eviction_policy)
        };
        let fabric = Fabric::new(ctx);
        let mut servers = Vec::with_capacity(spec.servers);
        for i in 0..spec.servers {
            let host = server_host(i);
            let link = server_link(i);
            fabric.add_host(&host);
            fabric.add_link(&link, devices.network_bandwidth, devices.network_latency);
            let memory = MemoryDevice::new(ctx, devices.memory);
            let disk = Disk::new(ctx, format!("{host}-disk"), devices.remote_disk);
            let mm = MemoryManager::new(
                ctx,
                cache_config(platform.server_memory),
                memory,
                disk.clone(),
            );
            let io = IoController::new(ctx, mm).with_chunk_size(platform.chunk_size);
            servers.push(ServerNode {
                host,
                link,
                fs: CachedFileSystem::new(io, disk),
                alive: Cell::new(true),
            });
        }
        let mut clients = Vec::with_capacity(spec.clients);
        for i in 0..spec.clients {
            let host = client_host(i);
            fabric.add_host(&host);
            for server in &servers {
                fabric.add_route(&host, &server.host, &server.link);
            }
            let memory = MemoryDevice::new(ctx, devices.memory);
            // The client cache holds only clean data; its disk is never
            // written but the Memory Manager needs a flush target.
            let disk = Disk::new(ctx, format!("{host}-disk"), devices.disk);
            let mm = MemoryManager::new(ctx, cache_config(platform.host_memory), memory, disk);
            clients.push(ClientNode {
                host,
                mm,
                versions: RefCell::new(BTreeMap::new()),
                degraded_reads: Cell::new(0),
                stale_reads: Cell::new(0),
            });
        }
        Ok(FleetClient {
            inner: Rc::new(FleetInner {
                ctx: ctx.clone(),
                spec: *spec,
                chunk_size: platform.chunk_size,
                fabric,
                servers,
                clients,
                registry: FileRegistry::new(),
                versions: RefCell::new(BTreeMap::new()),
                server_versions: RefCell::new(BTreeMap::new()),
                counters: NetCounters::default(),
                crashes: RefCell::new(Vec::new()),
            }),
            client: 0,
        })
    }

    /// The same fleet seen from client `client % spec.clients`.
    pub fn for_client(&self, client: usize) -> FleetClient {
        FleetClient {
            inner: Rc::clone(&self.inner),
            client: client % self.inner.spec.clients,
        }
    }

    /// Index of the client host this view is homed on.
    pub fn client_index(&self) -> usize {
        self.client
    }

    /// The fleet's shape and policy.
    pub fn spec(&self) -> &FleetSpec {
        &self.inner.spec
    }

    /// The network fabric (for fault drivers and tests).
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// Replica ring of a file (primary first).
    pub fn replicas_of(&self, file: &FileId) -> Vec<usize> {
        self.inner.replicas_of(file)
    }

    /// Primary server index of a file.
    pub fn primary_of(&self, file: &FileId) -> usize {
        self.inner.replicas_of(file)[0]
    }

    /// Crashes a server by host name: its dirty cached data is lost (the
    /// durability report is recorded in [`NetReport::server_crashes`]), it
    /// stops serving, and its host is marked down in the fabric. Returns
    /// `false` if the host is unknown or already crashed. The server does
    /// not come back.
    pub fn crash_server(&self, host: &str) -> bool {
        let Some(index) = self.inner.servers.iter().position(|n| n.host == host) else {
            return false;
        };
        let node = &self.inner.servers[index];
        if !node.alive.get() {
            return false;
        }
        node.alive.set(false);
        node.fs.memory_manager().stop();
        self.inner.fabric.set_host_down(&node.host);
        let report = self.inner.crash_one(index);
        self.inner
            .crashes
            .borrow_mut()
            .push((node.host.clone(), report));
        true
    }

    /// The network-tier statistics collected so far.
    pub fn net_report(&self) -> NetReport {
        let c = &self.inner.counters;
        NetReport {
            stale_reads: c.stale_reads.get() as f64,
            hedged_reads: c.hedged_reads.get() as f64,
            failed_reads: c.failed_reads.get() as f64,
            failed_writes: c.failed_writes.get() as f64,
            net_retries: c.net_retries.get() as f64,
            failovers: c.failovers.get() as f64,
            per_client: self
                .inner
                .clients
                .iter()
                .map(|client| ClientNetStats {
                    host: client.host.clone(),
                    degraded_reads: client.degraded_reads.get() as f64,
                    stale_reads: client.stale_reads.get() as f64,
                })
                .collect(),
            server_crashes: self.inner.crashes.borrow().clone(),
        }
    }
}

impl IoBackend for FleetClient {
    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        self.inner
            .registry
            .create(file, size)
            .map_err(ScenarioError::from)?;
        for &s in &self.inner.replicas_of(file) {
            let node = &self.inner.servers[s];
            if node.alive.get() {
                node.fs
                    .create_file(file, size)
                    .map_err(ScenarioError::from)?;
            }
        }
        Ok(())
    }

    async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        let inner = &self.inner;
        let size = inner.registry.size(file).map_err(ScenarioError::from)?;
        let (_start, amount) = clamp_io_range(offset, len, size);
        let start = inner.ctx.now();
        let me = &inner.clients[self.client];
        let candidates = inner.replicas_of(file);
        let mut stats = IoOpStats::default();
        let mut stale = false;
        let mut remaining = amount;
        while remaining > EPSILON {
            let chunk = remaining.min(inner.chunk_size);
            let client_cached = me.mm.cached_amount(file);
            let uncached = (size - client_cached).max(0.0);
            let from_remote = chunk.min(uncached);
            let from_client_cache = chunk - from_remote;

            // Make room for the anonymous copy plus the newly cached data
            // (the client cache holds only clean data, so eviction suffices).
            let required = chunk + from_remote;
            me.mm.evict(required - me.mm.free_memory(), Some(file));
            let still_missing = required - me.mm.free_memory();
            if still_missing > EPSILON {
                me.mm.evict(still_missing, None);
            }

            if from_remote > EPSILON {
                match inner
                    .robust_fetch(self.client, &candidates, file, from_remote)
                    .await
                {
                    Ok(fetched) => {
                        me.mm.add_to_cache(file, from_remote);
                        let version = inner.server_version(fetched.server, file);
                        if version < inner.version(file) {
                            stale = true;
                        }
                        me.versions.borrow_mut().insert(file.clone(), version);
                        stats.bytes_from_disk += fetched.from_disk;
                        stats.bytes_from_cache += fetched.from_server_cache;
                        stats.bytes_to_cache += from_remote;
                    }
                    Err(_error) => {
                        bump(&me.degraded_reads);
                        bump(&inner.counters.failed_reads);
                        return Err(inner.injected(OpClass::Read, file));
                    }
                }
            }
            if from_client_cache > EPSILON {
                let read = me.mm.read_from_cache(file, from_client_cache).await;
                stats.bytes_from_cache += read;
                let version = me.versions.borrow().get(file).copied().unwrap_or(0);
                if version < inner.version(file) {
                    stale = true;
                }
            }
            me.mm.use_anonymous_memory(chunk);
            remaining -= chunk;
        }
        if stale {
            bump(&me.stale_reads);
            bump(&inner.counters.stale_reads);
        }
        stats.duration = inner.ctx.now().duration_since(start);
        Ok(stats)
    }

    async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        if !offset.is_finite() || !len.is_finite() || offset < 0.0 || len < 0.0 {
            return Err(ScenarioError::Filesystem(FsError::InvalidRange {
                offset,
                len,
            }));
        }
        let inner = &self.inner;
        let start = inner.ctx.now();
        let replicas = inner.replicas_of(file);
        let mut stats = IoOpStats::default();
        let mut succeeded = Vec::new();
        for &server in &replicas {
            match inner
                .robust_write(self.client, server, file, offset, len)
                .await
            {
                Ok(st) => {
                    stats.bytes_to_cache += st.bytes_to_cache;
                    stats.bytes_to_disk += st.bytes_to_disk;
                    stats.throttle_stall += st.throttle_stall;
                    succeeded.push(server);
                }
                Err(_error) => bump(&inner.counters.failed_writes),
            }
        }
        if succeeded.is_empty() {
            return Err(inner.injected(OpClass::Write, file));
        }
        let version = {
            let mut versions = inner.versions.borrow_mut();
            let entry = versions.entry(file.clone()).or_insert(0);
            *entry += 1;
            *entry
        };
        {
            let mut server_versions = inner.server_versions.borrow_mut();
            for &server in &succeeded {
                server_versions.insert((server, file.clone()), version);
            }
        }
        let new_size = inner.registry.size(file).unwrap_or(0.0).max(offset + len);
        inner.registry.create_or_replace(file, new_size);
        // Close-to-open: the writer's own cached copy predates the write.
        let me = &inner.clients[self.client];
        me.mm.invalidate_file(file);
        me.versions.borrow_mut().remove(file);
        stats.duration = inner.ctx.now().duration_since(start);
        Ok(stats)
    }

    async fn fsync(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        let inner = &self.inner;
        inner.registry.size(file).map_err(ScenarioError::from)?;
        let start = inner.ctx.now();
        let client_host = inner.clients[self.client].host.clone();
        let mut stats = IoOpStats::default();
        let mut any = false;
        for &server in &inner.replicas_of(file) {
            let node = &inner.servers[server];
            if !node.alive.get() || inner.fabric.check_path(&client_host, &node.host).is_err() {
                continue;
            }
            if let Ok(st) = node.fs.fsync(file).await {
                any = true;
                stats.bytes_to_disk += st.bytes_to_disk;
                stats.throttle_stall += st.throttle_stall;
            }
        }
        if !any {
            return Err(inner.injected(OpClass::Fsync, file));
        }
        stats.duration = inner.ctx.now().duration_since(start);
        Ok(stats)
    }

    async fn sync(&self) -> Result<IoOpStats, ScenarioError> {
        let inner = &self.inner;
        let start = inner.ctx.now();
        let client_host = inner.clients[self.client].host.clone();
        let mut stats = IoOpStats::default();
        for node in &inner.servers {
            if !node.alive.get() || inner.fabric.check_path(&client_host, &node.host).is_err() {
                continue;
            }
            let st = node.fs.sync().await;
            stats.bytes_to_disk += st.bytes_to_disk;
            stats.throttle_stall += st.throttle_stall;
        }
        stats.duration = inner.ctx.now().duration_since(start);
        Ok(stats)
    }

    fn start_background(&self) {
        for node in &self.inner.servers {
            if node.alive.get() {
                node.fs.memory_manager().spawn_periodical_flusher();
            }
        }
    }

    fn stop_background(&self) {
        for node in &self.inner.servers {
            if node.alive.get() {
                node.fs.memory_manager().stop();
            }
        }
    }

    fn release_anonymous_memory(&self, amount: f64) {
        self.inner.clients[self.client]
            .mm
            .release_anonymous_memory(amount);
    }

    fn sample_memory(&self) -> Option<MemorySample> {
        Some(self.inner.clients[self.client].mm.sample())
    }

    fn memory_trace(&self) -> Option<pagecache::MemoryTrace> {
        Some(self.inner.clients[self.client].mm.trace())
    }

    fn cache_snapshot(&self, label: &str) -> Option<pagecache::CacheContentSnapshot> {
        Some(
            self.inner.clients[self.client]
                .mm
                .cache_content_snapshot(label),
        )
    }

    fn writeback_counters(&self) -> Option<WritebackCounters> {
        let mut total = WritebackCounters::default();
        for node in &self.inner.servers {
            let c = node.fs.memory_manager().counters();
            total.background_flushed += c.flushed_background;
            total.synchronous_flushed += c.flushed_on_demand;
            total.evicted += c.evicted;
        }
        Some(total)
    }

    fn crash(&self) -> CrashReport {
        // Fleet-wide power loss: every server loses its dirty cached data;
        // a file survives as well as its most-durable replica. Servers that
        // crashed earlier contribute the durability recorded at their crash
        // (their dirty data was already lost then).
        let mut merged: BTreeMap<FileId, FileDurability> = BTreeMap::new();
        for (server, node) in self.inner.servers.iter().enumerate() {
            let report = if node.alive.get() {
                self.inner.crash_one(server)
            } else {
                self.inner
                    .crashes
                    .borrow()
                    .iter()
                    .find(|(host, _)| host == &node.host)
                    .map(|(_, report)| report.clone())
                    .unwrap_or_default()
            };
            for (file, durability) in report.files {
                merged
                    .entry(file)
                    .and_modify(|best| {
                        if durability.durable_bytes > best.durable_bytes {
                            *best = durability.clone();
                        }
                    })
                    .or_insert(durability);
            }
        }
        for client in &self.inner.clients {
            client.mm.crash_discard();
            client.versions.borrow_mut().clear();
        }
        CrashReport { files: merged }
    }

    fn kind_label(&self) -> &'static str {
        "fleet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use storage_model::units::MB;
    use storage_model::DeviceSpec;

    const NET_BW: f64 = 100.0 * MB;

    fn test_platform() -> PlatformSpec {
        let mut platform = PlatformSpec::uniform(
            256.0 * MB,
            DeviceSpec::symmetric(1000.0 * MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(100.0 * MB, 0.0, f64::INFINITY),
        );
        platform.simulated.network_bandwidth = NET_BW;
        platform
    }

    fn fleet(
        ctx: &SimContext,
        clients: usize,
        servers: usize,
        replication: usize,
        policy: ClientPolicy,
    ) -> FleetClient {
        let platform = test_platform();
        let spec = FleetSpec::new(clients, servers, replication).with_policy(policy);
        FleetClient::build(ctx, &platform, &platform.simulated, &spec).unwrap()
    }

    fn two_host_fabric(ctx: &SimContext) -> Fabric {
        let fabric = Fabric::new(ctx);
        fabric.add_host("a");
        fabric.add_host("b");
        fabric.add_link("ab", NET_BW, 0.0);
        fabric.add_route("a", "b", "ab");
        fabric
    }

    #[test]
    fn fabric_transfer_and_link_down() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let fabric = two_host_fabric(&ctx);
        let done = sim.spawn({
            let fabric = fabric.clone();
            async move {
                fabric.transfer("a", "b", 100.0 * MB).await.unwrap();
                assert!(fabric.set_link_down("ab"));
                assert_eq!(
                    fabric.transfer("a", "b", 1.0).await,
                    Err(NetError::LinkDown("ab".to_string()))
                );
                // Takedowns nest: one `up` is not enough after two `down`s.
                assert!(fabric.set_link_down("ab"));
                assert!(fabric.set_link_up("ab"));
                assert!(fabric.check_path("a", "b").is_err());
                assert!(fabric.set_link_up("ab"));
                fabric.transfer("b", "a", 1.0).await.unwrap();
            }
        });
        sim.run();
        assert!(done.is_finished());
        assert!((sim.now().as_secs() - (1.0 + 1.0 / (100.0 * MB))).abs() < 1e-9);
    }

    #[test]
    fn fabric_partition_cuts_and_heals() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let fabric = two_host_fabric(&ctx);
        fabric.add_host("c");
        fabric.add_route("a", "c", "ab");
        let id = fabric.apply_partition(vec![vec!["a".to_string()], vec!["b".to_string()]]);
        assert_eq!(fabric.check_path("a", "b"), Err(NetError::Partitioned));
        // "c" is unlisted, so it still reaches both sides.
        assert!(fabric.check_path("a", "c").is_ok());
        assert!(fabric.heal_partition(id));
        assert!(!fabric.heal_partition(id));
        assert!(fabric.check_path("a", "b").is_ok());
    }

    #[test]
    fn fabric_aborts_transfer_mid_flight() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let fabric = two_host_fabric(&ctx);
        let transfer = sim.spawn({
            let fabric = fabric.clone();
            async move { fabric.transfer("a", "b", 1000.0 * MB).await }
        });
        sim.spawn({
            let fabric = fabric.clone();
            let ctx = ctx.clone();
            async move {
                ctx.sleep(1.0).await;
                fabric.set_link_down("ab");
            }
        });
        sim.run();
        assert_eq!(
            transfer.try_take_result(),
            Some(Err(NetError::LinkDown("ab".to_string())))
        );
        // A 10 s transfer was cut at t = 1 s.
        assert!((sim.now().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fabric_host_down_aborts_and_unroutes() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let fabric = two_host_fabric(&ctx);
        let done = sim.spawn({
            let fabric = fabric.clone();
            async move {
                fabric.set_host_down("b");
                assert_eq!(
                    fabric.transfer("a", "b", 1.0).await,
                    Err(NetError::HostDown("b".to_string()))
                );
                fabric.set_host_up("b");
                fabric.transfer("a", "b", 1.0).await.unwrap();
                assert_eq!(
                    fabric.check_path("a", "nonexistent"),
                    Err(NetError::NoRoute {
                        from: "a".to_string(),
                        to: "nonexistent".to_string()
                    })
                );
            }
        });
        sim.run();
        assert!(done.is_finished());
    }

    #[test]
    fn placement_is_stable_and_spread() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let backend = fleet(&ctx, 2, 3, 2, ClientPolicy::default());
        let file = FileId::new("data");
        let replicas = backend.replicas_of(&file);
        assert_eq!(replicas, backend.replicas_of(&file));
        assert_eq!(replicas.len(), 2);
        assert_ne!(replicas[0], replicas[1]);
        assert!(replicas.iter().all(|&s| s < 3));
        assert_eq!(backend.primary_of(&file), replicas[0]);
    }

    #[test]
    fn fleet_write_read_roundtrip() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let backend = fleet(&ctx, 1, 3, 2, ClientPolicy::default());
        let done = sim.spawn({
            let backend = backend.clone();
            async move {
                let file = FileId::new("data");
                let write = backend.write_range(&file, 0.0, 20.0 * MB).await.unwrap();
                // Replication amplification: both replicas absorb the write.
                assert!((write.bytes_to_cache - 40.0 * MB).abs() < 1.0);
                let read = backend.read_range(&file, 0.0, 20.0 * MB).await.unwrap();
                assert!((read.bytes_from_cache + read.bytes_from_disk - 20.0 * MB).abs() < 1.0);
                backend.release_anonymous_memory(20.0 * MB);
            }
        });
        sim.run();
        assert!(done.is_finished());
        let report = backend.net_report();
        assert_eq!(report.stale_reads, 0.0);
        assert_eq!(report.failed_reads, 0.0);
        assert_eq!(report.failed_writes, 0.0);
    }

    #[test]
    fn server_crash_loses_dirty_replica() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let backend = fleet(&ctx, 1, 2, 2, ClientPolicy::default());
        let done = sim.spawn({
            let backend = backend.clone();
            async move {
                let file = FileId::new("data");
                backend.write_range(&file, 0.0, 20.0 * MB).await.unwrap();
                let before = backend.crash_server(&server_host(0));
                assert!(before);
                backend
            }
        });
        sim.run();
        let backend = done.try_take_result().unwrap();
        // The crashed server lost its dirty copy...
        let report = backend.net_report();
        assert_eq!(report.server_crashes.len(), 1);
        assert!(report.server_crashes[0].1.lost_bytes() > 0.0);
        // ...but a fleet-wide power loss still finds the surviving replica
        // dirty too (write-back caches, nothing fsynced).
        assert!(backend.crash().lost_bytes() > 0.0);
    }

    #[test]
    fn fsync_then_crash_is_durable() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let backend = fleet(&ctx, 1, 2, 2, ClientPolicy::default());
        let done = sim.spawn({
            let backend = backend.clone();
            async move {
                let file = FileId::new("data");
                backend.write_range(&file, 0.0, 20.0 * MB).await.unwrap();
                backend.fsync(&file).await.unwrap();
                backend
            }
        });
        sim.run();
        let backend = done.try_take_result().unwrap();
        let report = backend.crash();
        assert_eq!(report.lost_bytes(), 0.0);
        assert!(report.durable_bytes() >= 20.0 * MB - 1.0);
    }

    #[test]
    fn read_fails_over_to_replica_after_server_crash() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let policy = ClientPolicy::default().with_retry(RetryPolicy::new(3, 0.01));
        let backend = fleet(&ctx, 1, 3, 2, policy);
        let done = sim.spawn({
            let backend = backend.clone();
            async move {
                let file = FileId::new("data");
                backend.create_file(&file, 20.0 * MB).unwrap();
                let primary = server_host(backend.primary_of(&file));
                assert!(backend.crash_server(&primary));
                backend.read_range(&file, 0.0, 20.0 * MB).await.unwrap();
                backend.release_anonymous_memory(20.0 * MB);
            }
        });
        sim.run();
        assert!(done.is_finished());
        let report = backend.net_report();
        assert!(report.failovers >= 1.0);
        assert!(report.net_retries >= 1.0);
        assert_eq!(report.failed_reads, 0.0);
    }

    #[test]
    fn unhealed_partition_degrades_instead_of_hanging() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let policy = ClientPolicy::default()
            .with_timeout(1.0)
            .with_retry(RetryPolicy::new(2, 0.1));
        let backend = fleet(&ctx, 1, 2, 2, policy);
        let result = sim.spawn({
            let backend = backend.clone();
            async move {
                let file = FileId::new("data");
                backend.create_file(&file, 10.0 * MB).unwrap();
                let groups = vec![vec![client_host(0)], vec![server_host(0), server_host(1)]];
                backend.fabric().apply_partition(groups);
                backend.read_range(&file, 0.0, 10.0 * MB).await
            }
        });
        sim.run();
        let result = result.try_take_result().expect("read task hung");
        match result {
            Err(ScenarioError::Injected(fault)) => {
                assert_eq!(fault.kind, InjectedFaultKind::Network);
                assert_eq!(fault.op, OpClass::Read);
            }
            other => panic!("expected injected network fault, got {other:?}"),
        }
        let report = backend.net_report();
        assert_eq!(report.failed_reads, 1.0);
        assert_eq!(report.per_client[0].degraded_reads, 1.0);
        assert!(report.net_retries >= 1.0);
    }

    #[test]
    fn slow_network_times_out_and_retries() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let policy = ClientPolicy::default()
            .with_timeout(0.5)
            .with_retry(RetryPolicy::new(2, 0.25));
        let backend = fleet(&ctx, 1, 1, 1, policy);
        let result = sim.spawn({
            let backend = backend.clone();
            async move {
                let file = FileId::new("data");
                backend.create_file(&file, 200.0 * MB).unwrap();
                // 200 MB over a 100 MB/s link takes 2 s >> the 0.5 s timeout.
                backend.read_range(&file, 0.0, 200.0 * MB).await
            }
        });
        sim.run();
        let result = result.try_take_result().expect("read task hung");
        assert!(matches!(result, Err(ScenarioError::Injected(_))));
        let report = backend.net_report();
        assert_eq!(report.net_retries, 1.0);
        assert_eq!(report.failed_reads, 1.0);
        // Two attempts, each cut at the 0.5 s timeout, plus one 0.25 s
        // backoff pause.
        assert!((sim.now().as_secs() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn hedged_read_beats_contended_primary() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let policy = ClientPolicy::default().with_hedge(0.05);
        let backend = fleet(&ctx, 1, 2, 2, policy);
        let file = FileId::new("hot");
        backend.create_file(&file, 10.0 * MB).unwrap();
        let primary = backend.primary_of(&file);
        // Saturate the primary's ingress link with unrelated traffic.
        sim.spawn({
            let fabric = backend.fabric().clone();
            let host = server_host(primary);
            async move {
                let _ = fabric.transfer(&host, &client_host(0), 1000.0 * MB).await;
            }
        });
        let done = sim.spawn({
            let backend = backend.clone();
            async move {
                backend.read_range(&file, 0.0, 10.0 * MB).await.unwrap();
                backend.release_anonymous_memory(10.0 * MB);
            }
        });
        sim.run();
        assert!(done.is_finished());
        let report = backend.net_report();
        assert!(report.hedged_reads >= 1.0);
        assert!(report.failovers >= 1.0);
    }

    #[test]
    fn missed_write_makes_replica_stale() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let policy = ClientPolicy::default()
            .with_timeout(0.5)
            .with_retry(RetryPolicy::new(2, 0.05));
        let backend = fleet(&ctx, 1, 2, 2, policy);
        let done = sim.spawn({
            let backend = backend.clone();
            async move {
                let file = FileId::new("data");
                backend.create_file(&file, 10.0 * MB).unwrap();
                let replicas = backend.replicas_of(&file);
                let secondary = server_host(replicas[1]);
                // Cut off the secondary: the write lands on the primary only.
                let id = backend
                    .fabric()
                    .apply_partition(vec![vec![client_host(0)], vec![secondary.clone()]]);
                backend.write_range(&file, 0.0, 10.0 * MB).await.unwrap();
                backend.fabric().heal_partition(id);
                // Lose the primary: reads fail over to the stale secondary.
                assert!(backend.crash_server(&server_host(replicas[0])));
                backend.read_range(&file, 0.0, 10.0 * MB).await.unwrap();
                backend.release_anonymous_memory(10.0 * MB);
            }
        });
        sim.run();
        assert!(done.is_finished());
        let report = backend.net_report();
        assert_eq!(report.failed_writes, 1.0);
        assert!(report.stale_reads >= 1.0);
        assert!(report.failovers >= 1.0);
        assert_eq!(report.per_client[0].stale_reads, report.stale_reads);
    }

    #[test]
    fn spec_and_policy_validation() {
        assert!(FleetSpec::new(0, 3, 1).validate().is_err());
        assert!(FleetSpec::new(1, 0, 1).validate().is_err());
        assert!(FleetSpec::new(1, 3, 0).validate().is_err());
        assert!(FleetSpec::new(1, 3, 4).validate().is_err());
        assert!(FleetSpec::new(4, 3, 3).validate().is_ok());
        assert!(ClientPolicy::default().validate().is_ok());
        assert!(ClientPolicy::default()
            .with_timeout(f64::NAN)
            .validate()
            .is_err());
        assert!(ClientPolicy::default()
            .with_timeout(0.0)
            .validate()
            .is_err());
        assert!(ClientPolicy::default()
            .with_hedge(f64::INFINITY)
            .validate()
            .is_err());
        assert!(ClientPolicy::default().with_hedge(0.2).validate().is_ok());
    }
}
