//! Result types produced by scenario runs.

use pagecache::{CacheContentSnapshot, IoOpStats, MemoryTrace};

use crate::backend::SimulatorKind;
use crate::faults::{CrashReport, InjectedFault};
use crate::net::NetReport;

/// How a task ended.
///
/// Injected faults (see [`crate::faults`]) can fail a task without aborting
/// the whole scenario: a task that exhausts its retry budget on a transient
/// error, or hits a persistent one, is marked [`TaskStatus::Failed`] and the
/// run continues in degraded mode with the remaining tasks. A simulated
/// power loss marks the task it interrupted as [`TaskStatus::Interrupted`].
#[derive(Debug, Clone, Default, PartialEq)]
pub enum TaskStatus {
    /// The task ran all its operations to completion.
    #[default]
    Completed,
    /// The task was abandoned after an injected I/O error that retries
    /// could not absorb. The payload is the fault that killed it.
    Failed(InjectedFault),
    /// A simulated crash (power loss) cut the task short.
    Interrupted,
}

impl TaskStatus {
    /// `true` when the task ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, TaskStatus::Completed)
    }
}

/// Timing of one task of one application instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReport {
    /// Task name.
    pub task_name: String,
    /// Time spent reading input files, seconds.
    pub read_time: f64,
    /// Time spent computing, seconds.
    pub compute_time: f64,
    /// Time spent writing output files, seconds.
    pub write_time: f64,
    /// Aggregated statistics of the input reads.
    pub read_stats: IoOpStats,
    /// Aggregated statistics of the output writes.
    pub write_stats: IoOpStats,
    /// How the task ended (always [`TaskStatus::Completed`] without faults).
    pub status: TaskStatus,
    /// Number of retried operations (attempts beyond each op's first).
    pub retries: u64,
}

impl TaskReport {
    /// Total task duration (read + compute + write).
    pub fn total_time(&self) -> f64 {
        self.read_time + self.compute_time + self.write_time
    }
}

/// Timings of one application instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceReport {
    /// Index of the instance (0-based).
    pub instance: usize,
    /// Per-task reports, in execution order.
    pub tasks: Vec<TaskReport>,
}

impl InstanceReport {
    /// Cumulative read time across all tasks of the instance.
    pub fn total_read_time(&self) -> f64 {
        self.tasks.iter().map(|t| t.read_time).sum()
    }

    /// Cumulative write time across all tasks of the instance.
    pub fn total_write_time(&self) -> f64 {
        self.tasks.iter().map(|t| t.write_time).sum()
    }

    /// Cumulative compute time across all tasks of the instance.
    pub fn total_compute_time(&self) -> f64 {
        self.tasks.iter().map(|t| t.compute_time).sum()
    }

    /// End-to-end duration of the instance.
    pub fn makespan(&self) -> f64 {
        self.tasks.iter().map(TaskReport::total_time).sum()
    }
}

/// Cumulative writeback and eviction counters of a back-end's page cache.
///
/// The macroscopic simulators report the Memory Manager counters; the kernel
/// emulator reports its writeback-thread counters. Cacheless back-ends have
/// no cache and therefore no counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WritebackCounters {
    /// Bytes flushed asynchronously by background writeback.
    pub background_flushed: f64,
    /// Bytes flushed synchronously (dirty-ratio throttling / memory
    /// pressure).
    pub synchronous_flushed: f64,
    /// Bytes evicted from the cache.
    pub evicted: f64,
}

/// Aggregated per-run statistics of a scenario: the numbers the sweep
/// harness records in `RESULTS.json` next to the simulated times.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Bytes read from disk, summed over every task of every instance.
    pub bytes_from_disk: f64,
    /// Bytes read from the page cache.
    pub bytes_from_cache: f64,
    /// Bytes written into the page cache.
    pub bytes_to_cache: f64,
    /// Bytes written synchronously to disk.
    pub bytes_to_disk: f64,
    /// Fraction of all read bytes served from the cache.
    pub cache_hit_ratio: f64,
    /// Bytes read from disk ahead of demand by the kernel emulator's
    /// readahead model (a subset of `bytes_from_disk`; 0 on back-ends
    /// without readahead or with readahead disabled).
    pub bytes_prefetched: f64,
    /// Seconds writers spent blocked in dirty-page throttling
    /// (`balance_dirty_pages`-style stalls), summed over every task of every
    /// instance.
    pub throttle_stall_s: f64,
    /// Peak cached data observed in the memory trace (0 without a trace).
    pub peak_cached: f64,
    /// Peak dirty data observed in the memory trace (0 without a trace).
    pub peak_dirty: f64,
    /// Bytes the durability oracle found intact after a simulated crash
    /// (0 when the scenario did not crash).
    pub durable_bytes: f64,
    /// Bytes of never-flushed dirty data destroyed by a simulated crash.
    pub lost_bytes: f64,
    /// Number of files that lost at least one byte in a simulated crash.
    pub lost_files: f64,
    /// Reads served by a stale replica on the network tier (0 without a
    /// fleet back-end).
    pub stale_reads: f64,
    /// Per-replica writes the network tier gave up on (0 without a fleet
    /// back-end; the write as a whole may still have succeeded elsewhere).
    pub failed_writes: f64,
}

/// Full result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The simulator back-end that produced the result.
    pub kind: SimulatorKind,
    /// Number of concurrent application instances.
    pub instances: usize,
    /// Per-instance reports.
    pub instance_reports: Vec<InstanceReport>,
    /// Memory profile of the host (absent for the cacheless back-end).
    pub memory_trace: Option<MemoryTrace>,
    /// Cache-content snapshots taken after each I/O phase of instance 0.
    pub cache_snapshots: Vec<CacheContentSnapshot>,
    /// Final virtual time of the simulation, seconds.
    pub simulated_duration: f64,
    /// Wall-clock time it took to run the simulation, seconds (Fig. 8).
    pub wall_clock_seconds: f64,
    /// Writeback/eviction counters of the back-end's cache, if it has one.
    pub writeback: Option<WritebackCounters>,
    /// Durability oracle verdict of the simulated crash, if one was injected
    /// and fired before the run completed.
    pub crash: Option<CrashReport>,
    /// Per-instance reports of the restart pass, when the scenario requested
    /// restart-after-crash and a crash fired. The restarted program runs
    /// against the post-crash durable state with all faults disarmed.
    pub restart_reports: Vec<InstanceReport>,
    /// Network-tier statistics (stale/hedged/degraded reads, failovers,
    /// per-server crash reports), present only for fleet back-ends.
    pub net: Option<NetReport>,
    /// Per-generator traffic results (latency percentiles, throughput,
    /// tenant-limit enforcement), present only when the scenario carries
    /// traffic specs.
    pub traffic: Option<crate::traffic::TrafficReport>,
}

impl ScenarioReport {
    /// Names of the tasks, taken from the first instance.
    pub fn task_names(&self) -> Vec<String> {
        self.instance_reports
            .first()
            .map(|i| i.tasks.iter().map(|t| t.task_name.clone()).collect())
            .unwrap_or_default()
    }

    /// Mean read time of task `task_idx` across instances.
    pub fn mean_task_read_time(&self, task_idx: usize) -> f64 {
        self.mean_over_instances(|i| i.tasks.get(task_idx).map(|t| t.read_time).unwrap_or(0.0))
    }

    /// Mean write time of task `task_idx` across instances.
    pub fn mean_task_write_time(&self, task_idx: usize) -> f64 {
        self.mean_over_instances(|i| i.tasks.get(task_idx).map(|t| t.write_time).unwrap_or(0.0))
    }

    /// Mean cumulative read time per instance (the "Read time" series of
    /// Figs. 5 and 7).
    pub fn mean_total_read_time(&self) -> f64 {
        self.mean_over_instances(InstanceReport::total_read_time)
    }

    /// Mean cumulative write time per instance (the "Write time" series of
    /// Figs. 5 and 7).
    pub fn mean_total_write_time(&self) -> f64 {
        self.mean_over_instances(InstanceReport::total_write_time)
    }

    /// Mean makespan per instance.
    pub fn mean_makespan(&self) -> f64 {
        self.mean_over_instances(InstanceReport::makespan)
    }

    /// Aggregates the per-task I/O statistics and the memory trace into the
    /// flat [`RunStats`] record consumed by the sweep harness.
    pub fn run_stats(&self) -> RunStats {
        let mut io = IoOpStats::default();
        for instance in &self.instance_reports {
            for task in &instance.tasks {
                io.merge(&task.read_stats);
                io.merge(&task.write_stats);
            }
        }
        let (peak_cached, peak_dirty) = self
            .memory_trace
            .as_ref()
            .map(|t| (t.max_cached(), t.max_dirty()))
            .unwrap_or((0.0, 0.0));
        let (durable_bytes, lost_bytes, lost_files) = self
            .crash
            .as_ref()
            .map(|c| (c.durable_bytes(), c.lost_bytes(), c.lost_files() as f64))
            .unwrap_or((0.0, 0.0, 0.0));
        let (stale_reads, failed_writes) = self
            .net
            .as_ref()
            .map(|n| (n.stale_reads, n.failed_writes))
            .unwrap_or((0.0, 0.0));
        RunStats {
            bytes_from_disk: io.bytes_from_disk,
            bytes_from_cache: io.bytes_from_cache,
            bytes_to_cache: io.bytes_to_cache,
            bytes_to_disk: io.bytes_to_disk,
            cache_hit_ratio: io.cache_hit_ratio(),
            bytes_prefetched: io.bytes_prefetched,
            throttle_stall_s: io.throttle_stall,
            peak_cached,
            peak_dirty,
            durable_bytes,
            lost_bytes,
            lost_files,
            stale_reads,
            failed_writes,
        }
    }

    /// Total number of retried operations across every task of every
    /// instance (including the restart pass, if any).
    pub fn total_retries(&self) -> u64 {
        self.instance_reports
            .iter()
            .chain(self.restart_reports.iter())
            .flat_map(|i| i.tasks.iter())
            .map(|t| t.retries)
            .sum()
    }

    /// Names of the tasks that did not complete, across all instances of the
    /// main pass.
    pub fn failed_tasks(&self) -> Vec<String> {
        self.instance_reports
            .iter()
            .flat_map(|i| i.tasks.iter())
            .filter(|t| !t.status.is_completed())
            .map(|t| t.task_name.clone())
            .collect()
    }

    fn mean_over_instances(&self, f: impl Fn(&InstanceReport) -> f64) -> f64 {
        if self.instance_reports.is_empty() {
            return 0.0;
        }
        self.instance_reports.iter().map(f).sum::<f64>() / self.instance_reports.len() as f64
    }
}

/// Absolute relative error in percent, the metric of Figs. 4a and 6:
/// `|simulated - real| / real * 100`.
pub fn absolute_relative_error_pct(simulated: f64, real: f64) -> f64 {
    if real == 0.0 {
        if simulated == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (simulated - real).abs() / real.abs() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, r: f64, c: f64, w: f64) -> TaskReport {
        TaskReport {
            task_name: name.to_string(),
            read_time: r,
            compute_time: c,
            write_time: w,
            read_stats: IoOpStats::default(),
            write_stats: IoOpStats::default(),
            status: TaskStatus::Completed,
            retries: 0,
        }
    }

    fn report() -> ScenarioReport {
        ScenarioReport {
            kind: SimulatorKind::PageCache,
            instances: 2,
            instance_reports: vec![
                InstanceReport {
                    instance: 0,
                    tasks: vec![task("t1", 1.0, 2.0, 3.0), task("t2", 2.0, 2.0, 2.0)],
                },
                InstanceReport {
                    instance: 1,
                    tasks: vec![task("t1", 3.0, 2.0, 5.0), task("t2", 4.0, 2.0, 4.0)],
                },
            ],
            memory_trace: None,
            cache_snapshots: Vec::new(),
            simulated_duration: 20.0,
            wall_clock_seconds: 0.01,
            writeback: None,
            crash: None,
            restart_reports: Vec::new(),
            net: None,
            traffic: None,
        }
    }

    #[test]
    fn instance_aggregates() {
        let r = report();
        let i0 = &r.instance_reports[0];
        assert_eq!(i0.total_read_time(), 3.0);
        assert_eq!(i0.total_write_time(), 5.0);
        assert_eq!(i0.total_compute_time(), 4.0);
        assert_eq!(i0.makespan(), 12.0);
        assert_eq!(i0.tasks[0].total_time(), 6.0);
    }

    #[test]
    fn scenario_means() {
        let r = report();
        assert_eq!(r.task_names(), vec!["t1", "t2"]);
        assert_eq!(r.mean_task_read_time(0), 2.0);
        assert_eq!(r.mean_task_write_time(1), 3.0);
        assert_eq!(r.mean_total_read_time(), 5.0);
        assert_eq!(r.mean_total_write_time(), 7.0);
        assert_eq!(r.mean_makespan(), 16.0);
        // Out-of-range task index contributes zero.
        assert_eq!(r.mean_task_read_time(7), 0.0);
    }

    #[test]
    fn run_stats_aggregate_io_and_trace() {
        let mut r = report();
        r.instance_reports[0].tasks[0].read_stats = IoOpStats {
            bytes_from_disk: 100.0,
            bytes_from_cache: 300.0,
            ..IoOpStats::default()
        };
        r.instance_reports[1].tasks[1].write_stats = IoOpStats {
            bytes_to_cache: 500.0,
            bytes_to_disk: 50.0,
            ..IoOpStats::default()
        };
        r.instance_reports[1].tasks[0].read_stats = IoOpStats {
            bytes_prefetched: 25.0,
            throttle_stall: 0.5,
            ..IoOpStats::default()
        };
        let stats = r.run_stats();
        assert_eq!(stats.bytes_from_disk, 100.0);
        assert_eq!(stats.bytes_from_cache, 300.0);
        assert_eq!(stats.bytes_to_cache, 500.0);
        assert_eq!(stats.bytes_to_disk, 50.0);
        assert_eq!(stats.cache_hit_ratio, 0.75);
        assert_eq!(stats.bytes_prefetched, 25.0);
        assert_eq!(stats.throttle_stall_s, 0.5);
        // No memory trace: peaks are zero.
        assert_eq!(stats.peak_cached, 0.0);
        assert_eq!(stats.peak_dirty, 0.0);
    }

    #[test]
    fn crash_report_feeds_run_stats_and_task_status_helpers() {
        use crate::faults::{FileDurability, InjectedFault, InjectedFaultKind, OpClass};
        use pagecache::FileId;

        let mut r = report();
        let mut crash = CrashReport::default();
        crash.files.insert(
            FileId::new("wal"),
            FileDurability::from_dirty_amount(100.0, 30.0),
        );
        crash
            .files
            .insert(FileId::new("table"), FileDurability::fully_durable(50.0));
        r.crash = Some(crash);
        r.instance_reports[0].tasks[1].status = TaskStatus::Failed(InjectedFault {
            kind: InjectedFaultKind::Io,
            op: OpClass::Write,
            file: None,
            at: 1.0,
            transient: false,
        });
        r.instance_reports[1].tasks[0].retries = 3;

        let stats = r.run_stats();
        assert_eq!(stats.durable_bytes, 120.0);
        assert_eq!(stats.lost_bytes, 30.0);
        assert_eq!(stats.lost_files, 1.0);
        assert_eq!(r.failed_tasks(), vec!["t2"]);
        assert_eq!(r.total_retries(), 3);
        assert!(!r.instance_reports[0].tasks[1].status.is_completed());
        assert!(r.instance_reports[0].tasks[0].status.is_completed());
    }

    #[test]
    fn empty_report_means_are_zero() {
        let mut r = report();
        r.instance_reports.clear();
        assert_eq!(r.mean_total_read_time(), 0.0);
        assert!(r.task_names().is_empty());
    }

    #[test]
    fn error_metric() {
        assert_eq!(absolute_relative_error_pct(150.0, 100.0), 50.0);
        assert_eq!(absolute_relative_error_pct(50.0, 100.0), 50.0);
        assert_eq!(absolute_relative_error_pct(0.0, 0.0), 0.0);
        assert!(absolute_relative_error_pct(1.0, 0.0).is_infinite());
    }
}
