//! Fault injection: deterministic schedules of crashes, injectable I/O
//! errors, disk-full windows and NFS link outages, plus the durability
//! report produced when a crash fires.
//!
//! A [`FaultPlan`] is a validated list of [`FaultEvent`]s attached to a
//! [`crate::Scenario`]. Plans are **off by default** — an empty plan injects
//! nothing and a scenario without faults behaves bit-identically to one run
//! before this module existed. Every trigger is expressed in *simulated*
//! time or operation counts, so fault scenarios are as deterministic as any
//! other scenario.
//!
//! ## Event semantics
//!
//! * [`FaultEvent::Crash`] — simulated power loss at instant `at`. Every
//!   back-end discards its volatile page-cache state and reports per-file
//!   durable ranges as a [`CrashReport`]; application instances stop at
//!   their next operation boundary. With
//!   [`crate::Scenario::with_restart_after_crash`] the program is re-run
//!   against the post-crash durable state (warm cache lost, data re-read
//!   from disk).
//! * [`FaultEvent::IoError`] — an EIO-style failure described by an
//!   [`IoErrorSpec`]: which file and [`OpClass`] it hits, when it fires
//!   ([`Trigger::At`] a simulated instant or [`Trigger::Nth`] matching
//!   operation), and whether a retry may succeed ([`ErrorMode`]).
//! * [`FaultEvent::DiskFull`] — from instant `at` onward every write-class
//!   operation fails persistently, as if the device ran out of space.
//! * [`FaultEvent::NfsOutage`] — the NFS link drops for `duration` seconds
//!   starting at `at`: every operation of an NFS-backed scenario issued in
//!   the window fails transiently (a retry after the window succeeds).
//!   No-op on local-storage scenarios.
//! * [`FaultEvent::LinkDown`], [`FaultEvent::Partition`],
//!   [`FaultEvent::ServerCrash`] — network-tier faults for fleet scenarios
//!   (see [`crate::net`]): a fabric link dies (in-flight flows force-drained),
//!   host groups are partitioned, or one storage server crashes for good
//!   (its durability recorded by the per-server crash oracle). Outage
//!   durations may be `f64::INFINITY`; clients are expected to complete
//!   degraded, not hang. Inert on non-fleet scenarios.
//!
//! ## Durability guarantees per back-end
//!
//! | Back-end | write path | durable after a crash |
//! |---|---|---|
//! | cached local | writeback cache | everything except dirty bytes; positions approximated from the dirty amount |
//! | kernel emulator | writeback cache | byte-exact: the complement of the per-file dirty-range ledger |
//! | NFS | writethrough | everything (only warm read cache is lost) |
//! | direct local / direct NFS | synchronous | everything |

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use pagecache::FileId;

/// The class of I/O operation a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Range and whole-file reads.
    Read,
    /// Range and whole-file writes.
    Write,
    /// Per-file flushes.
    Fsync,
    /// Host-wide flushes.
    Sync,
    /// Any of the above.
    Any,
}

impl OpClass {
    /// Whether a fault declared for `self` applies to an operation of class
    /// `op`.
    pub fn applies_to(self, op: OpClass) -> bool {
        self == OpClass::Any || self == op
    }

    /// Short label for error messages.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::Fsync => "fsync",
            OpClass::Sync => "sync",
            OpClass::Any => "any",
        }
    }
}

/// When an injected I/O error starts firing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every matching operation issued at or after this simulated instant.
    At(f64),
    /// Exactly the `n`-th matching operation (1-based).
    Nth(u64),
}

/// Whether a retry of a failed operation may succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMode {
    /// Only the first attempt of a matching operation fails; a retry
    /// succeeds.
    Transient,
    /// Every attempt fails.
    Persistent,
}

/// An injectable EIO-style error: which operations it hits and when.
#[derive(Debug, Clone, PartialEq)]
pub struct IoErrorSpec {
    /// Restrict to operations on this file (`None` = any file). Matched
    /// against the un-scoped file name of the workload program.
    pub file: Option<String>,
    /// Restrict to this class of operations.
    pub ops: OpClass,
    /// When the error starts firing.
    pub trigger: Trigger,
    /// Whether retries may succeed.
    pub mode: ErrorMode,
}

impl IoErrorSpec {
    /// An error on every operation of `ops` from simulated instant `at`.
    pub fn at(ops: OpClass, at: f64, mode: ErrorMode) -> Self {
        IoErrorSpec {
            file: None,
            ops,
            trigger: Trigger::At(at),
            mode,
        }
    }

    /// An error on the `n`-th matching operation (1-based).
    pub fn nth(ops: OpClass, n: u64, mode: ErrorMode) -> Self {
        IoErrorSpec {
            file: None,
            ops,
            trigger: Trigger::Nth(n),
            mode,
        }
    }

    /// Restricts the error to operations on one file.
    pub fn on_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Simulated power loss at instant `at`: the page cache is lost, the
    /// scenario stops (and optionally restarts).
    Crash {
        /// Simulated instant of the power loss, seconds.
        at: f64,
    },
    /// An injectable I/O error.
    IoError(IoErrorSpec),
    /// From instant `at` onward, write-class operations fail as if the disk
    /// were full.
    DiskFull {
        /// Simulated instant the disk "fills up", seconds.
        at: f64,
    },
    /// The NFS link drops for `duration` seconds starting at `at`.
    NfsOutage {
        /// Simulated instant the link drops, seconds.
        at: f64,
        /// Length of the outage, seconds.
        duration: f64,
    },
    /// One fabric link goes down for `duration` seconds starting at `at`:
    /// in-flight flows on the link are force-drained (aborted) and new
    /// transfers fail until the link heals. `duration` may be
    /// `f64::INFINITY` for a link that never comes back. Fleet scenarios
    /// only; inert elsewhere.
    LinkDown {
        /// Name of the fabric link.
        link: String,
        /// Simulated instant the link dies, seconds.
        at: f64,
        /// Length of the outage, seconds (may be infinite).
        duration: f64,
    },
    /// A network partition from `at` for `duration` seconds: hosts in
    /// different groups cannot reach each other (hosts absent from every
    /// group are unaffected). `duration` may be `f64::INFINITY` for a
    /// partition that never heals. Fleet scenarios only; inert elsewhere.
    Partition {
        /// The host groups; traffic between different groups is cut.
        groups: Vec<Vec<String>>,
        /// Simulated instant the partition forms, seconds.
        at: f64,
        /// Length of the partition, seconds (may be infinite).
        duration: f64,
    },
    /// A storage server host crashes at `at`: its page cache is lost (the
    /// per-server durability oracle records what survived on its disk) and
    /// it never comes back; clients fail over to the surviving replicas.
    /// Fleet scenarios only; inert elsewhere.
    ServerCrash {
        /// Name of the server host (e.g. `"server00"`).
        host: String,
        /// Simulated instant of the crash, seconds.
        at: f64,
    },
}

/// A deterministic, validated schedule of injected faults. Empty by default:
/// scenarios without a plan run exactly as before.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single power loss at `at`.
    pub fn crash_at(at: f64) -> Self {
        FaultPlan::none().with_event(FaultEvent::Crash { at })
    }

    /// Adds an event to the plan.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The instant of the scheduled crash, if any.
    pub fn crash_time(&self) -> Option<f64> {
        self.events.iter().find_map(|e| match e {
            FaultEvent::Crash { at } => Some(*at),
            _ => None,
        })
    }

    /// Whether the plan contains network fault events ([`FaultEvent::LinkDown`],
    /// [`FaultEvent::Partition`], [`FaultEvent::ServerCrash`]). These drive
    /// the fleet fabric and are inert on non-fleet scenarios.
    pub fn has_net_events(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::LinkDown { .. }
                    | FaultEvent::Partition { .. }
                    | FaultEvent::ServerCrash { .. }
            )
        })
    }

    /// Validates the plan: all instants finite and non-negative, durations
    /// positive (network outage durations may be infinite — a fault that
    /// never heals), `NfsOutage` windows non-overlapping, operation counts
    /// 1-based, at most one crash.
    pub fn validate(&self) -> Result<(), String> {
        let finite_instant = |what: &str, at: f64| {
            if !at.is_finite() || at < 0.0 {
                Err(format!("{what}: instant {at} must be finite and >= 0"))
            } else {
                Ok(())
            }
        };
        // Positive, non-NaN duration; infinity allowed (never heals).
        let positive_duration = |what: &str, duration: f64| {
            if duration.is_nan() || duration <= 0.0 {
                Err(format!("{what}: duration {duration} must be > 0"))
            } else {
                Ok(())
            }
        };
        let mut crashes = 0;
        let mut outages: Vec<(f64, f64)> = Vec::new();
        for event in &self.events {
            match event {
                FaultEvent::Crash { at } => {
                    crashes += 1;
                    if crashes > 1 {
                        return Err("at most one crash per plan".to_string());
                    }
                    finite_instant("crash", *at)?;
                }
                FaultEvent::IoError(spec) => match spec.trigger {
                    Trigger::At(at) => finite_instant("io error", at)?,
                    Trigger::Nth(n) => {
                        if n == 0 {
                            return Err(
                                "io error: operation counts are 1-based (nth = 0)".to_string()
                            );
                        }
                    }
                },
                FaultEvent::DiskFull { at } => finite_instant("disk full", *at)?,
                FaultEvent::NfsOutage { at, duration } => {
                    finite_instant("nfs outage", *at)?;
                    if !duration.is_finite() || *duration <= 0.0 {
                        return Err(format!(
                            "nfs outage: duration {duration} must be finite and > 0"
                        ));
                    }
                    outages.push((*at, *at + *duration));
                }
                FaultEvent::LinkDown { link, at, duration } => {
                    if link.is_empty() {
                        return Err("link down: link name must not be empty".to_string());
                    }
                    finite_instant("link down", *at)?;
                    positive_duration("link down", *duration)?;
                }
                FaultEvent::Partition {
                    groups,
                    at,
                    duration,
                } => {
                    finite_instant("partition", *at)?;
                    positive_duration("partition", *duration)?;
                    if groups.len() < 2 {
                        return Err("partition: need at least two host groups".to_string());
                    }
                    if groups.iter().any(|g| g.is_empty()) {
                        return Err("partition: host groups must not be empty".to_string());
                    }
                    if groups.iter().flatten().any(|h| h.is_empty()) {
                        return Err("partition: host names must not be empty".to_string());
                    }
                }
                FaultEvent::ServerCrash { host, at } => {
                    if host.is_empty() {
                        return Err("server crash: host name must not be empty".to_string());
                    }
                    finite_instant("server crash", *at)?;
                }
            }
        }
        // Overlapping NfsOutage windows would double-inject and make the
        // "retry after the window" semantics ambiguous; reject them.
        outages.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in outages.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(format!(
                    "nfs outage windows overlap: [{}, {}) and [{}, {})",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                ));
            }
        }
        Ok(())
    }
}

/// How (and whether) a task retries operations that fail with *transient*
/// injected faults. Persistent faults and real (non-injected) errors are
/// never retried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Simulated delay before the first retry, seconds.
    pub backoff: f64,
    /// Multiplier applied to the delay after each further failure.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: 0.0,
            backoff_factor: 2.0,
        }
    }

    /// Up to `max_attempts` attempts with exponential backoff starting at
    /// `backoff` seconds (doubling after each failure).
    pub fn new(max_attempts: u32, backoff: f64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: backoff.max(0.0),
            backoff_factor: 2.0,
        }
    }

    /// Overrides the backoff multiplier.
    pub fn with_factor(mut self, factor: f64) -> Self {
        self.backoff_factor = factor.max(1.0);
        self
    }

    /// Ceiling on any single retry delay, seconds (one simulated day).
    /// Exponential backoff saturates here instead of overflowing to
    /// `inf` — a retry loop must never schedule a sleep at an infinite (or
    /// NaN) simulated instant, no matter the attempt count.
    pub const MAX_DELAY: f64 = 86_400.0;

    /// The simulated delay before retrying after `failed_attempts` failures
    /// (1-based): `backoff * factor^(failed_attempts - 1)`, saturating at
    /// [`RetryPolicy::MAX_DELAY`]. Always finite and non-negative, even for
    /// attempt counts where the exponential overflows `f64`.
    pub fn delay(&self, failed_attempts: u32) -> f64 {
        if self.backoff.is_nan() || self.backoff <= 0.0 {
            // Covers backoff == 0 (no delay), negative and NaN backoffs:
            // never produce 0 * inf = NaN.
            return 0.0;
        }
        let exponent = failed_attempts.saturating_sub(1).min(i32::MAX as u32) as i32;
        let d = self.backoff * self.backoff_factor.powi(exponent);
        if d.is_finite() {
            d.clamp(0.0, Self::MAX_DELAY)
        } else {
            Self::MAX_DELAY
        }
    }
}

/// What kind of fault was injected into a failed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFaultKind {
    /// An [`IoErrorSpec`] fired.
    Io,
    /// A [`FaultEvent::DiskFull`] window was active.
    DiskFull,
    /// A [`FaultEvent::NfsOutage`] window was active.
    NfsOutage,
    /// A network-tier failure: the request could not reach (or complete
    /// against) any replica — link down, partition, server loss, or
    /// timeouts exhausting the retry budget.
    Network,
}

/// The payload of an injected operation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: InjectedFaultKind,
    /// The class of the failed operation.
    pub op: OpClass,
    /// The (scoped) file the operation targeted, if any.
    pub file: Option<FileId>,
    /// Simulated instant of the failure.
    pub at: f64,
    /// Whether a retry may succeed.
    pub transient: bool,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            InjectedFaultKind::Io => "EIO",
            InjectedFaultKind::DiskFull => "ENOSPC",
            InjectedFaultKind::NfsOutage => "NFS outage",
            InjectedFaultKind::Network => "network failure",
        };
        let mode = if self.transient {
            "transient"
        } else {
            "persistent"
        };
        match &self.file {
            Some(file) => write!(
                f,
                "injected {kind} on {}({file}) at {:.3}s ({mode})",
                self.op.label(),
                self.at
            ),
            None => write!(
                f,
                "injected {kind} on {} at {:.3}s ({mode})",
                self.op.label(),
                self.at
            ),
        }
    }
}

/// Post-crash durability of one file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileDurability {
    /// Registered file size at the instant of the crash, bytes.
    pub size: f64,
    /// Bytes that had reached stable storage.
    pub durable_bytes: f64,
    /// Dirty bytes lost with the page cache.
    pub lost_bytes: f64,
    /// The durable byte ranges. Byte-exact on the kernel emulator (the
    /// complement of its dirty-range ledger); amount-based back-ends report
    /// the single approximated span `[0, durable_bytes)`.
    pub durable_ranges: Vec<(f64, f64)>,
}

impl FileDurability {
    /// Durability of a fully durable file (synchronous or writethrough write
    /// paths).
    pub fn fully_durable(size: f64) -> Self {
        FileDurability {
            size,
            durable_bytes: size,
            lost_bytes: 0.0,
            durable_ranges: if size > 0.0 {
                vec![(0.0, size)]
            } else {
                vec![]
            },
        }
    }

    /// Durability derived from an amount-based dirty aggregate: `lost` dirty
    /// bytes (clamped to the file size) are lost, the rest survives as one
    /// approximated span.
    pub fn from_dirty_amount(size: f64, lost: f64) -> Self {
        let lost = lost.clamp(0.0, size);
        let durable = size - lost;
        FileDurability {
            size,
            durable_bytes: durable,
            lost_bytes: lost,
            durable_ranges: if durable > 0.0 {
                vec![(0.0, durable)]
            } else {
                vec![]
            },
        }
    }

    /// Durability derived from position-exact lost (dirty) ranges: the
    /// durable ranges are the complement of `lost` within `[0, size)`.
    /// `lost` must be sorted and disjoint (a `RangeSet`'s spans are).
    pub fn from_lost_ranges(size: f64, lost: &[(f64, f64)]) -> Self {
        let mut durable_ranges = Vec::new();
        let mut durable_bytes = 0.0;
        let mut lost_bytes = 0.0;
        let mut cursor = 0.0;
        for &(a, b) in lost {
            let (a, b) = (a.max(0.0).min(size), b.max(0.0).min(size));
            if b <= a {
                continue;
            }
            if a > cursor {
                durable_ranges.push((cursor, a));
                durable_bytes += a - cursor;
            }
            lost_bytes += b - a;
            cursor = cursor.max(b);
        }
        if cursor < size {
            durable_ranges.push((cursor, size));
            durable_bytes += size - cursor;
        }
        FileDurability {
            size,
            durable_bytes,
            lost_bytes,
            durable_ranges,
        }
    }
}

/// What survived an injected crash: the durability of every registered file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CrashReport {
    /// Per-file durability, keyed by (scoped) file id.
    pub files: BTreeMap<FileId, FileDurability>,
}

impl CrashReport {
    /// A report in which every file is fully durable.
    pub fn all_durable(files: impl IntoIterator<Item = (FileId, f64)>) -> Self {
        CrashReport {
            files: files
                .into_iter()
                .map(|(f, size)| (f, FileDurability::fully_durable(size)))
                .collect(),
        }
    }

    /// Total durable bytes across all files.
    pub fn durable_bytes(&self) -> f64 {
        self.files.values().map(|f| f.durable_bytes).sum()
    }

    /// Total lost bytes across all files.
    pub fn lost_bytes(&self) -> f64 {
        self.files.values().map(|f| f.lost_bytes).sum()
    }

    /// Number of files that lost at least one byte.
    pub fn lost_files(&self) -> usize {
        self.files.values().filter(|f| f.lost_bytes > 0.0).count()
    }
}

/// Shared runtime state of one scenario's fault plan: per-event trigger
/// counters, the crash flag, and the crash report once it fires.
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Whether the scenario runs on NFS storage (gates `NfsOutage` events).
    nfs: bool,
    /// Set once the crash watchdog has fired; checked by instances at every
    /// operation boundary.
    crashed: Cell<bool>,
    /// Once set, the gate stops injecting (used by the restart pass).
    disarmed: Cell<bool>,
    /// Matching-operation counters, one per plan event (only `IoError`
    /// events use theirs).
    counters: RefCell<Vec<u64>>,
    /// The durability report captured by the crash watchdog.
    crash_report: RefCell<Option<CrashReport>>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, nfs: bool) -> Rc<Self> {
        let n = plan.events.len();
        Rc::new(FaultState {
            plan,
            nfs,
            crashed: Cell::new(false),
            disarmed: Cell::new(false),
            counters: RefCell::new(vec![0; n]),
            crash_report: RefCell::new(None),
        })
    }

    pub(crate) fn crashed(&self) -> bool {
        self.crashed.get()
    }

    pub(crate) fn record_crash(&self, report: CrashReport) {
        self.crashed.set(true);
        *self.crash_report.borrow_mut() = Some(report);
    }

    pub(crate) fn take_crash_report(&self) -> Option<CrashReport> {
        self.crash_report.borrow_mut().take()
    }

    /// Disarms every event and clears the crash flag: the restart pass runs
    /// fault-free (the recorded crash report is kept).
    pub(crate) fn disarm(&self) {
        self.disarmed.set(true);
        self.crashed.set(false);
    }

    /// The fault gate: decides whether attempt `attempt` (1-based) of an
    /// operation fails with an injected fault. `file` is the *un-scoped*
    /// file name (fault plans are written against the program's names);
    /// `scoped` is the id the failure is reported against. Matching-op
    /// counters advance only on first attempts, so retries of the n-th
    /// matching operation are still "the n-th operation".
    pub(crate) fn check(
        &self,
        now: f64,
        op: OpClass,
        file: Option<&str>,
        scoped: Option<&FileId>,
        attempt: u32,
    ) -> Option<InjectedFault> {
        if self.disarmed.get() || self.plan.is_empty() {
            return None;
        }
        let fault = |kind, transient| {
            Some(InjectedFault {
                kind,
                op,
                file: scoped.cloned(),
                at: now,
                transient,
            })
        };
        for (idx, event) in self.plan.events.iter().enumerate() {
            match event {
                FaultEvent::Crash { .. } => {}
                FaultEvent::IoError(spec) => {
                    if !spec.ops.applies_to(op) {
                        continue;
                    }
                    if let Some(want) = &spec.file {
                        if file != Some(want.as_str()) {
                            continue;
                        }
                    }
                    let count = {
                        let mut counters = self.counters.borrow_mut();
                        if attempt == 1 {
                            counters[idx] += 1;
                        }
                        counters[idx]
                    };
                    let triggered = match spec.trigger {
                        Trigger::At(at) => now >= at,
                        Trigger::Nth(n) => count == n,
                    };
                    if !triggered {
                        continue;
                    }
                    match spec.mode {
                        ErrorMode::Persistent => return fault(InjectedFaultKind::Io, false),
                        ErrorMode::Transient if attempt == 1 => {
                            return fault(InjectedFaultKind::Io, true)
                        }
                        ErrorMode::Transient => {}
                    }
                }
                FaultEvent::DiskFull { at } => {
                    if op == OpClass::Write && now >= *at {
                        return fault(InjectedFaultKind::DiskFull, false);
                    }
                }
                FaultEvent::NfsOutage { at, duration } => {
                    if self.nfs && now >= *at && now < at + duration {
                        return fault(InjectedFaultKind::NfsOutage, true);
                    }
                }
                // Network events are driven by the fleet fabric (timers
                // flipping link/partition/host state), not by the per-op
                // fault gate: the backend itself fails the operation.
                FaultEvent::LinkDown { .. }
                | FaultEvent::Partition { .. }
                | FaultEvent::ServerCrash { .. } => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_validation() {
        assert!(FaultPlan::none().validate().is_ok());
        assert!(FaultPlan::crash_at(5.0).validate().is_ok());
        assert!(FaultPlan::crash_at(-1.0).validate().is_err());
        assert!(FaultPlan::crash_at(f64::NAN).validate().is_err());
        assert!(FaultPlan::crash_at(1.0)
            .with_event(FaultEvent::Crash { at: 2.0 })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::IoError(IoErrorSpec::nth(
                OpClass::Read,
                0,
                ErrorMode::Transient
            )))
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::NfsOutage {
                at: 1.0,
                duration: 0.0
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::NfsOutage {
                at: 1.0,
                duration: 3.0
            })
            .validate()
            .is_ok());
    }

    #[test]
    fn retry_policy_backoff_schedule() {
        let p = RetryPolicy::new(4, 0.5);
        assert_eq!(p.delay(1), 0.5);
        assert_eq!(p.delay(2), 1.0);
        assert_eq!(p.delay(3), 2.0);
        let linear = RetryPolicy::new(3, 0.1).with_factor(1.0);
        assert_eq!(linear.delay(1), 0.1);
        assert_eq!(linear.delay(3), 0.1);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn retry_backoff_saturates_at_extreme_attempt_counts() {
        let p = RetryPolicy::new(u32::MAX, 0.5);
        // 0.5 * 2^(n-1) overflows f64 past n ≈ 1075; every delay must stay
        // finite and capped regardless.
        for attempts in [1u32, 10, 100, 1_075, 10_000, 1_000_000, u32::MAX] {
            let d = p.delay(attempts);
            assert!(d.is_finite(), "delay({attempts}) = {d}");
            assert!(d <= RetryPolicy::MAX_DELAY, "delay({attempts}) = {d}");
            assert!(d >= 0.0);
        }
        assert_eq!(p.delay(10_000), RetryPolicy::MAX_DELAY);
        assert_eq!(p.delay(u32::MAX), RetryPolicy::MAX_DELAY);
        // Monotone non-decreasing up to the cap.
        assert!(p.delay(2) >= p.delay(1));
        assert!(p.delay(1_000) >= p.delay(999));
    }

    #[test]
    fn retry_backoff_degenerate_parameters_never_produce_nan() {
        // Zero backoff stays zero (0 * inf would be NaN).
        let zero = RetryPolicy {
            max_attempts: 5,
            backoff: 0.0,
            backoff_factor: f64::INFINITY,
        };
        assert_eq!(zero.delay(u32::MAX), 0.0);
        // Hand-built hostile values through the public fields.
        let hostile = RetryPolicy {
            max_attempts: 5,
            backoff: f64::NAN,
            backoff_factor: 2.0,
        };
        assert_eq!(hostile.delay(3), 0.0);
        let neg = RetryPolicy {
            max_attempts: 5,
            backoff: -1.0,
            backoff_factor: 2.0,
        };
        assert_eq!(neg.delay(3), 0.0);
        let inf_backoff = RetryPolicy {
            max_attempts: 5,
            backoff: f64::INFINITY,
            backoff_factor: 2.0,
        };
        assert_eq!(inf_backoff.delay(1), RetryPolicy::MAX_DELAY);
        // A shrinking factor (only reachable through the public fields — the
        // builder clamps to >= 1) underflows toward zero, not NaN.
        let shrink = RetryPolicy {
            max_attempts: 5,
            backoff: 1.0,
            backoff_factor: 0.5,
        };
        let d = shrink.delay(10_000);
        assert!(d.is_finite() && (0.0..1e-300).contains(&d), "delay = {d}");
    }

    #[test]
    fn overlapping_nfs_outage_windows_are_rejected() {
        let overlapping = FaultPlan::none()
            .with_event(FaultEvent::NfsOutage {
                at: 1.0,
                duration: 5.0,
            })
            .with_event(FaultEvent::NfsOutage {
                at: 4.0,
                duration: 2.0,
            });
        assert!(overlapping.validate().is_err());
        // Order in the plan does not matter.
        let reversed = FaultPlan::none()
            .with_event(FaultEvent::NfsOutage {
                at: 4.0,
                duration: 2.0,
            })
            .with_event(FaultEvent::NfsOutage {
                at: 1.0,
                duration: 5.0,
            });
        assert!(reversed.validate().is_err());
        // Back-to-back windows (second starts exactly where the first ends)
        // are allowed.
        let adjacent = FaultPlan::none()
            .with_event(FaultEvent::NfsOutage {
                at: 1.0,
                duration: 3.0,
            })
            .with_event(FaultEvent::NfsOutage {
                at: 4.0,
                duration: 2.0,
            });
        assert!(adjacent.validate().is_ok());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::NfsOutage {
                at: f64::NAN,
                duration: 1.0,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::NfsOutage {
                at: -2.0,
                duration: 1.0,
            })
            .validate()
            .is_err());
    }

    #[test]
    fn network_event_validation() {
        let ok = FaultPlan::none()
            .with_event(FaultEvent::LinkDown {
                link: "srv0-link".into(),
                at: 2.0,
                duration: 3.0,
            })
            .with_event(FaultEvent::Partition {
                groups: vec![vec!["client00".into()], vec!["server0".into()]],
                at: 5.0,
                duration: f64::INFINITY, // never heals: allowed
            })
            .with_event(FaultEvent::ServerCrash {
                host: "server0".into(),
                at: 8.0,
            });
        assert!(ok.validate().is_ok());
        assert!(ok.has_net_events());
        assert!(!FaultPlan::crash_at(1.0).has_net_events());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::LinkDown {
                link: String::new(),
                at: 2.0,
                duration: 3.0,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::LinkDown {
                link: "l".into(),
                at: 2.0,
                duration: 0.0,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::LinkDown {
                link: "l".into(),
                at: f64::NAN,
                duration: 1.0,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::Partition {
                groups: vec![vec!["a".into()]],
                at: 0.0,
                duration: 1.0,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::Partition {
                groups: vec![vec!["a".into()], vec![]],
                at: 0.0,
                duration: 1.0,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::ServerCrash {
                host: "server0".into(),
                at: -1.0,
            })
            .validate()
            .is_err());
        // Network events never trip the per-op fault gate.
        let state = FaultState::new(ok, false);
        assert!(state.check(10.0, OpClass::Read, None, None, 1).is_none());
    }

    #[test]
    fn nth_transient_error_fires_once_and_retries_succeed() {
        let plan = FaultPlan::none().with_event(FaultEvent::IoError(IoErrorSpec::nth(
            OpClass::Write,
            2,
            ErrorMode::Transient,
        )));
        let state = FaultState::new(plan, false);
        // First write: not the 2nd matching op.
        assert!(state.check(0.0, OpClass::Write, None, None, 1).is_none());
        // Second write fails on the first attempt...
        let fault = state.check(1.0, OpClass::Write, None, None, 1).unwrap();
        assert!(fault.transient);
        assert_eq!(fault.kind, InjectedFaultKind::Io);
        // ...and succeeds on the retry (still the 2nd matching op).
        assert!(state.check(1.5, OpClass::Write, None, None, 2).is_none());
        // Later writes are unaffected, and reads never matched.
        assert!(state.check(2.0, OpClass::Write, None, None, 1).is_none());
        assert!(state.check(2.0, OpClass::Read, None, None, 1).is_none());
    }

    #[test]
    fn persistent_at_error_fails_every_attempt_after_the_instant() {
        let plan = FaultPlan::none().with_event(FaultEvent::IoError(
            IoErrorSpec::at(OpClass::Read, 10.0, ErrorMode::Persistent).on_file("data"),
        ));
        let state = FaultState::new(plan, false);
        assert!(state
            .check(5.0, OpClass::Read, Some("data"), None, 1)
            .is_none());
        let f = state
            .check(10.0, OpClass::Read, Some("data"), None, 1)
            .unwrap();
        assert!(!f.transient);
        // Retries fail too, and other files are unaffected.
        assert!(state
            .check(11.0, OpClass::Read, Some("data"), None, 3)
            .is_some());
        assert!(state
            .check(11.0, OpClass::Read, Some("other"), None, 1)
            .is_none());
    }

    #[test]
    fn disk_full_gates_writes_only() {
        let state = FaultState::new(
            FaultPlan::none().with_event(FaultEvent::DiskFull { at: 3.0 }),
            false,
        );
        assert!(state.check(2.9, OpClass::Write, None, None, 1).is_none());
        let f = state.check(3.0, OpClass::Write, None, None, 1).unwrap();
        assert_eq!(f.kind, InjectedFaultKind::DiskFull);
        assert!(!f.transient);
        assert!(state.check(4.0, OpClass::Read, None, None, 1).is_none());
        assert!(state.check(4.0, OpClass::Fsync, None, None, 1).is_none());
    }

    #[test]
    fn nfs_outage_is_a_transient_window_on_nfs_only() {
        let plan = FaultPlan::none().with_event(FaultEvent::NfsOutage {
            at: 5.0,
            duration: 2.0,
        });
        let local = FaultState::new(plan.clone(), false);
        assert!(local.check(6.0, OpClass::Read, None, None, 1).is_none());
        let nfs = FaultState::new(plan, true);
        assert!(nfs.check(4.9, OpClass::Read, None, None, 1).is_none());
        let f = nfs.check(5.0, OpClass::Read, None, None, 1).unwrap();
        assert_eq!(f.kind, InjectedFaultKind::NfsOutage);
        assert!(f.transient);
        // Still failing inside the window even on retries; clear after it.
        assert!(nfs.check(6.9, OpClass::Sync, None, None, 4).is_some());
        assert!(nfs.check(7.0, OpClass::Sync, None, None, 5).is_none());
    }

    #[test]
    fn disarm_silences_every_event() {
        let state = FaultState::new(
            FaultPlan::none().with_event(FaultEvent::DiskFull { at: 0.0 }),
            false,
        );
        assert!(state.check(1.0, OpClass::Write, None, None, 1).is_some());
        state.disarm();
        assert!(state.check(1.0, OpClass::Write, None, None, 1).is_none());
    }

    #[test]
    fn durability_from_lost_ranges_is_the_complement() {
        let d = FileDurability::from_lost_ranges(100.0, &[(10.0, 20.0), (50.0, 70.0)]);
        assert_eq!(
            d.durable_ranges,
            vec![(0.0, 10.0), (20.0, 50.0), (70.0, 100.0)]
        );
        assert_eq!(d.durable_bytes, 70.0);
        assert_eq!(d.lost_bytes, 30.0);
        // Ranges past EOF are clipped.
        let d = FileDurability::from_lost_ranges(50.0, &[(40.0, 80.0)]);
        assert_eq!(d.lost_bytes, 10.0);
        assert_eq!(d.durable_ranges, vec![(0.0, 40.0)]);
        // Empty lost set: fully durable.
        let d = FileDurability::from_lost_ranges(30.0, &[]);
        assert_eq!(d, FileDurability::fully_durable(30.0));
    }

    #[test]
    fn durability_from_dirty_amount_clamps() {
        let d = FileDurability::from_dirty_amount(100.0, 30.0);
        assert_eq!(d.durable_bytes, 70.0);
        assert_eq!(d.durable_ranges, vec![(0.0, 70.0)]);
        // The amount-based models can report more dirty bytes than the file
        // holds (position-blind rewrites); losses clamp to the file size.
        let d = FileDurability::from_dirty_amount(100.0, 150.0);
        assert_eq!(d.lost_bytes, 100.0);
        assert_eq!(d.durable_bytes, 0.0);
        assert!(d.durable_ranges.is_empty());
    }

    #[test]
    fn crash_report_totals() {
        let mut report = CrashReport::all_durable([("a".into(), 100.0), ("b".into(), 50.0)]);
        assert_eq!(report.durable_bytes(), 150.0);
        assert_eq!(report.lost_bytes(), 0.0);
        assert_eq!(report.lost_files(), 0);
        report
            .files
            .insert("c".into(), FileDurability::from_dirty_amount(80.0, 30.0));
        assert_eq!(report.durable_bytes(), 200.0);
        assert_eq!(report.lost_bytes(), 30.0);
        assert_eq!(report.lost_files(), 1);
    }

    #[test]
    fn injected_fault_displays_context() {
        let fault = InjectedFault {
            kind: InjectedFaultKind::Io,
            op: OpClass::Write,
            file: Some("wal".into()),
            at: 1.25,
            transient: true,
        };
        let msg = fault.to_string();
        assert!(msg.contains("EIO"), "{msg}");
        assert!(msg.contains("write"), "{msg}");
        assert!(msg.contains("wal"), "{msg}");
        assert!(msg.contains("transient"), "{msg}");
    }
}
