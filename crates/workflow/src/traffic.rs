//! Request-serving traffic tier: synthetic load generation over any
//! [`IoBackend`].
//!
//! Where a [`TaskSpec`](crate::TaskSpec) program is a *fixed* sequence of
//! operations, a [`TrafficSpec`] describes a *stream* of requests against a
//! catalog of files:
//!
//! * **Arrival process** — [`LoopMode::Open`] issues requests at a target
//!   rate with Poisson (or deterministic) interarrival times regardless of
//!   how fast the system serves them, so queueing delay shows up in the
//!   latency of every request behind a slow one. [`LoopMode::Closed`] runs
//!   `clients` concurrent loops that each wait for their response and think
//!   before the next request, so offered load self-throttles under
//!   saturation.
//! * **Popularity** — which file a request touches is drawn from a
//!   Zipf(α) distribution over the catalog: rank-`k` popularity ∝ `k^-α`.
//!   α = 0 is uniform; α ≈ 1 matches classic web/content-serving skew.
//! * **Op mix** — each request is a read with probability
//!   [`TrafficSpec::read_fraction`], else a write; request sizes and offsets
//!   are drawn from the request-size distribution within the target file.
//! * **Catalog** — files are created lazily on first touch, sized by a
//!   per-file size distribution around [`TrafficSpec::mean_file_size`], so
//!   catalogs of thousands to millions of files cost nothing until touched.
//!
//! Every random draw comes from seeded, generator-local xorshift streams
//! computed *before* the simulation starts, so runs are bit-reproducible at
//! any harness thread count.
//!
//! Latencies are recorded per op class into fixed log-bucket
//! [`LatencyHistogram`]s (deterministic: no sampling, no reservoir) and
//! surfaced as p50/p90/p99/p999 in a [`TrafficGenReport`], next to
//! throughput and time-weighted in-flight-concurrency statistics.
//!
//! # Tenancy
//!
//! A [`TenantSpec`] assigns the generator's catalog to a cache group with
//! memcg-style limits: after each completed request the generator asks the
//! back-end to enforce `max_cache_bytes` / `max_dirty_bytes` on its group
//! (writing back and evicting *only that group's* pages — see
//! `MemoryManager::enforce_group_limits` and
//! `KernelCache::enforce_group_limits`). Two generators on one host can
//! therefore model a noisy neighbor with and without cache isolation.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use des::SimContext;
use pagecache::{FileId, IoOpStats};

use crate::backend::{Backend, IoBackend, ScenarioError};
use crate::faults::{FaultState, OpClass};

/// Lowest latency resolved by the histogram, seconds. Everything below lands
/// in the first bucket.
const HIST_LOW: f64 = 1e-6;
/// Geometric growth factor between bucket bounds. The quantile error of the
/// histogram is bounded by one bucket: a factor of `HIST_GROWTH`.
const HIST_GROWTH: f64 = 1.25;
/// Number of buckets: covers `1e-6 s .. ~2e6 s` before the overflow bucket.
const HIST_BUCKETS: usize = 128;

/// Deterministic xorshift64 stream (same shift triple as the harness PRNG).
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // Scramble the seed so consecutive seeds give unrelated streams, and
        // keep the state nonzero (xorshift fixes the zero state).
        XorShift(
            seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                | 1,
        )
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf(α) sampler over ranks `0..n` by inversion of the precomputed
/// cumulative weights (rank-`k` weight `(k+1)^-α`). Sampling is a binary
/// search: O(log n) per draw, O(n) setup.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for a catalog of `n ≥ 1` files.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "Zipf catalog must hold at least one file");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "Zipf alpha must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += (rank as f64).powf(-alpha);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a rank in `0..n`.
    pub fn sample(&self, u: f64) -> usize {
        let total = *self.cumulative.last().expect("non-empty catalog");
        let target = u * total;
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.cumulative.len() - 1)
    }
}

/// Fixed log-bucket latency histogram.
///
/// Bucket `i` covers `[HIST_LOW·G^(i-1), HIST_LOW·G^i)` with `G = 1.25`
/// (`HIST_GROWTH`; bucket 0 covers everything below `HIST_LOW = 1 µs`, the last
/// bucket everything above the top bound), so any quantile is off from the
/// exact sample quantile by at most one bucket — a factor of `G`. Bucket
/// bounds are fixed at construction: recording and quantile extraction are
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    uppers: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let mut uppers = Vec::with_capacity(HIST_BUCKETS);
        let mut bound = HIST_LOW;
        for _ in 0..HIST_BUCKETS - 1 {
            uppers.push(bound);
            bound *= HIST_GROWTH;
        }
        uppers.push(f64::INFINITY);
        LatencyHistogram {
            uppers,
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Records one sample (negative samples clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        let bucket = self.uppers.partition_point(|&u| u <= v);
        self.counts[bucket.min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact maximum of the recorded samples (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`): the upper bound of the bucket holding
    /// the sample of rank `⌈q·count⌉`, clamped to the exact observed
    /// `[min, max]`. Within a factor of `HIST_GROWTH` of the exact sample
    /// quantile; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.uppers[i].clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// How requests are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopMode {
    /// Open loop: requests arrive at `rate` per second regardless of how
    /// fast they complete. `poisson` draws exponential interarrival gaps;
    /// otherwise arrivals are deterministic at `1/rate`.
    Open {
        /// Target arrival rate, requests per second.
        rate: f64,
        /// Poisson (exponential gaps) vs. deterministic arrivals.
        poisson: bool,
    },
    /// Closed loop: `clients` concurrent clients that each issue a request,
    /// wait for the response, think for `think_time` seconds, and repeat.
    Closed {
        /// Number of concurrent clients.
        clients: usize,
        /// Per-client pause between response and next request, seconds.
        think_time: f64,
    },
}

/// Memcg-style cache limits for one traffic generator's catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Maximum page-cache bytes (clean + dirty) the tenant's files may hold.
    pub max_cache_bytes: f64,
    /// Maximum dirty bytes the tenant's files may hold.
    pub max_dirty_bytes: f64,
}

impl TenantSpec {
    /// A tenant capped at `max_cache_bytes` of cache, with the dirty limit
    /// at half the cache limit.
    pub fn capped(max_cache_bytes: f64) -> Self {
        TenantSpec {
            max_cache_bytes,
            max_dirty_bytes: max_cache_bytes / 2.0,
        }
    }
}

/// One synthetic request stream: arrival process, popularity skew, op mix,
/// catalog shape, and (optionally) tenancy limits. All knobs default to a
/// modest read-mostly Zipf workload; every random stream derives from
/// [`TrafficSpec::seed`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Generator name; also the directory prefix of its catalog files
    /// (`traffic/<name>/f<idx>`).
    pub name: String,
    /// Open- or closed-loop issue discipline.
    pub mode: LoopMode,
    /// Total number of requests the generator issues.
    pub requests: usize,
    /// Number of files in the catalog (created lazily on first touch).
    pub catalog_files: usize,
    /// Mean file size, bytes; per-file sizes are uniform in
    /// `[0.5, 1.5) × mean`.
    pub mean_file_size: f64,
    /// Zipf popularity exponent α (0 = uniform).
    pub zipf_alpha: f64,
    /// Probability that a request is a read (the rest are writes).
    pub read_fraction: f64,
    /// Mean request size, bytes; per-request sizes are uniform in
    /// `[0.5, 1.5) × mean`, clamped to the target file.
    pub request_bytes: f64,
    /// Seed of the generator's random streams.
    pub seed: u64,
    /// Number of leading requests whose latencies are *not* recorded in the
    /// histograms (cache warmup): percentiles then measure steady state
    /// rather than the cold start. All other statistics still count warmup
    /// requests.
    pub warmup: usize,
    /// Cache-group limits; `None` runs without isolation.
    pub tenant: Option<TenantSpec>,
}

impl TrafficSpec {
    fn base(name: impl Into<String>, mode: LoopMode, requests: usize) -> Self {
        TrafficSpec {
            name: name.into(),
            mode,
            requests,
            catalog_files: 100,
            mean_file_size: 4.0 * 1e6,
            zipf_alpha: 1.0,
            read_fraction: 0.9,
            request_bytes: 1.0 * 1e6,
            seed: 1,
            warmup: 0,
            tenant: None,
        }
    }

    /// An open-loop generator with Poisson arrivals at `rate` requests/s.
    pub fn open(name: impl Into<String>, rate: f64, requests: usize) -> Self {
        Self::base(
            name,
            LoopMode::Open {
                rate,
                poisson: true,
            },
            requests,
        )
    }

    /// A closed-loop generator of `clients` concurrent clients with the
    /// given think time.
    pub fn closed(
        name: impl Into<String>,
        clients: usize,
        think_time: f64,
        requests: usize,
    ) -> Self {
        TrafficSpec::base(
            name,
            LoopMode::Closed {
                clients,
                think_time,
            },
            requests,
        )
    }

    /// Switches an open-loop generator to deterministic (non-Poisson)
    /// arrivals; no-op for closed loops.
    pub fn with_deterministic_arrivals(mut self) -> Self {
        if let LoopMode::Open { rate, .. } = self.mode {
            self.mode = LoopMode::Open {
                rate,
                poisson: false,
            };
        }
        self
    }

    /// Sets the catalog shape: number of files and mean file size.
    pub fn with_catalog(mut self, files: usize, mean_file_size: f64) -> Self {
        self.catalog_files = files;
        self.mean_file_size = mean_file_size;
        self
    }

    /// Sets the Zipf popularity exponent.
    pub fn with_zipf(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Sets the fraction of requests that are reads.
    pub fn with_read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction;
        self
    }

    /// Sets the mean request size in bytes.
    pub fn with_request_bytes(mut self, bytes: f64) -> Self {
        self.request_bytes = bytes;
        self
    }

    /// Sets the seed of the generator's random streams.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Excludes the first `warmup` requests from the latency histograms.
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Attaches tenancy limits (cache-group isolation).
    pub fn with_tenant(mut self, tenant: TenantSpec) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Validates the spec before any simulation runs.
    pub fn validate(&self) -> Result<(), String> {
        let err = |msg: String| Err(format!("traffic '{}': {msg}", self.name));
        if self.name.is_empty() {
            return Err("traffic generator name must not be empty".to_string());
        }
        if self.requests == 0 {
            return err("at least one request is required".to_string());
        }
        if self.catalog_files == 0 {
            return err("the catalog must hold at least one file".to_string());
        }
        if !(self.mean_file_size.is_finite() && self.mean_file_size > 0.0) {
            return err(format!(
                "mean file size {} must be finite and > 0",
                self.mean_file_size
            ));
        }
        if !(self.zipf_alpha.is_finite() && self.zipf_alpha >= 0.0) {
            return err(format!(
                "zipf alpha {} must be finite and >= 0",
                self.zipf_alpha
            ));
        }
        if !(0.0..=1.0).contains(&self.read_fraction) || self.read_fraction.is_nan() {
            return err(format!(
                "read fraction {} must be within [0, 1]",
                self.read_fraction
            ));
        }
        if !(self.request_bytes.is_finite() && self.request_bytes > 0.0) {
            return err(format!(
                "request size {} must be finite and > 0",
                self.request_bytes
            ));
        }
        if self.warmup >= self.requests {
            return err(format!(
                "warmup {} must leave at least one measured request of {}",
                self.warmup, self.requests
            ));
        }
        match self.mode {
            LoopMode::Open { rate, .. } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return err(format!("open-loop rate {rate} must be finite and > 0"));
                }
            }
            LoopMode::Closed {
                clients,
                think_time,
            } => {
                if clients == 0 {
                    return err("closed loop needs at least one client".to_string());
                }
                if !(think_time.is_finite() && think_time >= 0.0) {
                    return err(format!("think time {think_time} must be finite and >= 0"));
                }
            }
        }
        if let Some(t) = &self.tenant {
            if !(t.max_cache_bytes.is_finite() && t.max_cache_bytes > 0.0) {
                return err(format!(
                    "tenant cache limit {} must be finite and > 0",
                    t.max_cache_bytes
                ));
            }
            if !(t.max_dirty_bytes.is_finite() && t.max_dirty_bytes >= 0.0) {
                return err(format!(
                    "tenant dirty limit {} must be finite and >= 0",
                    t.max_dirty_bytes
                ));
            }
            if t.max_dirty_bytes > t.max_cache_bytes {
                return err(format!(
                    "tenant dirty limit {} exceeds its cache limit {}",
                    t.max_dirty_bytes, t.max_cache_bytes
                ));
            }
        }
        Ok(())
    }
}

/// Latency percentile summary of one op class of one generator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of completed operations of the class.
    pub count: u64,
    /// Exact mean latency, seconds.
    pub mean: f64,
    /// Median latency (log-bucket quantile), seconds.
    pub p50: f64,
    /// 90th percentile latency, seconds.
    pub p90: f64,
    /// 99th percentile latency, seconds.
    pub p99: f64,
    /// 99.9th percentile latency, seconds.
    pub p999: f64,
    /// Exact maximum latency, seconds.
    pub max: f64,
}

impl LatencySummary {
    fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
        }
    }
}

/// Result of one traffic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficGenReport {
    /// Generator name.
    pub name: String,
    /// Requests issued (dispatched past the fault gate or failed at it).
    pub issued: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests killed by injected faults.
    pub failed: u64,
    /// Latency summary of completed reads. Open-loop latency counts from the
    /// request's *intended arrival* (queueing included); closed-loop latency
    /// is pure service time.
    pub read_latency: LatencySummary,
    /// Latency summary of completed writes.
    pub write_latency: LatencySummary,
    /// Completed requests per second of generator activity.
    pub throughput_rps: f64,
    /// Time-weighted mean number of in-flight requests.
    pub mean_in_flight: f64,
    /// Peak number of simultaneously in-flight requests.
    pub peak_in_flight: u64,
    /// Bytes read by completed read requests.
    pub bytes_read: f64,
    /// Bytes written by completed write requests.
    pub bytes_written: f64,
    /// Fraction of read bytes served from the page cache.
    pub cache_hit_ratio: f64,
    /// Bytes evicted by tenant-limit enforcement (0 without a tenant).
    pub limit_evicted: f64,
    /// Bytes flushed by tenant-limit enforcement (0 without a tenant).
    pub limit_flushed: f64,
}

/// Results of every traffic generator of a scenario, in spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Per-generator reports.
    pub generators: Vec<TrafficGenReport>,
}

impl TrafficReport {
    /// The report of the generator named `name`, if any.
    pub fn generator(&self, name: &str) -> Option<&TrafficGenReport> {
        self.generators.iter().find(|g| g.name == name)
    }
}

/// A fully resolved request: target file (by catalog index), op class,
/// range, and the gap to the previous arrival (open loop) — precomputed
/// deterministically before the simulation starts.
#[derive(Debug, Clone, Copy)]
struct Request {
    file: usize,
    is_read: bool,
    offset: f64,
    len: f64,
    gap: f64,
    /// `false` for warmup requests: the request runs but its latency is not
    /// recorded.
    record: bool,
}

/// Mutable run state of one generator, shared by its request tasks.
struct GenState {
    created: HashSet<usize>,
    issued: u64,
    completed: u64,
    failed: u64,
    read_hist: LatencyHistogram,
    write_hist: LatencyHistogram,
    io: IoOpStats,
    bytes_read: f64,
    bytes_written: f64,
    in_flight: u64,
    peak_in_flight: u64,
    conc_integral: f64,
    last_change: f64,
    last_done: f64,
    limit_evicted: f64,
    limit_flushed: f64,
}

impl GenState {
    fn new(start: f64) -> Self {
        GenState {
            created: HashSet::new(),
            issued: 0,
            completed: 0,
            failed: 0,
            read_hist: LatencyHistogram::new(),
            write_hist: LatencyHistogram::new(),
            io: IoOpStats::default(),
            bytes_read: 0.0,
            bytes_written: 0.0,
            in_flight: 0,
            peak_in_flight: 0,
            conc_integral: 0.0,
            last_change: start,
            last_done: start,
            limit_evicted: 0.0,
            limit_flushed: 0.0,
        }
    }

    fn note_in_flight(&mut self, now: f64, delta: i64) {
        self.conc_integral += self.in_flight as f64 * (now - self.last_change);
        self.last_change = now;
        self.in_flight = self.in_flight.checked_add_signed(delta).expect("in-flight");
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
    }
}

/// Deterministic per-file size: uniform in `[0.5, 1.5) × mean`, derived from
/// the spec seed and the catalog index only (not from draw order).
fn file_size(spec: &TrafficSpec, idx: usize) -> f64 {
    let mut rng = XorShift::new(spec.seed ^ (idx as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    spec.mean_file_size * (0.5 + rng.next_f64())
}

/// Precomputes the full request stream of a generator from its seed.
fn plan_requests(spec: &TrafficSpec) -> Vec<Request> {
    let zipf = ZipfSampler::new(spec.catalog_files, spec.zipf_alpha);
    // Independent streams per concern: adding a knob that consumes more
    // draws from one stream cannot shift the draws of another.
    let mut pop = XorShift::new(spec.seed ^ 0x504f_5055_4c41_5249); // "POPULARI"
    let mut op = XorShift::new(spec.seed ^ 0x4f50_434c_4153_5321); // "OPCLASS!"
    let mut size = XorShift::new(spec.seed ^ 0x5245_5153_495a_4553); // "REQSIZES"
    let mut time = XorShift::new(spec.seed ^ 0x4152_5249_5641_4c53); // "ARRIVALS"
    let mut requests = Vec::with_capacity(spec.requests);
    for index in 0..spec.requests {
        let file = zipf.sample(pop.next_f64());
        let fsize = file_size(spec, file);
        let is_read = op.next_f64() < spec.read_fraction;
        let len = (spec.request_bytes * (0.5 + size.next_f64())).min(fsize);
        let offset = size.next_f64() * (fsize - len);
        let gap = match spec.mode {
            LoopMode::Open { rate, poisson } => {
                if poisson {
                    -(1.0 - time.next_f64()).ln() / rate
                } else {
                    1.0 / rate
                }
            }
            LoopMode::Closed { think_time, .. } => think_time,
        };
        requests.push(Request {
            file,
            is_read,
            offset,
            len,
            gap,
            record: index >= spec.warmup,
        });
    }
    requests
}

/// The catalog file id of index `idx` of generator `spec`.
fn catalog_file(spec: &TrafficSpec, idx: usize) -> FileId {
    FileId::new(format!("traffic/{}/f{idx:06}", spec.name))
}

/// The per-generator context shared by every in-flight request of one
/// generator: the engine handle, the back-end, the spec, the tenant cache
/// group, the mutable stats, and the fault schedule.
struct GenCtx {
    ctx: SimContext,
    backend: Backend,
    spec: Rc<TrafficSpec>,
    group: u32,
    state: Rc<RefCell<GenState>>,
    faults: Rc<FaultState>,
}

/// Executes one request end to end: fault gate, lazy catalog creation, the
/// I/O itself, latency/stat recording, and tenant-limit enforcement.
/// `base` is the instant latency is measured from (intended arrival for
/// open loops, issue time for closed loops).
async fn execute_request(gen: Rc<GenCtx>, req: Request, base: f64) -> Result<(), ScenarioError> {
    let GenCtx {
        ctx,
        backend,
        spec,
        group,
        state,
        faults,
    } = &*gen;
    let group = *group;
    let id = catalog_file(spec, req.file);
    let class = if req.is_read {
        OpClass::Read
    } else {
        OpClass::Write
    };
    state.borrow_mut().issued += 1;
    if let Some(_fault) = faults.check(ctx.now().as_secs(), class, Some(id.name()), Some(&id), 1) {
        let mut s = state.borrow_mut();
        s.failed += 1;
        s.last_done = ctx.now().as_secs();
        return Ok(());
    }
    // Lazy catalog: the file springs into existence (and into the tenant's
    // cache group) on first touch.
    {
        let mut s = state.borrow_mut();
        if s.created.insert(req.file) {
            backend.create_file(&id, file_size(spec, req.file))?;
            if spec.tenant.is_some() {
                backend.set_file_group(&id, group);
            }
        }
    }
    state.borrow_mut().note_in_flight(ctx.now().as_secs(), 1);
    let result = if req.is_read {
        backend.read_range(&id, req.offset, req.len).await
    } else {
        backend.write_range(&id, req.offset, req.len).await
    };
    let now = ctx.now().as_secs();
    state.borrow_mut().note_in_flight(now, -1);
    match result {
        Ok(stats) => {
            let mut s = state.borrow_mut();
            let latency = now - base;
            if req.is_read {
                if req.record {
                    s.read_hist.record(latency);
                }
                s.bytes_read += req.len;
            } else {
                if req.record {
                    s.write_hist.record(latency);
                }
                s.bytes_written += req.len;
            }
            s.io.merge(&stats);
            s.completed += 1;
            s.last_done = now;
        }
        Err(ScenarioError::Injected(_fault)) => {
            let mut s = state.borrow_mut();
            s.failed += 1;
            s.last_done = now;
        }
        Err(error) => return Err(error),
    }
    if let Some(tenant) = &spec.tenant {
        let (evicted, flushed) = backend
            .enforce_group_limits(group, tenant.max_cache_bytes, tenant.max_dirty_bytes)
            .await;
        let mut s = state.borrow_mut();
        s.limit_evicted += evicted;
        s.limit_flushed += flushed;
    }
    Ok(())
}

/// Runs one traffic generator to completion and returns its report.
/// `group` is the cache-group id its catalog is assigned to when a tenant
/// spec is present.
pub(crate) async fn run_generator(
    ctx: &SimContext,
    backend: &Backend,
    spec: &TrafficSpec,
    group: u32,
    faults: &Rc<FaultState>,
) -> Result<TrafficGenReport, ScenarioError> {
    let requests = plan_requests(spec);
    let start = ctx.now().as_secs();
    let state = Rc::new(RefCell::new(GenState::new(start)));
    let gen = Rc::new(GenCtx {
        ctx: ctx.clone(),
        backend: backend.clone(),
        spec: Rc::new(spec.clone()),
        group,
        state: Rc::clone(&state),
        faults: Rc::clone(faults),
    });
    match spec.mode {
        LoopMode::Open { .. } => {
            // Dispatcher: sleep to each precomputed arrival instant and spawn
            // the request as its own task, so a slow response delays nothing
            // behind it (the open-loop property).
            let mut handles = Vec::with_capacity(requests.len());
            let mut arrival = start;
            for req in requests {
                arrival += req.gap;
                let now = ctx.now().as_secs();
                if arrival > now {
                    ctx.sleep(arrival - now).await;
                }
                if faults.crashed() {
                    break;
                }
                let fut = execute_request(Rc::clone(&gen), req, arrival);
                handles.push(ctx.spawn(fut));
            }
            for handle in handles {
                handle.await?;
            }
        }
        LoopMode::Closed { clients, .. } => {
            let mut handles = Vec::with_capacity(clients);
            for client in 0..clients {
                let ctx2 = ctx.clone();
                let gen = Rc::clone(&gen);
                let faults = Rc::clone(faults);
                // Client `c` serves requests c, c+N, c+2N, ... in order, so
                // the partition (and with it every random draw) is
                // independent of completion timing.
                let mine: Vec<Request> = requests
                    .iter()
                    .skip(client)
                    .step_by(clients)
                    .copied()
                    .collect();
                handles.push(ctx.spawn(async move {
                    for req in mine {
                        if faults.crashed() {
                            break;
                        }
                        let base = ctx2.now().as_secs();
                        execute_request(Rc::clone(&gen), req, base).await?;
                        if req.gap > 0.0 {
                            ctx2.sleep(req.gap).await;
                        }
                    }
                    Ok::<(), ScenarioError>(())
                }));
            }
            for handle in handles {
                handle.await?;
            }
        }
    }
    let state = state.borrow();
    let elapsed = state.last_done - start;
    Ok(TrafficGenReport {
        name: spec.name.clone(),
        issued: state.issued,
        completed: state.completed,
        failed: state.failed,
        read_latency: LatencySummary::from_histogram(&state.read_hist),
        write_latency: LatencySummary::from_histogram(&state.write_hist),
        throughput_rps: if elapsed > 0.0 {
            state.completed as f64 / elapsed
        } else {
            0.0
        },
        mean_in_flight: if elapsed > 0.0 {
            state.conc_integral / elapsed
        } else {
            0.0
        },
        peak_in_flight: state.peak_in_flight,
        bytes_read: state.bytes_read,
        bytes_written: state.bytes_written,
        cache_hit_ratio: state.io.cache_hit_ratio(),
        limit_evicted: state.limit_evicted,
        limit_flushed: state.limit_flushed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // --- Zipf sampler ---

    fn draw_counts(n: usize, alpha: f64, draws: usize) -> Vec<u64> {
        let zipf = ZipfSampler::new(n, alpha);
        let mut rng = XorShift::new(42);
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[zipf.sample(rng.next_f64())] += 1;
        }
        counts
    }

    /// Least-squares slope of ln(count) against ln(rank) over the top ranks;
    /// for a Zipf(α) sample it should be ≈ -α.
    fn log_log_slope(counts: &[u64], top: usize) -> f64 {
        let points: Vec<(f64, f64)> = counts
            .iter()
            .take(top)
            .enumerate()
            .map(|(i, &c)| ((i as f64 + 1.0).ln(), (c.max(1) as f64).ln()))
            .collect();
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }

    #[test]
    fn zipf_frequency_follows_rank_slope() {
        for alpha in [0.8, 1.0, 1.2] {
            let counts = draw_counts(100, alpha, 100_000);
            // Frequencies must decay with rank.
            assert!(counts[0] > counts[10] && counts[10] > counts[50]);
            let slope = log_log_slope(&counts, 20);
            assert!(
                (slope + alpha).abs() < 0.1,
                "alpha {alpha}: slope {slope}, expected {}",
                -alpha
            );
        }
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let n = 50;
        let draws = 100_000;
        let counts = draw_counts(n, 0.0, draws);
        let expected = draws as f64 / n as f64;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.15 * expected,
                "rank {rank}: {c} draws, expected ~{expected}"
            );
        }
    }

    #[test]
    fn zipf_catalog_of_one_always_samples_it() {
        let zipf = ZipfSampler::new(1, 1.2);
        let mut rng = XorShift::new(7);
        for _ in 0..1000 {
            assert_eq!(zipf.sample(rng.next_f64()), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn zipf_empty_catalog_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    // --- Histogram: randomized differential oracle vs. sorted samples ---

    /// Naive model: exact quantile by sorting all samples.
    fn naive_quantile(samples: &[f64], q: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn histogram_quantiles_match_naive_model_within_one_bucket() {
        for seed in [3, 17, 99, 2024, 4096] {
            let mut rng = XorShift::new(seed);
            let mut hist = LatencyHistogram::new();
            let mut samples = Vec::new();
            for _ in 0..2000 {
                // Log-uniform latencies spanning 1 µs .. 10 s.
                let v = (1e-6f64.ln() + rng.next_f64() * (1e7f64).ln()).exp();
                hist.record(v);
                samples.push(v);
            }
            assert_eq!(hist.count(), samples.len() as u64);
            let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
            assert!((hist.mean() - exact_mean).abs() < 1e-9 * exact_mean);
            for q in [0.5, 0.9, 0.99, 0.999] {
                let exact = naive_quantile(&samples, q);
                let approx = hist.quantile(q);
                // The histogram quantile may be off by at most one log
                // bucket in either direction.
                assert!(
                    approx >= exact / HIST_GROWTH - 1e-12 && approx <= exact * HIST_GROWTH + 1e-12,
                    "seed {seed} q {q}: histogram {approx} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn histogram_edge_cases() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.99), 0.0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.max(), 0.0);

        let mut one = LatencyHistogram::new();
        one.record(0.0123);
        for q in [0.5, 0.99, 0.999] {
            let v = one.quantile(q);
            assert!(v > 0.0123 / HIST_GROWTH && v <= 0.0123 + 1e-12, "{v}");
        }
        assert_eq!(one.max(), 0.0123);

        // Sub-resolution and negative samples land in the first bucket.
        let mut tiny = LatencyHistogram::new();
        tiny.record(1e-9);
        tiny.record(-5.0);
        assert_eq!(tiny.count(), 2);
        assert!(tiny.quantile(0.5) <= HIST_LOW);
    }

    #[test]
    fn histogram_quantiles_are_insertion_order_independent() {
        let values: Vec<f64> = (0..500).map(|i| 1e-5 * 1.02f64.powi(i)).collect();
        let mut forward = LatencyHistogram::new();
        let mut backward = LatencyHistogram::new();
        for &v in &values {
            forward.record(v);
        }
        for &v in values.iter().rev() {
            backward.record(v);
        }
        // The bucket contents (and so every quantile) are identical; only
        // the float `sum` may differ in the last bits with insertion order.
        assert_eq!(forward.counts, backward.counts);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(
                forward.quantile(q).to_bits(),
                backward.quantile(q).to_bits()
            );
        }
    }

    // --- Spec validation and planning ---

    #[test]
    fn spec_validation_rejects_bad_knobs() {
        assert!(TrafficSpec::open("t", 100.0, 50).validate().is_ok());
        assert!(TrafficSpec::open("t", 0.0, 50).validate().is_err());
        assert!(TrafficSpec::open("t", 100.0, 0).validate().is_err());
        assert!(TrafficSpec::closed("t", 0, 0.1, 50).validate().is_err());
        assert!(TrafficSpec::closed("t", 4, -1.0, 50).validate().is_err());
        assert!(TrafficSpec::open("t", 1.0, 5)
            .with_catalog(0, 1e6)
            .validate()
            .is_err());
        assert!(TrafficSpec::open("t", 1.0, 5)
            .with_zipf(f64::NAN)
            .validate()
            .is_err());
        assert!(TrafficSpec::open("t", 1.0, 5)
            .with_read_fraction(1.5)
            .validate()
            .is_err());
        assert!(TrafficSpec::open("t", 1.0, 5)
            .with_tenant(TenantSpec {
                max_cache_bytes: 1e6,
                max_dirty_bytes: 2e6,
            })
            .validate()
            .is_err());
        assert!(TrafficSpec::open("t", 1.0, 5)
            .with_tenant(TenantSpec::capped(64e6))
            .validate()
            .is_ok());
    }

    #[test]
    fn planned_requests_are_deterministic_and_in_bounds() {
        let spec = TrafficSpec::open("plan", 200.0, 500)
            .with_catalog(40, 8e6)
            .with_read_fraction(0.7)
            .with_seed(9);
        let a = plan_requests(&spec);
        let b = plan_requests(&spec);
        assert_eq!(a.len(), 500);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.file, y.file);
            assert_eq!(x.is_read, y.is_read);
            assert_eq!(x.offset.to_bits(), y.offset.to_bits());
            assert_eq!(x.len.to_bits(), y.len.to_bits());
            assert_eq!(x.gap.to_bits(), y.gap.to_bits());
        }
        let reads = a.iter().filter(|r| r.is_read).count();
        assert!((reads as f64 / 500.0 - 0.7).abs() < 0.08, "{reads}");
        for r in &a {
            assert!(r.file < 40);
            let fsize = file_size(&spec, r.file);
            assert!((4e6..12e6).contains(&fsize));
            assert!(r.len > 0.0 && r.offset >= 0.0);
            assert!(r.offset + r.len <= fsize + 1e-6);
            assert!(r.gap >= 0.0);
        }
        // A different seed moves the stream.
        let c = plan_requests(&TrafficSpec::open("plan", 200.0, 500).with_seed(10));
        assert!(a.iter().zip(&c).any(|(x, y)| x.file != y.file));
    }

    #[test]
    fn warmup_requests_are_planned_but_unrecorded() {
        let spec = TrafficSpec::open("w", 100.0, 50).with_warmup(20);
        let plan = plan_requests(&spec);
        assert!(plan[..20].iter().all(|r| !r.record));
        assert!(plan[20..].iter().all(|r| r.record));
        // The warmup knob changes no other planned field.
        let bare = plan_requests(&TrafficSpec::open("w", 100.0, 50));
        for (a, b) in plan.iter().zip(&bare) {
            assert_eq!((a.file, a.is_read), (b.file, b.is_read));
        }
        // Warmup must leave at least one measured request.
        assert!(TrafficSpec::open("w", 100.0, 50)
            .with_warmup(50)
            .validate()
            .is_err());
    }

    #[test]
    fn deterministic_arrivals_have_fixed_gaps() {
        let spec = TrafficSpec::open("d", 50.0, 20).with_deterministic_arrivals();
        for r in plan_requests(&spec) {
            assert_eq!(r.gap, 1.0 / 50.0);
        }
    }
}
