//! Workload descriptions: files, tasks, workload programs and applications.
//!
//! A task is, at bottom, a **workload program**: a list of [`Op`]
//! instructions (range reads and writes, compute phases, `fsync`/`sync`,
//! memory releases, repetition) executed sequentially by the scenario
//! runner. The classic builder API ([`TaskSpec::reads`], [`TaskSpec::writes`]
//! plus `cpu_time`) is kept and **lowers** to a program via
//! [`TaskSpec::lower`], so every read→compute→write pipeline is just a
//! special case of the general shape, with identical simulated behaviour.
//!
//! The two applications of the paper are provided as constructors:
//! [`ApplicationSpec::synthetic_pipeline`] (the three-task C program of
//! Exp 1–3, Table I) and [`ApplicationSpec::nighres`] (the four-step cortical
//! reconstruction workflow of Exp 4, Table II).

use storage_model::units::{GB, MB};

use crate::faults::RetryPolicy;

/// A file read or written by a task.
#[derive(Debug, Clone, PartialEq)]
pub struct FileSpec {
    /// File name (unique within the application).
    pub name: String,
    /// File size in bytes.
    pub size: f64,
}

impl FileSpec {
    /// Creates a file specification.
    pub fn new(name: impl Into<String>, size: f64) -> Self {
        FileSpec {
            name: name.into(),
            size,
        }
    }
}

/// One instruction of a workload program. File references are by name; sizes
/// come from the filesystem registry at execution time, so a `Read` needs no
/// size and `len = f64::INFINITY` means "to end of file".
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Read `len` bytes of `file` starting at `offset` (clamped to the
    /// file).
    Read {
        /// File name (scoped per instance at execution time).
        file: String,
        /// Byte offset of the first byte read.
        offset: f64,
        /// Bytes to read; `f64::INFINITY` reads to end of file.
        len: f64,
    },
    /// Write `len` bytes at `offset`, creating the file or extending it to
    /// `offset + len` as needed (range writes never shrink a file).
    Write {
        /// File name (scoped per instance at execution time).
        file: String,
        /// Byte offset of the first byte written.
        offset: f64,
        /// Bytes to write.
        len: f64,
    },
    /// Spin the CPU for the given number of simulated seconds.
    Compute(f64),
    /// Flush the file's dirty cached data to stable storage (semantics per
    /// back-end are documented on [`crate::IoBackend`]).
    Fsync(String),
    /// Flush all dirty cached data of the host.
    Sync,
    /// Release anonymous application memory (bytes).
    ReleaseMemory(f64),
    /// Repeat the inner program `n` times (unrolled at execution).
    Repeat {
        /// Number of iterations.
        n: usize,
        /// The repeated program.
        ops: Vec<Op>,
    },
    /// Record a memory sample (all instances). The legacy lowering emits one
    /// after each read and write phase, preserving the classic profile
    /// shape; custom programs place them freely.
    Sample,
    /// Take a labelled cache-content snapshot (instance 0 only).
    Snapshot(String),
}

impl Op {
    /// Reads a whole file.
    pub fn read(file: impl Into<String>) -> Op {
        Op::Read {
            file: file.into(),
            offset: 0.0,
            len: f64::INFINITY,
        }
    }

    /// Reads `len` bytes at `offset`.
    pub fn read_range(file: impl Into<String>, offset: f64, len: f64) -> Op {
        Op::Read {
            file: file.into(),
            offset,
            len,
        }
    }

    /// Writes `len` bytes at offset 0.
    pub fn write(file: impl Into<String>, len: f64) -> Op {
        Op::Write {
            file: file.into(),
            offset: 0.0,
            len,
        }
    }

    /// Writes `len` bytes at `offset`.
    pub fn write_range(file: impl Into<String>, offset: f64, len: f64) -> Op {
        Op::Write {
            file: file.into(),
            offset,
            len,
        }
    }

    /// Spins the CPU for `secs` simulated seconds.
    pub fn compute(secs: f64) -> Op {
        Op::Compute(secs)
    }

    /// Flushes one file's dirty data.
    pub fn fsync(file: impl Into<String>) -> Op {
        Op::Fsync(file.into())
    }

    /// Repeats `ops` `n` times.
    pub fn repeat(n: usize, ops: Vec<Op>) -> Op {
        Op::Repeat { n, ops }
    }

    /// Appends this op's flattened form (with `Repeat` unrolled) to `out`,
    /// enforcing the nesting and length bounds.
    fn flatten_into(&self, out: &mut Vec<Op>, depth: usize) -> Result<(), ProgramError> {
        match self {
            Op::Repeat { n, ops } => {
                if depth >= MAX_REPEAT_DEPTH {
                    return Err(ProgramError::TooDeep {
                        limit: MAX_REPEAT_DEPTH,
                    });
                }
                for _ in 0..*n {
                    let before = out.len();
                    for op in ops {
                        op.flatten_into(out, depth + 1)?;
                    }
                    if out.len() == before {
                        // The body flattens to nothing (empty, or nested
                        // `Repeat { n: 0 }`): every further iteration is
                        // identical, so stop instead of spinning `n` times.
                        break;
                    }
                }
            }
            other => {
                if out.len() >= MAX_PROGRAM_OPS {
                    return Err(ProgramError::TooLong {
                        limit: MAX_PROGRAM_OPS,
                    });
                }
                out.push(other.clone());
            }
        }
        Ok(())
    }
}

/// Maximum number of instructions a program may unroll to. Bounds the memory
/// and time of [`flatten_program`] against `Repeat` blow-ups like
/// `Repeat { n: k, ops: [Repeat { n: k, … }] }`.
pub const MAX_PROGRAM_OPS: usize = 1 << 20;

/// Maximum [`Op::Repeat`] nesting depth. Bounds the recursion of
/// [`flatten_program`] so a deeply nested program reports a structured error
/// instead of overflowing the stack.
pub const MAX_REPEAT_DEPTH: usize = 64;

/// Structured errors of [`flatten_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// `Repeat` blocks nested deeper than [`MAX_REPEAT_DEPTH`].
    TooDeep {
        /// The enforced nesting limit.
        limit: usize,
    },
    /// The unrolled program exceeds [`MAX_PROGRAM_OPS`] instructions.
    TooLong {
        /// The enforced instruction limit.
        limit: usize,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::TooDeep { limit } => {
                write!(f, "program nests Repeat deeper than {limit} levels")
            }
            ProgramError::TooLong { limit } => {
                write!(f, "program unrolls to more than {limit} instructions")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Flattens a program, unrolling every [`Op::Repeat`]. The unroll is
/// bounded: programs nesting deeper than [`MAX_REPEAT_DEPTH`] or unrolling
/// to more than [`MAX_PROGRAM_OPS`] instructions return a structured
/// [`ProgramError`] instead of exhausting the stack or memory.
pub fn flatten_program(ops: &[Op]) -> Result<Vec<Op>, ProgramError> {
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        op.flatten_into(&mut out, 0)?;
    }
    Ok(out)
}

/// Validates the operands of a program without unrolling it: offsets,
/// lengths, compute times and memory amounts must not be NaN or negative (a
/// read length of `f64::INFINITY` means "to end of file" and is the only
/// infinite operand allowed). Catches bad values before they reach the
/// device models, which assert on NaN transfer sizes.
fn validate_ops(task: &str, ops: &[Op]) -> Result<(), String> {
    let finite = |what: &str, v: f64| {
        if v.is_finite() && v >= 0.0 {
            Ok(())
        } else {
            Err(format!("task '{task}': {what} {v} must be finite and >= 0"))
        }
    };
    // Explicit work stack: `Repeat` nesting depth is enforced (much later)
    // by `flatten_program`, so validation must not recurse.
    let mut stack: Vec<&Op> = ops.iter().collect();
    while let Some(op) = stack.pop() {
        match op {
            Op::Read { offset, len, .. } => {
                finite("read offset", *offset)?;
                if len.is_nan() || *len < 0.0 {
                    return Err(format!(
                        "task '{task}': read length {len} must be >= 0 (INFINITY reads to EOF)"
                    ));
                }
            }
            Op::Write { offset, len, .. } => {
                finite("write offset", *offset)?;
                finite("write length", *len)?;
            }
            Op::Compute(secs) => finite("compute time", *secs)?,
            Op::ReleaseMemory(bytes) => finite("released memory", *bytes)?,
            Op::Repeat { ops, .. } => stack.extend(ops.iter()),
            Op::Fsync(_) | Op::Sync | Op::Sample | Op::Snapshot(_) => {}
        }
    }
    Ok(())
}

/// One task of an application. Either the classic three-phase shape (read
/// inputs, compute, write outputs — the builder API) or an explicit workload
/// program ([`TaskSpec::program`]); the former lowers to the latter.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Task name (e.g. "Task 1", "Skull stripping").
    pub name: String,
    /// CPU time in seconds (measured on the real system and injected into the
    /// simulation, as the paper does). Ignored when `ops` is non-empty.
    pub cpu_time: f64,
    /// Files read at the start of the task (builder shape only).
    pub inputs: Vec<FileSpec>,
    /// Files written at the end of the task (builder shape only).
    pub outputs: Vec<FileSpec>,
    /// Whether the task's anonymous memory is released when it completes
    /// (true for both applications of the paper; builder shape only).
    pub release_memory_after: bool,
    /// Explicit workload program. When non-empty it *is* the task; the
    /// builder fields above are ignored.
    pub ops: Vec<Op>,
    /// Retry policy applied to each I/O operation of the task when a
    /// *transient* fault is injected (see [`crate::faults`]). The default is
    /// [`RetryPolicy::none`]: a single attempt, no retries.
    pub retry: RetryPolicy,
}

impl TaskSpec {
    /// Creates a task in the classic builder shape.
    pub fn new(name: impl Into<String>, cpu_time: f64) -> Self {
        TaskSpec {
            name: name.into(),
            cpu_time,
            inputs: Vec::new(),
            outputs: Vec::new(),
            release_memory_after: true,
            ops: Vec::new(),
            retry: RetryPolicy::none(),
        }
    }

    /// Creates a task from an explicit workload program. Programs manage
    /// their own memory releases and observability ([`Op::ReleaseMemory`],
    /// [`Op::Sample`], [`Op::Snapshot`]).
    pub fn program(name: impl Into<String>, ops: Vec<Op>) -> Self {
        TaskSpec {
            name: name.into(),
            cpu_time: 0.0,
            inputs: Vec::new(),
            outputs: Vec::new(),
            release_memory_after: false,
            ops,
            retry: RetryPolicy::none(),
        }
    }

    /// Sets the retry policy for the task's I/O operations.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Adds an input file.
    pub fn reads(mut self, file: FileSpec) -> Self {
        self.inputs.push(file);
        self
    }

    /// Adds an output file.
    pub fn writes(mut self, file: FileSpec) -> Self {
        self.outputs.push(file);
        self
    }

    /// Total bytes read by the task (builder shape).
    pub fn input_bytes(&self) -> f64 {
        self.inputs.iter().map(|f| f.size).sum()
    }

    /// Total bytes written by the task (builder shape).
    pub fn output_bytes(&self) -> f64 {
        self.outputs.iter().map(|f| f.size).sum()
    }

    /// The workload program this task executes: the explicit program when
    /// one was given, otherwise the lowering of the classic three-phase
    /// shape —
    ///
    /// ```text
    /// Read(input…) Sample Snapshot("Read i")
    /// Compute(cpu_time)
    /// Write(output…) Sample Snapshot("Write i")
    /// [ReleaseMemory(input_bytes) Sample]     (if release_memory_after)
    /// ```
    ///
    /// `task_idx` is the 0-based task position, used for the snapshot
    /// labels ("Read 1", "Write 1", …).
    pub fn lower(&self, task_idx: usize) -> Vec<Op> {
        if !self.ops.is_empty() {
            return self.ops.clone();
        }
        let mut ops = Vec::new();
        for input in &self.inputs {
            ops.push(Op::read(&input.name));
        }
        ops.push(Op::Sample);
        ops.push(Op::Snapshot(format!("Read {}", task_idx + 1)));
        ops.push(Op::Compute(self.cpu_time));
        for output in &self.outputs {
            ops.push(Op::write(&output.name, output.size));
        }
        ops.push(Op::Sample);
        ops.push(Op::Snapshot(format!("Write {}", task_idx + 1)));
        if self.release_memory_after {
            ops.push(Op::ReleaseMemory(self.input_bytes()));
            ops.push(Op::Sample);
        }
        ops
    }
}

/// A sequential application (pipeline of tasks) plus the files that must exist
/// before it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationSpec {
    /// Application name.
    pub name: String,
    /// Files present on storage before the application starts.
    pub initial_files: Vec<FileSpec>,
    /// Tasks, executed in order.
    pub tasks: Vec<TaskSpec>,
}

impl ApplicationSpec {
    /// Creates an empty application.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationSpec {
            name: name.into(),
            initial_files: Vec::new(),
            tasks: Vec::new(),
        }
    }

    /// Registers a file that exists before the application starts.
    pub fn with_initial_file(mut self, file: FileSpec) -> Self {
        self.initial_files.push(file);
        self
    }

    /// Appends a task.
    pub fn with_task(mut self, task: TaskSpec) -> Self {
        self.tasks.push(task);
        self
    }

    /// CPU time of the paper's synthetic application for a given input size
    /// (Table I). Sizes between the measured points are interpolated linearly.
    pub fn synthetic_cpu_time(input_size: f64) -> f64 {
        // (input size GB, CPU time s) from Table I.
        const POINTS: [(f64, f64); 5] = [
            (3.0, 4.4),
            (20.0, 28.0),
            (50.0, 75.0),
            (75.0, 110.0),
            (100.0, 155.0),
        ];
        let gb = input_size / GB;
        if gb <= POINTS[0].0 {
            return POINTS[0].1 * gb / POINTS[0].0;
        }
        for w in POINTS.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if gb <= x1 {
                return y0 + (y1 - y0) * (gb - x0) / (x1 - x0);
            }
        }
        let (x1, y1) = POINTS[POINTS.len() - 1];
        y1 * gb / x1
    }

    /// The synthetic application of the paper (§III-D): three single-core
    /// sequential tasks; task *i* reads File *i*, increments every byte, and
    /// writes File *i+1*. All files have the same size.
    pub fn synthetic_pipeline(file_size: f64) -> Self {
        let cpu = Self::synthetic_cpu_time(file_size);
        let file = |i: usize| FileSpec::new(format!("file_{i}"), file_size);
        let mut app = ApplicationSpec::new(format!(
            "synthetic-{}GB",
            (file_size / GB * 100.0).round() / 100.0
        ))
        .with_initial_file(file(1));
        for task in 1..=3 {
            app = app.with_task(
                TaskSpec::new(format!("Task {task}"), cpu)
                    .reads(file(task))
                    .writes(file(task + 1)),
            );
        }
        app
    }

    /// The Nighres cortical-reconstruction workflow of Exp 4 (Table II).
    ///
    /// Step dependencies follow the Nighres example the paper uses: skull
    /// stripping produces the masked image read by cortical reconstruction,
    /// tissue classification produces the segmentation read by region
    /// extraction.
    pub fn nighres() -> Self {
        let raw = FileSpec::new("raw_brain_image", 295.0 * MB);
        let second_inversion = FileSpec::new("second_inversion", 197.0 * MB);
        let masked = FileSpec::new("masked_image", 393.0 * MB);
        let segmentation = FileSpec::new("segmentation", 1376.0 * MB);
        let region = FileSpec::new("region_maps", 885.0 * MB);
        let cortex = FileSpec::new("cortical_surface", 786.0 * MB);
        ApplicationSpec::new("nighres-cortical-reconstruction")
            .with_initial_file(raw.clone())
            .with_initial_file(second_inversion.clone())
            .with_task(
                TaskSpec::new("Skull stripping", 137.0)
                    .reads(raw)
                    .writes(masked.clone()),
            )
            .with_task(
                TaskSpec::new("Tissue classification", 614.0)
                    .reads(second_inversion)
                    .writes(segmentation.clone()),
            )
            .with_task(
                TaskSpec::new("Region extraction", 76.0)
                    .reads(segmentation)
                    .writes(region),
            )
            .with_task(
                TaskSpec::new("Cortical reconstruction", 272.0)
                    .reads(masked)
                    .writes(cortex),
            )
    }

    /// Total bytes read by the whole application.
    pub fn total_read_bytes(&self) -> f64 {
        self.tasks.iter().map(TaskSpec::input_bytes).sum()
    }

    /// Total bytes written by the whole application.
    pub fn total_written_bytes(&self) -> f64 {
        self.tasks.iter().map(TaskSpec::output_bytes).sum()
    }

    /// Total CPU time of the application.
    pub fn total_cpu_time(&self) -> f64 {
        self.tasks.iter().map(|t| t.cpu_time).sum()
    }

    /// Validates every operand of the application before any simulation
    /// runs: file sizes, CPU times, and the operands of every workload
    /// program must not be NaN, negative, or (where a concrete amount is
    /// needed) infinite.
    pub fn validate(&self) -> Result<(), String> {
        let file_ok = |where_: &str, f: &FileSpec| {
            if f.size.is_finite() && f.size >= 0.0 {
                Ok(())
            } else {
                Err(format!(
                    "{where_}: size of file '{}' ({}) must be finite and >= 0",
                    f.name, f.size
                ))
            }
        };
        for f in &self.initial_files {
            file_ok("initial files", f)?;
        }
        for task in &self.tasks {
            for f in task.inputs.iter().chain(&task.outputs) {
                file_ok(&format!("task '{}'", task.name), f)?;
            }
            if !(task.cpu_time.is_finite() && task.cpu_time >= 0.0) {
                return Err(format!(
                    "task '{}': cpu time {} must be finite and >= 0",
                    task.name, task.cpu_time
                ));
            }
            validate_ops(&task.name, &task.ops)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_pipeline_structure() {
        let app = ApplicationSpec::synthetic_pipeline(20.0 * GB);
        assert_eq!(app.tasks.len(), 3);
        assert_eq!(app.initial_files.len(), 1);
        assert_eq!(app.initial_files[0].name, "file_1");
        // Task i reads file i and writes file i+1.
        for (i, task) in app.tasks.iter().enumerate() {
            assert_eq!(task.inputs[0].name, format!("file_{}", i + 1));
            assert_eq!(task.outputs[0].name, format!("file_{}", i + 2));
            assert_eq!(task.inputs[0].size, 20.0 * GB);
        }
        assert_eq!(app.total_read_bytes(), 60.0 * GB);
        assert_eq!(app.total_written_bytes(), 60.0 * GB);
    }

    #[test]
    fn synthetic_cpu_times_match_table1() {
        for (gb, secs) in [
            (3.0, 4.4),
            (20.0, 28.0),
            (50.0, 75.0),
            (75.0, 110.0),
            (100.0, 155.0),
        ] {
            let t = ApplicationSpec::synthetic_cpu_time(gb * GB);
            assert!((t - secs).abs() < 1e-9, "{gb} GB -> {t}, expected {secs}");
        }
        // Interpolation between measured points is monotonic.
        let t35 = ApplicationSpec::synthetic_cpu_time(35.0 * GB);
        assert!(t35 > 28.0 && t35 < 75.0);
    }

    #[test]
    fn nighres_matches_table2() {
        let app = ApplicationSpec::nighres();
        assert_eq!(app.tasks.len(), 4);
        let sizes_in: Vec<f64> = app.tasks.iter().map(TaskSpec::input_bytes).collect();
        let sizes_out: Vec<f64> = app.tasks.iter().map(TaskSpec::output_bytes).collect();
        let cpu: Vec<f64> = app.tasks.iter().map(|t| t.cpu_time).collect();
        assert_eq!(
            sizes_in,
            vec![295.0 * MB, 197.0 * MB, 1376.0 * MB, 393.0 * MB]
        );
        assert_eq!(
            sizes_out,
            vec![393.0 * MB, 1376.0 * MB, 885.0 * MB, 786.0 * MB]
        );
        assert_eq!(cpu, vec![137.0, 614.0, 76.0, 272.0]);
        // Step 3 reads what step 2 wrote; step 4 reads what step 1 wrote.
        assert_eq!(app.tasks[2].inputs[0].name, app.tasks[1].outputs[0].name);
        assert_eq!(app.tasks[3].inputs[0].name, app.tasks[0].outputs[0].name);
    }

    #[test]
    fn legacy_task_lowers_to_the_canonical_program() {
        let task = TaskSpec::new("t", 2.5)
            .reads(FileSpec::new("in", 10.0 * MB))
            .writes(FileSpec::new("out", 5.0 * MB));
        let ops = task.lower(2);
        assert_eq!(
            ops,
            vec![
                Op::read("in"),
                Op::Sample,
                Op::Snapshot("Read 3".to_string()),
                Op::Compute(2.5),
                Op::write("out", 5.0 * MB),
                Op::Sample,
                Op::Snapshot("Write 3".to_string()),
                Op::ReleaseMemory(10.0 * MB),
                Op::Sample,
            ]
        );
    }

    #[test]
    fn program_task_is_returned_verbatim() {
        let ops = vec![Op::read_range("f", 1.0, 2.0), Op::Sync];
        let task = TaskSpec::program("custom", ops.clone());
        assert_eq!(task.lower(0), ops);
        assert!(!task.release_memory_after);
    }

    #[test]
    fn repeat_unrolls_recursively() {
        let ops = vec![
            Op::write("wal", 1.0),
            Op::repeat(2, vec![Op::fsync("wal"), Op::repeat(2, vec![Op::Sync])]),
        ];
        let flat = flatten_program(&ops).unwrap();
        assert_eq!(flat.len(), 1 + 2 * (1 + 2));
        assert_eq!(flat[1], Op::fsync("wal"));
        assert_eq!(flat[2], Op::Sync);
        assert_eq!(flat[3], Op::Sync);
        assert_eq!(flat[4], Op::fsync("wal"));
    }

    #[test]
    fn repeat_zero_and_empty_bodies_flatten_to_nothing() {
        assert_eq!(
            flatten_program(&[Op::repeat(0, vec![Op::Sync])]).unwrap(),
            Vec::<Op>::new()
        );
        // An empty (or nested-zero) body must not spin `n` times.
        assert_eq!(
            flatten_program(&[Op::repeat(usize::MAX, vec![])]).unwrap(),
            Vec::<Op>::new()
        );
        assert_eq!(
            flatten_program(&[Op::repeat(usize::MAX, vec![Op::repeat(0, vec![Op::Sync])])])
                .unwrap(),
            Vec::<Op>::new()
        );
    }

    #[test]
    fn deeply_nested_repeat_is_a_structured_error() {
        // MAX_REPEAT_DEPTH + 1 nested Repeats: the old recursive unroll would
        // recurse unboundedly on programs like this; now it is a TooDeep.
        let mut op = Op::Sync;
        for _ in 0..=MAX_REPEAT_DEPTH {
            op = Op::repeat(1, vec![op]);
        }
        assert_eq!(
            flatten_program(&[op]),
            Err(ProgramError::TooDeep {
                limit: MAX_REPEAT_DEPTH
            })
        );
        // Exactly at the limit it still unrolls.
        let mut op = Op::Sync;
        for _ in 0..MAX_REPEAT_DEPTH {
            op = Op::repeat(1, vec![op]);
        }
        assert_eq!(flatten_program(&[op]).unwrap(), vec![Op::Sync]);
    }

    #[test]
    fn oversized_unroll_is_a_structured_error() {
        // 2^24 sync ops via nested doubling exceeds MAX_PROGRAM_OPS without
        // the test having to materialise them.
        let mut op = Op::Sync;
        for _ in 0..24 {
            op = Op::repeat(2, vec![op]);
        }
        assert_eq!(
            flatten_program(&[op]),
            Err(ProgramError::TooLong {
                limit: MAX_PROGRAM_OPS
            })
        );
        let err = ProgramError::TooLong {
            limit: MAX_PROGRAM_OPS,
        };
        assert!(err.to_string().contains("instructions"));
    }

    #[test]
    fn application_validation_rejects_nan_and_negative_operands() {
        let ok = ApplicationSpec::new("ok").with_task(TaskSpec::program(
            "t",
            vec![Op::read("a"), Op::write("b", 5.0), Op::compute(0.0)],
        ));
        assert!(ok.validate().is_ok());
        // Whole-file reads use an infinite length: allowed.
        assert!(ApplicationSpec::new("inf-read")
            .with_task(TaskSpec::program("t", vec![Op::read("a")]))
            .validate()
            .is_ok());

        let bad_cases = [
            ApplicationSpec::new("x").with_initial_file(FileSpec::new("f", f64::NAN)),
            ApplicationSpec::new("x").with_initial_file(FileSpec::new("f", -1.0)),
            ApplicationSpec::new("x")
                .with_task(TaskSpec::new("t", f64::NAN).reads(FileSpec::new("f", 1.0))),
            ApplicationSpec::new("x")
                .with_task(TaskSpec::new("t", 1.0).writes(FileSpec::new("f", f64::INFINITY))),
            ApplicationSpec::new("x")
                .with_task(TaskSpec::program("t", vec![Op::write("f", f64::NAN)])),
            ApplicationSpec::new("x").with_task(TaskSpec::program(
                "t",
                vec![Op::write_range("f", -4.0, 1.0)],
            )),
            ApplicationSpec::new("x").with_task(TaskSpec::program(
                "t",
                vec![Op::read_range("f", f64::NAN, 1.0)],
            )),
            ApplicationSpec::new("x")
                .with_task(TaskSpec::program("t", vec![Op::compute(f64::INFINITY)])),
            // Operands are checked inside Repeat bodies too.
            ApplicationSpec::new("x").with_task(TaskSpec::program(
                "t",
                vec![Op::repeat(3, vec![Op::ReleaseMemory(-2.0)])],
            )),
        ];
        for app in bad_cases {
            assert!(app.validate().is_err(), "{app:?} should be invalid");
        }
    }

    #[test]
    fn builders_compose() {
        let app = ApplicationSpec::new("custom")
            .with_initial_file(FileSpec::new("in", 10.0 * MB))
            .with_task(
                TaskSpec::new("t", 1.0)
                    .reads(FileSpec::new("in", 10.0 * MB))
                    .writes(FileSpec::new("out", 5.0 * MB)),
            );
        assert_eq!(app.tasks[0].input_bytes(), 10.0 * MB);
        assert_eq!(app.tasks[0].output_bytes(), 5.0 * MB);
        assert_eq!(app.total_cpu_time(), 1.0);
    }
}
