//! Simulator back-ends: the four ways a scenario can be executed, unified
//! behind the [`IoBackend`] trait.
//!
//! | Back-end | Paper counterpart | Devices | Page cache |
//! |---|---|---|---|
//! | [`SimulatorKind::Cacheless`] | vanilla WRENCH | simulated (symmetric) | none |
//! | [`SimulatorKind::Prototype`] | Python prototype | simulated, no bandwidth sharing | macroscopic model |
//! | [`SimulatorKind::PageCache`] | WRENCH-cache | simulated (symmetric) | macroscopic model |
//! | [`SimulatorKind::KernelEmu`] | the real cluster | measured (asymmetric) | page-granularity emulator |
//!
//! Six concrete filesystems implement [`IoBackend`]: the three `simfs`
//! filesystems ([`CachedFileSystem`], [`DirectFileSystem`],
//! [`NfsFileSystem`]), the kernel emulator ([`KernelFileSystem`]), the
//! cacheless NFS mount ([`DirectNfs`]), and the replicated storage fleet
//! ([`crate::net::FleetClient`], for
//! [`StorageKind::Fleet`] platforms). [`Backend::build`] picks and
//! constructs the right one for a platform/simulator combination; the
//! [`Backend`] enum it returns forwards every trait method to the inner
//! filesystem through a single dispatch macro, so the scenario runner stays
//! monomorphic (no `dyn`, no per-method match duplication).
//!
//! The legacy NFS back-ends build their single client–server link as a
//! *degenerate fabric* (two hosts, one link) of the network tier; the
//! link's shared channel is constructed with identical parameters, so
//! historical NFS predictions are bit-identical.
//!
//! ## `fsync` semantics per back-end
//!
//! | Back-end | `fsync(file)` | `sync` |
//! |---|---|---|
//! | cached local | targeted per-file dirty writeback at disk bandwidth | flush all dirty data |
//! | direct local | no-op (writes are synchronous) | no-op |
//! | NFS | no-op (no client write cache; writethrough server) | no-op |
//! | kernel emulator | per-file dirty-page writeback, counted as throttled writeback | flush all dirty pages |
//! | direct NFS | no-op (writes are synchronous) | no-op |
//! | fleet | flush the file on every reachable replica (write-back servers) | flush all reachable servers |

use std::collections::BTreeMap;

use des::SimContext;
use kernel_emu::{KernelCache, KernelFileSystem, KernelFsError, KernelTuning};
use pagecache::{
    clamp_io_range, FileId, IoController, IoOpStats, MemoryManager, MemorySample, PageCacheConfig,
};
use simfs::{
    extend_for_write, CachedFileSystem, DirectFileSystem, FsError, NfsFileSystem, NfsServer,
};
use storage_model::{Disk, MemoryDevice, NetworkLink};

use crate::faults::{CrashReport, FileDurability, InjectedFault};
use crate::net::{Fabric, FleetClient, NetReport};
use crate::platform::{DeviceSet, PlatformSpec, StorageKind};
use crate::report::WritebackCounters;

/// Which simulator runs the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimulatorKind {
    /// No page cache: every I/O is a device access (original WRENCH).
    Cacheless,
    /// Page cache model without bandwidth sharing (the paper's Python
    /// prototype; single-instance scenarios only).
    Prototype,
    /// The full page cache model on shared devices (WRENCH-cache).
    PageCache,
    /// The kernel-fidelity emulator with measured bandwidths (stands in for
    /// the real cluster).
    KernelEmu,
}

impl SimulatorKind {
    /// Short label used in reports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            SimulatorKind::Cacheless => "WRENCH (cacheless)",
            SimulatorKind::Prototype => "Python-prototype",
            SimulatorKind::PageCache => "WRENCH-cache",
            SimulatorKind::KernelEmu => "Real-system emulator",
        }
    }

    /// All four back-ends.
    pub fn all() -> [SimulatorKind; 4] {
        [
            SimulatorKind::Cacheless,
            SimulatorKind::Prototype,
            SimulatorKind::PageCache,
            SimulatorKind::KernelEmu,
        ]
    }
}

/// Errors raised while building or running a scenario. Filesystem failures
/// keep their structured cause instead of being stringified at the boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The platform description is invalid.
    InvalidPlatform(String),
    /// The scenario configuration is invalid (e.g. zero instances).
    InvalidScenario(String),
    /// The back-end cannot run this scenario (e.g. the prototype with NFS).
    Unsupported(String),
    /// A `simfs` filesystem operation failed.
    Filesystem(FsError),
    /// A kernel-emulator filesystem operation failed.
    Kernel(KernelFsError),
    /// An operation failed because a scheduled fault fired (see
    /// [`crate::faults::FaultPlan`]).
    Injected(InjectedFault),
    /// The scenario was cut short by an injected crash (simulated power
    /// loss) and restart-after-crash was not enabled for a part of the run
    /// that required it.
    Crashed,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidPlatform(m) => write!(f, "invalid platform: {m}"),
            ScenarioError::InvalidScenario(m) => write!(f, "invalid scenario: {m}"),
            ScenarioError::Unsupported(m) => write!(f, "unsupported scenario: {m}"),
            ScenarioError::Filesystem(e) => write!(f, "filesystem error: {e}"),
            ScenarioError::Kernel(e) => write!(f, "filesystem error: {e}"),
            ScenarioError::Injected(e) => write!(f, "{e}"),
            ScenarioError::Crashed => write!(f, "simulated power loss cut the scenario short"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Filesystem(e) => Some(e),
            ScenarioError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for ScenarioError {
    fn from(e: FsError) -> Self {
        ScenarioError::Filesystem(e)
    }
}

impl From<KernelFsError> for ScenarioError {
    fn from(e: KernelFsError) -> Self {
        ScenarioError::Kernel(e)
    }
}

/// The unified surface every simulator back-end exposes to the scenario
/// runner: offset-granular I/O (`read_range` / `write_range` / `fsync` /
/// `sync`), plus the lifecycle and introspection hooks the runner needs.
/// Whole-file operations are corollaries of the range operations, not
/// primitives.
///
/// The futures returned by the async methods are deliberately `!Send`: the
/// DES engine is single-threaded and back-ends share `Rc` state.
#[allow(async_fn_in_trait)]
pub trait IoBackend {
    /// Registers a pre-existing file without simulating any I/O.
    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError>;

    /// Reads `len` bytes of `file` starting at `offset` (`len =
    /// f64::INFINITY` reads to end of file; the range is clamped to the
    /// file).
    async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError>;

    /// Writes `len` bytes at `offset`, creating the file or extending it to
    /// `offset + len` as needed. Range writes never shrink a file.
    async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError>;

    /// Flushes the file's dirty cached data to stable storage. A no-op on
    /// back-ends whose writes are already synchronous (see the module-level
    /// semantics table).
    async fn fsync(&self, file: &FileId) -> Result<IoOpStats, ScenarioError>;

    /// Flushes all dirty cached data of the host to stable storage.
    async fn sync(&self) -> Result<IoOpStats, ScenarioError>;

    /// Reads a whole file — a corollary of [`IoBackend::read_range`] over
    /// `[0, size)`.
    async fn read_file(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        self.read_range(file, 0.0, f64::INFINITY).await
    }

    /// Writes a whole file. The default is the range-write corollary
    /// (`write_range(0, size)`, extend-never-shrink); every provided
    /// back-end overrides it with whole-file **replace** semantics (the old
    /// registration is freed first), matching the classic API uniformly.
    async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        self.write_range(file, 0.0, size).await
    }

    /// Starts the background flusher / writeback threads (if the back-end
    /// has a page cache).
    fn start_background(&self) {}

    /// Stops the background threads so the simulation can terminate.
    fn stop_background(&self) {}

    /// Releases anonymous memory used by the application (no-op on back-ends
    /// without memory modelling).
    fn release_anonymous_memory(&self, _amount: f64) {}

    /// Takes a memory sample (`None` on back-ends without memory modelling).
    fn sample_memory(&self) -> Option<MemorySample> {
        None
    }

    /// The collected memory trace, if any.
    fn memory_trace(&self) -> Option<pagecache::MemoryTrace> {
        None
    }

    /// A labelled snapshot of the cache content per file, if the back-end
    /// has a cache.
    fn cache_snapshot(&self, _label: &str) -> Option<pagecache::CacheContentSnapshot> {
        None
    }

    /// Cumulative writeback/eviction counters of the back-end's page cache,
    /// if it has one. These are the per-run statistics the sweep harness
    /// records next to the simulated times.
    fn writeback_counters(&self) -> Option<WritebackCounters> {
        None
    }

    /// Assigns `file` to a cache group (tenant) for memcg-style accounting.
    /// No-op on back-ends without a cache model.
    fn set_file_group(&self, _file: &FileId, _group: u32) {}

    /// Enforces per-group cache limits: writes back the group's dirty bytes
    /// above `max_dirty` and evicts its cached bytes above `max_bytes`.
    /// Returns `(evicted, flushed)`; `(0.0, 0.0)` on back-ends without a
    /// cache model (nothing is cached, so every limit trivially holds).
    async fn enforce_group_limits(
        &self,
        _group: u32,
        _max_bytes: f64,
        _max_dirty: f64,
    ) -> (f64, f64) {
        (0.0, 0.0)
    }

    /// Simulated power loss: discards all volatile state (page cache,
    /// anonymous memory) and reports the per-file durability of what
    /// remains on stable storage. Back-ends whose writes are synchronous or
    /// writethrough report every file fully durable. Takes no simulated
    /// time, and the back-end remains usable afterwards (modelling the node
    /// after a reboot with a cold cache).
    fn crash(&self) -> CrashReport;

    /// Short label of the back-end kind.
    fn kind_label(&self) -> &'static str;
}

impl IoBackend for CachedFileSystem {
    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        CachedFileSystem::create_file(self, file, size).map_err(ScenarioError::from)
    }

    async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        CachedFileSystem::read_range(self, file, offset, len)
            .await
            .map_err(ScenarioError::from)
    }

    async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        CachedFileSystem::write_range(self, file, offset, len)
            .await
            .map_err(ScenarioError::from)
    }

    async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        CachedFileSystem::write_file(self, file, size)
            .await
            .map_err(ScenarioError::from)
    }

    async fn fsync(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        CachedFileSystem::fsync(self, file)
            .await
            .map_err(ScenarioError::from)
    }

    async fn sync(&self) -> Result<IoOpStats, ScenarioError> {
        Ok(CachedFileSystem::sync(self).await)
    }

    fn start_background(&self) {
        self.memory_manager().spawn_periodical_flusher();
    }

    fn stop_background(&self) {
        self.memory_manager().stop();
    }

    fn release_anonymous_memory(&self, amount: f64) {
        self.memory_manager().release_anonymous_memory(amount);
    }

    fn sample_memory(&self) -> Option<MemorySample> {
        Some(self.memory_manager().sample())
    }

    fn memory_trace(&self) -> Option<pagecache::MemoryTrace> {
        Some(self.memory_manager().trace())
    }

    fn cache_snapshot(&self, label: &str) -> Option<pagecache::CacheContentSnapshot> {
        Some(self.memory_manager().cache_content_snapshot(label))
    }

    fn writeback_counters(&self) -> Option<WritebackCounters> {
        let c = self.memory_manager().counters();
        Some(WritebackCounters {
            background_flushed: c.flushed_background,
            synchronous_flushed: c.flushed_on_demand,
            evicted: c.evicted,
        })
    }

    fn set_file_group(&self, file: &FileId, group: u32) {
        self.memory_manager().set_file_group(file, Some(group));
    }

    async fn enforce_group_limits(&self, group: u32, max_bytes: f64, max_dirty: f64) -> (f64, f64) {
        self.memory_manager()
            .enforce_group_limits(group, max_bytes, max_dirty)
            .await
    }

    fn crash(&self) -> CrashReport {
        // The macroscopic model tracks dirty *amounts*, not positions: the
        // durable part of each file is approximated as its leading span.
        let lost: BTreeMap<_, _> = self.memory_manager().crash_discard().into_iter().collect();
        CrashReport {
            files: self
                .registry()
                .list()
                .into_iter()
                .map(|(file, size)| {
                    let dirty = lost.get(&file).copied().unwrap_or(0.0);
                    (file, FileDurability::from_dirty_amount(size, dirty))
                })
                .collect(),
        }
    }

    fn kind_label(&self) -> &'static str {
        "cached-local"
    }
}

impl IoBackend for DirectFileSystem {
    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        DirectFileSystem::create_file(self, file, size).map_err(ScenarioError::from)
    }

    async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        DirectFileSystem::read_range(self, file, offset, len)
            .await
            .map_err(ScenarioError::from)
    }

    async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        DirectFileSystem::write_range(self, file, offset, len)
            .await
            .map_err(ScenarioError::from)
    }

    async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        DirectFileSystem::write_file(self, file, size)
            .await
            .map_err(ScenarioError::from)
    }

    async fn fsync(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        DirectFileSystem::fsync(self, file)
            .await
            .map_err(ScenarioError::from)
    }

    async fn sync(&self) -> Result<IoOpStats, ScenarioError> {
        Ok(DirectFileSystem::sync(self).await)
    }

    fn crash(&self) -> CrashReport {
        // Every write went straight to the disk: nothing to lose.
        CrashReport::all_durable(self.registry().list())
    }

    fn kind_label(&self) -> &'static str {
        "direct-local"
    }
}

impl IoBackend for NfsFileSystem {
    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        NfsFileSystem::create_file(self, file, size).map_err(ScenarioError::from)
    }

    async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        NfsFileSystem::read_range(self, file, offset, len)
            .await
            .map_err(ScenarioError::from)
    }

    async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        NfsFileSystem::write_range(self, file, offset, len)
            .await
            .map_err(ScenarioError::from)
    }

    async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        NfsFileSystem::write_file(self, file, size)
            .await
            .map_err(ScenarioError::from)
    }

    async fn fsync(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        NfsFileSystem::fsync(self, file)
            .await
            .map_err(ScenarioError::from)
    }

    async fn sync(&self) -> Result<IoOpStats, ScenarioError> {
        Ok(NfsFileSystem::sync(self).await)
    }

    fn release_anonymous_memory(&self, amount: f64) {
        self.client_memory_manager()
            .release_anonymous_memory(amount);
    }

    fn sample_memory(&self) -> Option<MemorySample> {
        Some(self.client_memory_manager().sample())
    }

    fn memory_trace(&self) -> Option<pagecache::MemoryTrace> {
        Some(self.client_memory_manager().trace())
    }

    fn cache_snapshot(&self, label: &str) -> Option<pagecache::CacheContentSnapshot> {
        Some(self.client_memory_manager().cache_content_snapshot(label))
    }

    fn writeback_counters(&self) -> Option<WritebackCounters> {
        let c = self.client_memory_manager().counters();
        Some(WritebackCounters {
            background_flushed: c.flushed_background,
            synchronous_flushed: c.flushed_on_demand,
            evicted: c.evicted,
        })
    }

    fn crash(&self) -> CrashReport {
        // No client write cache and a writethrough server: only the warm
        // read caches are lost, every written byte is already durable.
        self.client_memory_manager().crash_discard();
        self.server().memory_manager().crash_discard();
        CrashReport::all_durable(self.registry().list())
    }

    fn kind_label(&self) -> &'static str {
        "nfs"
    }
}

impl IoBackend for KernelFileSystem {
    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        KernelFileSystem::create_file(self, file, size).map_err(ScenarioError::from)
    }

    async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        KernelFileSystem::read_range(self, file, offset, len)
            .await
            .map_err(ScenarioError::from)
    }

    async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        KernelFileSystem::write_range(self, file, offset, len)
            .await
            .map_err(ScenarioError::from)
    }

    async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        KernelFileSystem::write_file(self, file, size)
            .await
            .map_err(ScenarioError::from)
    }

    async fn fsync(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        KernelFileSystem::fsync(self, file)
            .await
            .map_err(ScenarioError::from)
    }

    async fn sync(&self) -> Result<IoOpStats, ScenarioError> {
        Ok(KernelFileSystem::sync(self).await)
    }

    fn start_background(&self) {
        self.cache().spawn_writeback_threads();
    }

    fn stop_background(&self) {
        self.cache().stop();
    }

    fn release_anonymous_memory(&self, amount: f64) {
        self.cache().release_anonymous_memory(amount);
    }

    fn sample_memory(&self) -> Option<MemorySample> {
        Some(self.cache().sample())
    }

    fn memory_trace(&self) -> Option<pagecache::MemoryTrace> {
        Some(self.cache().trace())
    }

    fn cache_snapshot(&self, label: &str) -> Option<pagecache::CacheContentSnapshot> {
        Some(self.cache().cache_content_snapshot(label))
    }

    fn writeback_counters(&self) -> Option<WritebackCounters> {
        let c = self.cache().counters();
        Some(WritebackCounters {
            background_flushed: c.background_writeback,
            synchronous_flushed: c.throttled_writeback,
            evicted: c.evicted,
        })
    }

    fn set_file_group(&self, file: &FileId, group: u32) {
        self.cache().set_file_group(file, Some(group));
    }

    async fn enforce_group_limits(&self, group: u32, max_bytes: f64, max_dirty: f64) -> (f64, f64) {
        self.cache()
            .enforce_group_limits(group, max_bytes, max_dirty)
            .await
    }

    fn crash(&self) -> CrashReport {
        // The emulator keeps a byte-exact dirty-range ledger: the durable
        // ranges are its complement within each file.
        let lost: BTreeMap<_, _> = self.cache().crash_discard().into_iter().collect();
        CrashReport {
            files: self
                .list_files()
                .into_iter()
                .map(|(file, size)| {
                    let ranges = lost.get(&file).map(Vec::as_slice).unwrap_or(&[]);
                    (file, FileDurability::from_lost_ranges(size, ranges))
                })
                .collect(),
        }
    }

    fn kind_label(&self) -> &'static str {
        "kernel-emu"
    }
}

/// A cacheless NFS mount (vanilla WRENCH with remote storage): every access is
/// a network transfer plus a server disk access.
#[derive(Clone)]
pub struct DirectNfs {
    ctx: SimContext,
    link: NetworkLink,
    server_disk: Disk,
    registry: simfs::FileRegistry,
}

impl DirectNfs {
    fn new(ctx: &SimContext, link: NetworkLink, server_disk: Disk) -> Self {
        DirectNfs {
            ctx: ctx.clone(),
            link,
            server_disk,
            registry: simfs::FileRegistry::new(),
        }
    }
}

impl IoBackend for DirectNfs {
    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        self.server_disk
            .allocate(size)
            .map_err(FsError::from)
            .map_err(ScenarioError::from)?;
        self.registry
            .create(file, size)
            .map_err(ScenarioError::from)
    }

    async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        let size = self.registry.size(file).map_err(ScenarioError::from)?;
        let (_start, amount) = clamp_io_range(offset, len, size);
        let start = self.ctx.now();
        if amount > 0.0 {
            self.server_disk.read(amount).await;
            self.link.transfer(amount).await;
        }
        Ok(IoOpStats {
            bytes_from_disk: amount,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        let (_offset, len) = extend_for_write(&self.registry, &self.server_disk, file, offset, len)
            .map_err(ScenarioError::from)?;
        let start = self.ctx.now();
        if len > 0.0 {
            self.link.transfer(len).await;
            self.server_disk.write(len).await;
        }
        Ok(IoOpStats {
            bytes_to_disk: len,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        // Whole-file writes replace the registration (truncate semantics),
        // consistent with every other back-end's `write_file`.
        if !size.is_finite() {
            return Err(ScenarioError::Filesystem(FsError::InvalidRange {
                offset: 0.0,
                len: size,
            }));
        }
        if let Some(old) = self.registry.create_or_replace(file, size) {
            self.server_disk.free(old);
        }
        self.server_disk
            .allocate(size)
            .map_err(FsError::from)
            .map_err(ScenarioError::from)?;
        let start = self.ctx.now();
        self.link.transfer(size).await;
        self.server_disk.write(size).await;
        Ok(IoOpStats {
            bytes_to_disk: size,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    async fn fsync(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        self.registry.size(file).map_err(ScenarioError::from)?;
        Ok(IoOpStats::default())
    }

    async fn sync(&self) -> Result<IoOpStats, ScenarioError> {
        Ok(IoOpStats::default())
    }

    fn crash(&self) -> CrashReport {
        // Writes are synchronous writethrough transfers: all durable.
        CrashReport::all_durable(self.registry.list())
    }

    fn kind_label(&self) -> &'static str {
        "direct-nfs"
    }
}

/// A fully constructed simulation back-end. Every variant implements
/// [`IoBackend`]; the enum forwards each call through one dispatch macro so
/// the runner stays monomorphic without per-method match duplication.
#[derive(Clone)]
pub enum Backend {
    /// Local filesystem with page caching (WRENCH-cache behaviour).
    Cached(CachedFileSystem),
    /// Local filesystem without page caching (vanilla WRENCH behaviour).
    Direct(DirectFileSystem),
    /// NFS mount (client read cache, writethrough server).
    Nfs(NfsFileSystem),
    /// The kernel-fidelity emulator.
    Kernel(KernelFileSystem),
    /// Cacheless remote storage.
    DirectNfs(DirectNfs),
    /// One client's view of a replicated storage fleet (see [`crate::net`]).
    Fleet(FleetClient),
}

/// Forwards one method call to whichever filesystem the back-end holds.
macro_rules! dispatch {
    ($self:expr, $b:ident => $body:expr) => {
        match $self {
            Backend::Cached($b) => $body,
            Backend::Direct($b) => $body,
            Backend::Nfs($b) => $body,
            Backend::Kernel($b) => $body,
            Backend::DirectNfs($b) => $body,
            Backend::Fleet($b) => $body,
        }
    };
}

impl IoBackend for Backend {
    // The concrete filesystems keep inherent methods with the same names as
    // the trait's (their crate-local, structured-error API), so the forwards
    // below use UFCS to target the trait impls unambiguously.
    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        dispatch!(self, b => IoBackend::create_file(b, file, size))
    }

    async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        dispatch!(self, b => IoBackend::read_range(b, file, offset, len).await)
    }

    async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, ScenarioError> {
        dispatch!(self, b => IoBackend::write_range(b, file, offset, len).await)
    }

    async fn fsync(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        dispatch!(self, b => IoBackend::fsync(b, file).await)
    }

    async fn sync(&self) -> Result<IoOpStats, ScenarioError> {
        dispatch!(self, b => IoBackend::sync(b).await)
    }

    async fn read_file(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        dispatch!(self, b => IoBackend::read_file(b, file).await)
    }

    async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        dispatch!(self, b => IoBackend::write_file(b, file, size).await)
    }

    fn start_background(&self) {
        dispatch!(self, b => b.start_background())
    }

    fn stop_background(&self) {
        dispatch!(self, b => b.stop_background())
    }

    fn release_anonymous_memory(&self, amount: f64) {
        dispatch!(self, b => b.release_anonymous_memory(amount))
    }

    fn sample_memory(&self) -> Option<MemorySample> {
        dispatch!(self, b => b.sample_memory())
    }

    fn memory_trace(&self) -> Option<pagecache::MemoryTrace> {
        dispatch!(self, b => b.memory_trace())
    }

    fn cache_snapshot(&self, label: &str) -> Option<pagecache::CacheContentSnapshot> {
        dispatch!(self, b => b.cache_snapshot(label))
    }

    fn writeback_counters(&self) -> Option<WritebackCounters> {
        dispatch!(self, b => b.writeback_counters())
    }

    fn set_file_group(&self, file: &FileId, group: u32) {
        dispatch!(self, b => IoBackend::set_file_group(b, file, group))
    }

    async fn enforce_group_limits(&self, group: u32, max_bytes: f64, max_dirty: f64) -> (f64, f64) {
        dispatch!(self, b => IoBackend::enforce_group_limits(b, group, max_bytes, max_dirty).await)
    }

    fn crash(&self) -> CrashReport {
        dispatch!(self, b => IoBackend::crash(b))
    }

    fn kind_label(&self) -> &'static str {
        dispatch!(self, b => b.kind_label())
    }
}

impl Backend {
    /// Builds the devices and filesystem for a platform and simulator kind.
    pub fn build(
        ctx: &SimContext,
        platform: &PlatformSpec,
        kind: SimulatorKind,
    ) -> Result<Backend, ScenarioError> {
        platform
            .validate()
            .map_err(ScenarioError::InvalidPlatform)?;
        let devices = match kind {
            SimulatorKind::KernelEmu => platform.real,
            _ => platform.simulated,
        };
        let devices = match kind {
            SimulatorKind::Prototype => DeviceSet {
                memory: devices.memory.without_contention(),
                disk: devices.disk.without_contention(),
                remote_disk: devices.remote_disk.without_contention(),
                ..devices
            },
            _ => devices,
        };
        let memory = MemoryDevice::new(ctx, devices.memory);
        let disk = Disk::new(ctx, "local-disk", devices.disk);

        let cache_config = |write_through: bool, total: f64| {
            let mut cfg = PageCacheConfig::with_memory(total)
                .with_dirty_ratio(platform.dirty_ratio)
                .with_dirty_expire(platform.dirty_expire)
                .with_flush_interval(platform.flush_interval)
                .with_eviction_policy(platform.eviction_policy);
            if write_through {
                cfg = cfg.writethrough();
            }
            cfg
        };

        match (platform.storage, kind) {
            (StorageKind::Local, SimulatorKind::Cacheless) => {
                Ok(Backend::Direct(DirectFileSystem::new(ctx, disk)))
            }
            (StorageKind::Local, SimulatorKind::PageCache | SimulatorKind::Prototype) => {
                let mm = MemoryManager::new(
                    ctx,
                    cache_config(false, platform.host_memory),
                    memory,
                    disk.clone(),
                );
                let io = IoController::new(ctx, mm).with_chunk_size(platform.chunk_size);
                Ok(Backend::Cached(CachedFileSystem::new(io, disk)))
            }
            (StorageKind::Local, SimulatorKind::KernelEmu) => {
                let mut tuning = KernelTuning::with_memory(platform.host_memory);
                tuning.dirty_ratio = platform.dirty_ratio;
                tuning.dirty_background_ratio = platform.dirty_background_ratio;
                tuning.dirty_expire = platform.dirty_expire;
                tuning.writeback_interval = platform.flush_interval;
                tuning.readahead_min = platform.readahead_min;
                tuning.readahead_max = platform.readahead_max;
                tuning.throttle_pacing = platform.throttle_pacing;
                tuning.eviction_policy = platform.eviction_policy;
                let cache = KernelCache::new(ctx, tuning, memory, disk.clone());
                Ok(Backend::Kernel(
                    KernelFileSystem::new(ctx, cache, disk).with_request_size(platform.chunk_size),
                ))
            }
            (StorageKind::Nfs, SimulatorKind::Cacheless) => {
                let link =
                    degenerate_nfs_link(ctx, devices.network_bandwidth, devices.network_latency);
                let server_disk = Disk::new(ctx, "nfs-server-disk", devices.remote_disk);
                Ok(Backend::DirectNfs(DirectNfs::new(ctx, link, server_disk)))
            }
            (StorageKind::Nfs, SimulatorKind::PageCache | SimulatorKind::KernelEmu) => {
                // The ground truth for NFS uses the same macroscopic NFS model
                // but with the measured bandwidths: the cache-relevant kernel
                // behaviours (dirty thresholds, write protection) play no role
                // because the server cache is writethrough and the client has
                // no write cache.
                let client_mm = MemoryManager::new(
                    ctx,
                    cache_config(false, platform.host_memory),
                    memory,
                    disk,
                );
                let server_memory = MemoryDevice::new(ctx, devices.memory);
                let server_disk = Disk::new(ctx, "nfs-server-disk", devices.remote_disk);
                let server_mm = MemoryManager::new(
                    ctx,
                    cache_config(true, platform.server_memory),
                    server_memory,
                    server_disk.clone(),
                );
                let link =
                    degenerate_nfs_link(ctx, devices.network_bandwidth, devices.network_latency);
                let server = NfsServer::new(server_mm, server_disk);
                Ok(Backend::Nfs(
                    NfsFileSystem::new(ctx, client_mm, link, server)
                        .with_chunk_size(platform.chunk_size),
                ))
            }
            (StorageKind::Nfs, SimulatorKind::Prototype) => Err(ScenarioError::Unsupported(
                "the Python prototype does not simulate network filesystems".to_string(),
            )),
            (StorageKind::Fleet, SimulatorKind::PageCache) => {
                let spec = platform.fleet.as_ref().ok_or_else(|| {
                    ScenarioError::InvalidPlatform(
                        "fleet storage requires a fleet spec (see with_fleet)".to_string(),
                    )
                })?;
                Ok(Backend::Fleet(FleetClient::build(
                    ctx, platform, &devices, spec,
                )?))
            }
            (StorageKind::Fleet, _) => Err(ScenarioError::Unsupported(
                "the replicated storage fleet is modelled only by the page-cache simulator"
                    .to_string(),
            )),
        }
    }

    /// The back-end view for application instance `instance`: the fleet
    /// homes instances on client hosts round-robin; every other back-end is
    /// host-wide shared state and is returned as a plain clone.
    pub fn for_instance(&self, instance: usize) -> Backend {
        match self {
            Backend::Fleet(fleet) => Backend::Fleet(fleet.for_client(instance)),
            other => other.clone(),
        }
    }

    /// The storage fleet behind this back-end, if it is a fleet.
    pub fn fleet(&self) -> Option<&FleetClient> {
        match self {
            Backend::Fleet(fleet) => Some(fleet),
            _ => None,
        }
    }

    /// The network-tier statistics, if this back-end has a network tier.
    pub fn net_report(&self) -> Option<NetReport> {
        self.fleet().map(FleetClient::net_report)
    }
}

/// The legacy one-client/one-server NFS topology, expressed as a degenerate
/// fabric: two hosts joined by one link. The link's shared channel is
/// constructed with exactly the same parameters as the historical
/// `NetworkLink`, so NFS predictions are bit-identical.
fn degenerate_nfs_link(ctx: &SimContext, bandwidth: f64, latency: f64) -> NetworkLink {
    let fabric = Fabric::new(ctx);
    fabric.add_host("client");
    fabric.add_host("server");
    fabric.add_link("nfs-link", bandwidth, latency);
    fabric.add_route("client", "server", "nfs-link");
    NetworkLink::from_channel(fabric.link_channel("nfs-link").expect("link just added"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use storage_model::units::{GB, MB};
    use storage_model::DeviceSpec;

    fn platform() -> PlatformSpec {
        PlatformSpec::uniform(
            8.0 * GB,
            DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
        )
    }

    #[test]
    fn build_all_local_backends() {
        let sim = Simulation::new();
        let ctx = sim.context();
        for kind in SimulatorKind::all() {
            let backend = Backend::build(&ctx, &platform(), kind).unwrap();
            // Cacheless has no memory model; the others do.
            let has_memory = backend.sample_memory().is_some();
            assert_eq!(has_memory, kind != SimulatorKind::Cacheless, "{kind:?}");
        }
    }

    #[test]
    fn build_nfs_backends() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let platform = platform().with_nfs();
        for kind in [
            SimulatorKind::Cacheless,
            SimulatorKind::PageCache,
            SimulatorKind::KernelEmu,
        ] {
            let backend = Backend::build(&ctx, &platform, kind).unwrap();
            backend.create_file(&"f".into(), 100.0 * MB).unwrap();
        }
        assert!(matches!(
            Backend::build(&ctx, &platform, SimulatorKind::Prototype),
            Err(ScenarioError::Unsupported(_))
        ));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = SimulatorKind::all().iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn direct_nfs_read_write_times() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let platform = platform().with_nfs();
        let backend = Backend::build(&ctx, &platform, SimulatorKind::Cacheless).unwrap();
        backend.create_file(&"f".into(), 465.0 * MB).unwrap();
        let h = sim.spawn({
            let backend = backend.clone();
            async move {
                let r = backend.read_file(&"f".into()).await.unwrap();
                let w = backend.write_file(&"g".into(), 465.0 * MB).await.unwrap();
                (r.duration, w.duration)
            }
        });
        sim.run();
        let (r, w) = h.try_take_result().unwrap();
        // disk (1 s) + network (0.155 s), both directions.
        assert!((r - 1.155).abs() < 0.01, "read {r}");
        assert!((w - 1.155).abs() < 0.01, "write {w}");
    }

    #[test]
    fn whole_file_ops_are_range_corollaries() {
        for kind in SimulatorKind::all() {
            let sim = Simulation::new();
            let ctx = sim.context();
            let backend = Backend::build(&ctx, &platform(), kind).unwrap();
            backend.create_file(&"f".into(), 400.0 * MB).unwrap();
            let h = sim.spawn({
                let backend = backend.clone();
                async move {
                    let whole = backend.read_file(&"f".into()).await.unwrap();
                    backend.release_anonymous_memory(400.0 * MB);
                    let range = backend
                        .read_range(&"f".into(), 0.0, f64::INFINITY)
                        .await
                        .unwrap();
                    (whole, range)
                }
            });
            sim.run();
            let (whole, range) = h.try_take_result().unwrap();
            assert_eq!(whole.bytes_from_disk, 400.0 * MB, "{kind:?}");
            assert_eq!(whole.bytes_from_disk + whole.bytes_from_cache, 400.0 * MB);
            // The second whole read goes through the same range path.
            assert_eq!(
                range.bytes_from_disk + range.bytes_from_cache,
                400.0 * MB,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn fsync_semantics_per_backend() {
        // Writeback back-ends flush on fsync; synchronous ones report 0.
        for (kind, expect_flush) in [
            (SimulatorKind::Cacheless, false),
            (SimulatorKind::PageCache, true),
            (SimulatorKind::KernelEmu, true),
        ] {
            let sim = Simulation::new();
            let ctx = sim.context();
            let backend = Backend::build(&ctx, &platform(), kind).unwrap();
            let h = sim.spawn({
                let backend = backend.clone();
                async move {
                    backend
                        .write_range(&"f".into(), 0.0, 200.0 * MB)
                        .await
                        .unwrap();
                    backend.fsync(&"f".into()).await.unwrap()
                }
            });
            sim.run();
            let stats = h.try_take_result().unwrap();
            if expect_flush {
                assert!(
                    (stats.bytes_to_disk - 200.0 * MB).abs() < MB,
                    "{kind:?}: fsync flushed {}",
                    stats.bytes_to_disk
                );
            } else {
                assert_eq!(stats.bytes_to_disk, 0.0, "{kind:?}");
            }
        }
        // NFS mounts are writethrough: fsync is a no-op.
        let sim = Simulation::new();
        let ctx = sim.context();
        let backend =
            Backend::build(&ctx, &platform().with_nfs(), SimulatorKind::PageCache).unwrap();
        let h = sim.spawn({
            let backend = backend.clone();
            async move {
                backend
                    .write_range(&"f".into(), 0.0, 100.0 * MB)
                    .await
                    .unwrap();
                backend.fsync(&"f".into()).await.unwrap()
            }
        });
        sim.run();
        assert_eq!(h.try_take_result().unwrap().bytes_to_disk, 0.0);
    }

    #[test]
    fn write_file_truncates_uniformly_across_backends() {
        // Whole-file rewrite with a smaller size: every back-end replaces
        // the registration (truncate semantics), so a later whole read sees
        // the new size.
        for (kind, nfs) in [
            (SimulatorKind::Cacheless, false),
            (SimulatorKind::PageCache, false),
            (SimulatorKind::KernelEmu, false),
            (SimulatorKind::PageCache, true),
            (SimulatorKind::Cacheless, true),
        ] {
            let sim = Simulation::new();
            let ctx = sim.context();
            let p = if nfs {
                platform().with_nfs()
            } else {
                platform()
            };
            let backend = Backend::build(&ctx, &p, kind).unwrap();
            let h = sim.spawn({
                let backend = backend.clone();
                async move {
                    backend.write_file(&"f".into(), 500.0 * MB).await.unwrap();
                    backend.write_file(&"f".into(), 100.0 * MB).await.unwrap();
                    backend.release_anonymous_memory(600.0 * MB);
                    backend.read_file(&"f".into()).await.unwrap()
                }
            });
            sim.run();
            let read = h.try_take_result().unwrap();
            let total = read.bytes_from_disk + read.bytes_from_cache;
            assert!(
                (total - 100.0 * MB).abs() < MB,
                "{kind:?} nfs={nfs}: whole read saw {total} bytes"
            );
        }
    }

    #[test]
    fn non_finite_write_ranges_are_rejected() {
        for kind in SimulatorKind::all() {
            let sim = Simulation::new();
            let ctx = sim.context();
            let backend = Backend::build(&ctx, &platform(), kind).unwrap();
            let h = sim.spawn({
                let backend = backend.clone();
                async move {
                    let inf_len = backend.write_range(&"f".into(), 0.0, f64::INFINITY).await;
                    let nan_off = backend.write_range(&"f".into(), f64::NAN, 10.0).await;
                    let inf_file = backend.write_file(&"f".into(), f64::INFINITY).await;
                    (inf_len, nan_off, inf_file)
                }
            });
            sim.run();
            let (inf_len, nan_off, inf_file) = h.try_take_result().unwrap();
            for (what, r) in [
                ("len=inf", inf_len),
                ("offset=nan", nan_off),
                ("size=inf", inf_file),
            ] {
                assert!(
                    matches!(
                        r,
                        Err(ScenarioError::Filesystem(FsError::InvalidRange { .. }))
                            | Err(ScenarioError::Kernel(KernelFsError::InvalidRange { .. }))
                    ),
                    "{kind:?} {what}: {r:?}"
                );
            }
        }
    }

    #[test]
    fn crash_durability_semantics_per_backend() {
        // 200 MB written without fsync: lost on writeback back-ends, durable
        // on synchronous/writethrough ones. A second file is fsync'd and must
        // survive everywhere.
        for (kind, nfs, expect_lost) in [
            (SimulatorKind::Cacheless, false, false),
            (SimulatorKind::PageCache, false, true),
            (SimulatorKind::Prototype, false, true),
            (SimulatorKind::KernelEmu, false, true),
            (SimulatorKind::PageCache, true, false),
            (SimulatorKind::KernelEmu, true, false),
            (SimulatorKind::Cacheless, true, false),
        ] {
            let sim = Simulation::new();
            let ctx = sim.context();
            let p = if nfs {
                platform().with_nfs()
            } else {
                platform()
            };
            let backend = Backend::build(&ctx, &p, kind).unwrap();
            let h = sim.spawn({
                let backend = backend.clone();
                async move {
                    backend
                        .write_range(&"dirty".into(), 0.0, 200.0 * MB)
                        .await
                        .unwrap();
                    backend
                        .write_range(&"synced".into(), 0.0, 100.0 * MB)
                        .await
                        .unwrap();
                    backend.fsync(&"synced".into()).await.unwrap();
                    backend.crash()
                }
            });
            sim.run();
            let report = h.try_take_result().unwrap();
            let ctx_label = format!("{kind:?} nfs={nfs}");
            let dirty = &report.files[&"dirty".into()];
            let synced = &report.files[&"synced".into()];
            assert_eq!(
                synced.lost_bytes, 0.0,
                "{ctx_label}: fsync'd file lost data"
            );
            assert!(
                (synced.durable_bytes - 100.0 * MB).abs() < MB,
                "{ctx_label}: fsync'd file durable {}",
                synced.durable_bytes
            );
            if expect_lost {
                assert!(
                    (dirty.lost_bytes - 200.0 * MB).abs() < MB,
                    "{ctx_label}: expected the unsynced file lost, got {}",
                    dirty.lost_bytes
                );
                assert_eq!(dirty.durable_bytes, 0.0, "{ctx_label}");
            } else {
                assert_eq!(dirty.lost_bytes, 0.0, "{ctx_label}");
                assert!(
                    (dirty.durable_bytes - 200.0 * MB).abs() < MB,
                    "{ctx_label}: {}",
                    dirty.durable_bytes
                );
            }
            // The cache is cold after the crash: nothing is sampled as used.
            if let Some(sample) = backend.sample_memory() {
                assert!(sample.cached < MB, "{ctx_label}: cache survived the crash");
                assert!(sample.dirty < MB, "{ctx_label}");
            }
        }
    }

    #[test]
    fn kernel_crash_reports_byte_exact_durable_ranges() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let backend = Backend::build(&ctx, &platform(), SimulatorKind::KernelEmu).unwrap();
        backend.create_file(&"f".into(), 400.0 * MB).unwrap();
        let h = sim.spawn({
            let backend = backend.clone();
            async move {
                // Dirty two disjoint ranges of a durable file.
                backend
                    .write_range(&"f".into(), 50.0 * MB, 50.0 * MB)
                    .await
                    .unwrap();
                backend
                    .write_range(&"f".into(), 300.0 * MB, 20.0 * MB)
                    .await
                    .unwrap();
                backend.crash()
            }
        });
        sim.run();
        let report = h.try_take_result().unwrap();
        let f = &report.files[&"f".into()];
        assert_eq!(
            f.durable_ranges,
            vec![
                (0.0, 50.0 * MB),
                (100.0 * MB, 300.0 * MB),
                (320.0 * MB, 400.0 * MB)
            ]
        );
        assert_eq!(f.lost_bytes, 70.0 * MB);
        assert_eq!(f.durable_bytes, 330.0 * MB);
    }

    #[test]
    fn fsync_of_missing_file_is_an_error() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let backend = Backend::build(&ctx, &platform(), SimulatorKind::PageCache).unwrap();
        let h = sim.spawn({
            let backend = backend.clone();
            async move { backend.fsync(&"missing".into()).await }
        });
        sim.run();
        assert!(matches!(
            h.try_take_result().unwrap(),
            Err(ScenarioError::Filesystem(FsError::FileNotFound(_)))
        ));
    }

    #[test]
    fn invalid_platform_is_rejected() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let mut p = platform();
        p.host_memory = -1.0;
        assert!(matches!(
            Backend::build(&ctx, &p, SimulatorKind::PageCache),
            Err(ScenarioError::InvalidPlatform(_))
        ));
    }

    #[test]
    fn structured_errors_preserve_the_cause() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let backend = Backend::build(&ctx, &platform(), SimulatorKind::KernelEmu).unwrap();
        let h = sim.spawn({
            let backend = backend.clone();
            async move { backend.read_file(&"nope".into()).await }
        });
        sim.run();
        match h.try_take_result().unwrap() {
            Err(ScenarioError::Kernel(KernelFsError::FileNotFound(f))) => {
                assert_eq!(f.name(), "nope");
            }
            other => panic!("expected structured kernel error, got {other:?}"),
        }
    }
}
