//! Simulator back-ends: the four ways a scenario can be executed.
//!
//! | Back-end | Paper counterpart | Devices | Page cache |
//! |---|---|---|---|
//! | [`SimulatorKind::Cacheless`] | vanilla WRENCH | simulated (symmetric) | none |
//! | [`SimulatorKind::Prototype`] | Python prototype | simulated, no bandwidth sharing | macroscopic model |
//! | [`SimulatorKind::PageCache`] | WRENCH-cache | simulated (symmetric) | macroscopic model |
//! | [`SimulatorKind::KernelEmu`] | the real cluster | measured (asymmetric) | page-granularity emulator |

use des::SimContext;
use kernel_emu::{KernelCache, KernelFileSystem, KernelTuning};
use pagecache::{FileId, IoController, IoOpStats, MemoryManager, MemorySample, PageCacheConfig};
use simfs::{CachedFileSystem, DirectFileSystem, FileSystem, NfsFileSystem, NfsServer};
use storage_model::{Disk, MemoryDevice, NetworkLink};

use crate::platform::{DeviceSet, PlatformSpec, StorageKind};

/// Which simulator runs the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimulatorKind {
    /// No page cache: every I/O is a device access (original WRENCH).
    Cacheless,
    /// Page cache model without bandwidth sharing (the paper's Python
    /// prototype; single-instance scenarios only).
    Prototype,
    /// The full page cache model on shared devices (WRENCH-cache).
    PageCache,
    /// The kernel-fidelity emulator with measured bandwidths (stands in for
    /// the real cluster).
    KernelEmu,
}

impl SimulatorKind {
    /// Short label used in reports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            SimulatorKind::Cacheless => "WRENCH (cacheless)",
            SimulatorKind::Prototype => "Python-prototype",
            SimulatorKind::PageCache => "WRENCH-cache",
            SimulatorKind::KernelEmu => "Real-system emulator",
        }
    }

    /// All four back-ends.
    pub fn all() -> [SimulatorKind; 4] {
        [
            SimulatorKind::Cacheless,
            SimulatorKind::Prototype,
            SimulatorKind::PageCache,
            SimulatorKind::KernelEmu,
        ]
    }
}

/// Errors raised while building or running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The platform description is invalid.
    InvalidPlatform(String),
    /// The back-end cannot run this scenario (e.g. the prototype with NFS).
    Unsupported(String),
    /// A filesystem operation failed.
    Filesystem(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidPlatform(m) => write!(f, "invalid platform: {m}"),
            ScenarioError::Unsupported(m) => write!(f, "unsupported scenario: {m}"),
            ScenarioError::Filesystem(m) => write!(f, "filesystem error: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A cacheless NFS mount (vanilla WRENCH with remote storage): every access is
/// a network transfer plus a server disk access.
#[derive(Clone)]
pub struct DirectNfs {
    ctx: SimContext,
    link: NetworkLink,
    server_disk: Disk,
    registry: simfs::FileRegistry,
}

impl DirectNfs {
    fn new(ctx: &SimContext, link: NetworkLink, server_disk: Disk) -> Self {
        DirectNfs {
            ctx: ctx.clone(),
            link,
            server_disk,
            registry: simfs::FileRegistry::new(),
        }
    }

    fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        self.server_disk
            .allocate(size)
            .map_err(|e| ScenarioError::Filesystem(e.to_string()))?;
        self.registry
            .create(file, size)
            .map_err(|e| ScenarioError::Filesystem(e.to_string()))
    }

    async fn read_file(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        let size = self
            .registry
            .size(file)
            .map_err(|e| ScenarioError::Filesystem(e.to_string()))?;
        let start = self.ctx.now();
        self.server_disk.read(size).await;
        self.link.transfer(size).await;
        Ok(IoOpStats {
            bytes_from_disk: size,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        if let Some(old) = self.registry.create_or_replace(file, size) {
            self.server_disk.free(old);
        }
        self.server_disk
            .allocate(size)
            .map_err(|e| ScenarioError::Filesystem(e.to_string()))?;
        let start = self.ctx.now();
        self.link.transfer(size).await;
        self.server_disk.write(size).await;
        Ok(IoOpStats {
            bytes_to_disk: size,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }
}

/// A fully constructed simulation back-end: devices plus filesystem.
#[derive(Clone)]
pub enum Backend {
    /// One of the `simfs` filesystems (cached, direct, or NFS).
    Fs(FileSystem),
    /// The kernel-fidelity emulator.
    Kernel(KernelFileSystem),
    /// Cacheless remote storage.
    DirectNfs(DirectNfs),
}

impl Backend {
    /// Builds the devices and filesystem for a platform and simulator kind.
    pub fn build(
        ctx: &SimContext,
        platform: &PlatformSpec,
        kind: SimulatorKind,
    ) -> Result<Backend, ScenarioError> {
        platform
            .validate()
            .map_err(ScenarioError::InvalidPlatform)?;
        let devices = match kind {
            SimulatorKind::KernelEmu => platform.real,
            _ => platform.simulated,
        };
        let devices = match kind {
            SimulatorKind::Prototype => DeviceSet {
                memory: devices.memory.without_contention(),
                disk: devices.disk.without_contention(),
                remote_disk: devices.remote_disk.without_contention(),
                ..devices
            },
            _ => devices,
        };
        let memory = MemoryDevice::new(ctx, devices.memory);
        let disk = Disk::new(ctx, "local-disk", devices.disk);

        let cache_config = |write_through: bool, total: f64| {
            let mut cfg = PageCacheConfig::with_memory(total)
                .with_dirty_ratio(platform.dirty_ratio)
                .with_dirty_expire(platform.dirty_expire)
                .with_flush_interval(platform.flush_interval);
            if write_through {
                cfg = cfg.writethrough();
            }
            cfg
        };

        match (platform.storage, kind) {
            (StorageKind::Local, SimulatorKind::Cacheless) => Ok(Backend::Fs(FileSystem::Direct(
                DirectFileSystem::new(ctx, disk),
            ))),
            (StorageKind::Local, SimulatorKind::PageCache | SimulatorKind::Prototype) => {
                let mm = MemoryManager::new(
                    ctx,
                    cache_config(false, platform.host_memory),
                    memory,
                    disk.clone(),
                );
                let io = IoController::new(ctx, mm).with_chunk_size(platform.chunk_size);
                Ok(Backend::Fs(FileSystem::Cached(CachedFileSystem::new(
                    io, disk,
                ))))
            }
            (StorageKind::Local, SimulatorKind::KernelEmu) => {
                let mut tuning = KernelTuning::with_memory(platform.host_memory);
                tuning.dirty_ratio = platform.dirty_ratio;
                tuning.dirty_background_ratio = platform.dirty_background_ratio;
                tuning.dirty_expire = platform.dirty_expire;
                tuning.writeback_interval = platform.flush_interval;
                let cache = KernelCache::new(ctx, tuning, memory, disk.clone());
                Ok(Backend::Kernel(
                    KernelFileSystem::new(ctx, cache, disk).with_request_size(platform.chunk_size),
                ))
            }
            (StorageKind::Nfs, SimulatorKind::Cacheless) => {
                let link = NetworkLink::new(
                    ctx,
                    "nfs-link",
                    devices.network_bandwidth,
                    devices.network_latency,
                );
                let server_disk = Disk::new(ctx, "nfs-server-disk", devices.remote_disk);
                Ok(Backend::DirectNfs(DirectNfs::new(ctx, link, server_disk)))
            }
            (StorageKind::Nfs, SimulatorKind::PageCache | SimulatorKind::KernelEmu) => {
                // The ground truth for NFS uses the same macroscopic NFS model
                // but with the measured bandwidths: the cache-relevant kernel
                // behaviours (dirty thresholds, write protection) play no role
                // because the server cache is writethrough and the client has
                // no write cache.
                let client_mm = MemoryManager::new(
                    ctx,
                    cache_config(false, platform.host_memory),
                    memory,
                    disk,
                );
                let server_memory = MemoryDevice::new(ctx, devices.memory);
                let server_disk = Disk::new(ctx, "nfs-server-disk", devices.remote_disk);
                let server_mm = MemoryManager::new(
                    ctx,
                    cache_config(true, platform.server_memory),
                    server_memory,
                    server_disk.clone(),
                );
                let link = NetworkLink::new(
                    ctx,
                    "nfs-link",
                    devices.network_bandwidth,
                    devices.network_latency,
                );
                let server = NfsServer::new(server_mm, server_disk);
                Ok(Backend::Fs(FileSystem::Nfs(
                    NfsFileSystem::new(ctx, client_mm, link, server)
                        .with_chunk_size(platform.chunk_size),
                )))
            }
            (StorageKind::Nfs, SimulatorKind::Prototype) => Err(ScenarioError::Unsupported(
                "the Python prototype does not simulate network filesystems".to_string(),
            )),
        }
    }

    /// Registers a pre-existing file.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), ScenarioError> {
        match self {
            Backend::Fs(fs) => fs
                .create_file(file, size)
                .map_err(|e| ScenarioError::Filesystem(e.to_string())),
            Backend::Kernel(fs) => fs
                .create_file(file, size)
                .map_err(ScenarioError::Filesystem),
            Backend::DirectNfs(fs) => fs.create_file(file, size),
        }
    }

    /// Reads a whole file.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, ScenarioError> {
        match self {
            Backend::Fs(fs) => fs
                .read_file(file)
                .await
                .map_err(|e| ScenarioError::Filesystem(e.to_string())),
            Backend::Kernel(fs) => fs.read_file(file).await.map_err(ScenarioError::Filesystem),
            Backend::DirectNfs(fs) => fs.read_file(file).await,
        }
    }

    /// Writes a whole file.
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, ScenarioError> {
        match self {
            Backend::Fs(fs) => fs
                .write_file(file, size)
                .await
                .map_err(|e| ScenarioError::Filesystem(e.to_string())),
            Backend::Kernel(fs) => fs
                .write_file(file, size)
                .await
                .map_err(ScenarioError::Filesystem),
            Backend::DirectNfs(fs) => fs.write_file(file, size).await,
        }
    }

    /// Starts the background flusher / writeback threads (if the back-end has
    /// a page cache).
    pub fn start_background(&self) {
        match self {
            Backend::Fs(FileSystem::Cached(fs)) => {
                fs.memory_manager().spawn_periodical_flusher();
            }
            Backend::Kernel(fs) => {
                fs.cache().spawn_writeback_threads();
            }
            _ => {}
        }
    }

    /// Stops the background threads so the simulation can terminate.
    pub fn stop_background(&self) {
        match self {
            Backend::Fs(FileSystem::Cached(fs)) => fs.memory_manager().stop(),
            Backend::Kernel(fs) => fs.cache().stop(),
            _ => {}
        }
    }

    /// Registers anonymous memory used by the application.
    pub fn release_anonymous_memory(&self, amount: f64) {
        match self {
            Backend::Fs(fs) => {
                if let Some(mm) = fs.memory_manager() {
                    mm.release_anonymous_memory(amount);
                }
            }
            Backend::Kernel(fs) => fs.cache().release_anonymous_memory(amount),
            Backend::DirectNfs(_) => {}
        }
    }

    /// Takes a memory sample (no-op on back-ends without memory modelling).
    pub fn sample_memory(&self) -> Option<MemorySample> {
        match self {
            Backend::Fs(fs) => fs.memory_manager().map(|mm| mm.sample()),
            Backend::Kernel(fs) => Some(fs.cache().sample()),
            Backend::DirectNfs(_) => None,
        }
    }

    /// The collected memory trace, if any.
    pub fn memory_trace(&self) -> Option<pagecache::MemoryTrace> {
        match self {
            Backend::Fs(fs) => fs.memory_manager().map(|mm| mm.trace()),
            Backend::Kernel(fs) => Some(fs.cache().trace()),
            Backend::DirectNfs(_) => None,
        }
    }

    /// A labelled snapshot of the cache content per file, if the back-end has
    /// a cache.
    pub fn cache_snapshot(&self, label: &str) -> Option<pagecache::CacheContentSnapshot> {
        match self {
            Backend::Fs(fs) => fs
                .memory_manager()
                .map(|mm| mm.cache_content_snapshot(label)),
            Backend::Kernel(fs) => Some(fs.cache().cache_content_snapshot(label)),
            Backend::DirectNfs(_) => None,
        }
    }

    /// Cumulative writeback/eviction counters of the back-end's page cache,
    /// if it has one. These are the per-run statistics the sweep harness
    /// records next to the simulated times.
    pub fn writeback_counters(&self) -> Option<crate::report::WritebackCounters> {
        match self {
            Backend::Fs(fs) => fs.memory_manager().map(|mm| {
                let c = mm.counters();
                crate::report::WritebackCounters {
                    background_flushed: c.flushed_background,
                    synchronous_flushed: c.flushed_on_demand,
                    evicted: c.evicted,
                }
            }),
            Backend::Kernel(fs) => {
                let c = fs.cache().counters();
                Some(crate::report::WritebackCounters {
                    background_flushed: c.background_writeback,
                    synchronous_flushed: c.throttled_writeback,
                    evicted: c.evicted,
                })
            }
            Backend::DirectNfs(_) => None,
        }
    }

    /// Short label of the back-end kind.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Backend::Fs(fs) => fs.kind(),
            Backend::Kernel(_) => "kernel-emu",
            Backend::DirectNfs(_) => "direct-nfs",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use storage_model::units::{GB, MB};
    use storage_model::DeviceSpec;

    fn platform() -> PlatformSpec {
        PlatformSpec::uniform(
            8.0 * GB,
            DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
        )
    }

    #[test]
    fn build_all_local_backends() {
        let sim = Simulation::new();
        let ctx = sim.context();
        for kind in SimulatorKind::all() {
            let backend = Backend::build(&ctx, &platform(), kind).unwrap();
            // Cacheless has no memory model; the others do.
            let has_memory = backend.sample_memory().is_some();
            assert_eq!(has_memory, kind != SimulatorKind::Cacheless, "{kind:?}");
        }
    }

    #[test]
    fn build_nfs_backends() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let platform = platform().with_nfs();
        for kind in [
            SimulatorKind::Cacheless,
            SimulatorKind::PageCache,
            SimulatorKind::KernelEmu,
        ] {
            let backend = Backend::build(&ctx, &platform, kind).unwrap();
            backend.create_file(&"f".into(), 100.0 * MB).unwrap();
        }
        assert!(matches!(
            Backend::build(&ctx, &platform, SimulatorKind::Prototype),
            Err(ScenarioError::Unsupported(_))
        ));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = SimulatorKind::all().iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn direct_nfs_read_write_times() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let platform = platform().with_nfs();
        let backend = Backend::build(&ctx, &platform, SimulatorKind::Cacheless).unwrap();
        backend.create_file(&"f".into(), 465.0 * MB).unwrap();
        let h = sim.spawn({
            let backend = backend.clone();
            async move {
                let r = backend.read_file(&"f".into()).await.unwrap();
                let w = backend.write_file(&"g".into(), 465.0 * MB).await.unwrap();
                (r.duration, w.duration)
            }
        });
        sim.run();
        let (r, w) = h.try_take_result().unwrap();
        // disk (1 s) + network (0.155 s), both directions.
        assert!((r - 1.155).abs() < 0.01, "read {r}");
        assert!((w - 1.155).abs() < 0.01, "write {w}");
    }

    #[test]
    fn invalid_platform_is_rejected() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let mut p = platform();
        p.host_memory = -1.0;
        assert!(matches!(
            Backend::build(&ctx, &p, SimulatorKind::PageCache),
            Err(ScenarioError::InvalidPlatform(_))
        ));
    }
}
