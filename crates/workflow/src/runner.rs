//! Scenario runner: builds a back-end, spawns the application instances as
//! simulated processes, and collects the report.
//!
//! This is the equivalent of a WRENCH "simulator" program: the experiments of
//! the paper are all expressed as [`Scenario`]s and executed by
//! [`run_scenario`]. Each task's workload program (see [`crate::Op`]) is
//! executed op by op; op timings and statistics are attributed to the
//! classic read/compute/write phases of the [`TaskReport`] by op category
//! (reads → read phase, writes/fsync/sync → write phase), so legacy
//! three-phase tasks report exactly what they always did and custom programs
//! reuse the same reporting shape.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use des::Simulation;
use pagecache::FileId;

use crate::backend::{Backend, IoBackend, ScenarioError, SimulatorKind};
use crate::faults::{FaultEvent, FaultPlan, FaultState, InjectedFault, OpClass};
use crate::platform::{PlatformSpec, StorageKind};
use crate::report::{InstanceReport, ScenarioReport, TaskReport, TaskStatus};
use crate::spec::{flatten_program, ApplicationSpec, Op};
use crate::traffic::{run_generator, TrafficReport, TrafficSpec};

/// A complete experiment configuration: platform + application + back-end.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The platform to simulate.
    pub platform: PlatformSpec,
    /// The application every instance runs.
    pub application: ApplicationSpec,
    /// Number of concurrent application instances (each operating on its own
    /// files, as in Exp 2 and 3).
    pub instances: usize,
    /// The simulator back-end.
    pub kind: SimulatorKind,
    /// Period of the background memory sampler, seconds (`None` disables it;
    /// samples are always taken at phase boundaries).
    pub sample_interval: Option<f64>,
    /// Injected faults (crash, I/O errors, disk-full, NFS outages). Empty by
    /// default: without an explicit plan the run is fault-free and
    /// bit-identical to what it was before faults existed.
    pub faults: FaultPlan,
    /// When `true` and the fault plan's crash fires, the whole application is
    /// re-run against the post-crash durable state with faults disarmed; the
    /// second pass is reported in [`ScenarioReport::restart_reports`].
    pub restart_after_crash: bool,
    /// Traffic generators running alongside the application instances (see
    /// [`crate::traffic`]). Empty by default: scenarios without traffic are
    /// bit-identical to what they were before the traffic tier existed.
    pub traffic: Vec<TrafficSpec>,
}

impl Scenario {
    /// Creates a single-instance scenario.
    pub fn new(platform: PlatformSpec, application: ApplicationSpec, kind: SimulatorKind) -> Self {
        Scenario {
            platform,
            application,
            instances: 1,
            kind,
            sample_interval: Some(2.0),
            faults: FaultPlan::none(),
            restart_after_crash: false,
            traffic: Vec::new(),
        }
    }

    /// Attaches traffic generators that run alongside the application
    /// instances. Generator `i` uses cache group `i` when its spec carries a
    /// [`crate::TenantSpec`].
    pub fn with_traffic(mut self, traffic: Vec<TrafficSpec>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Attaches a fault plan. The plan is validated by [`run_scenario`].
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Requests a restart pass after the planned crash fires: the application
    /// re-runs from its first task against the durable post-crash state.
    pub fn with_restart_after_crash(mut self) -> Self {
        self.restart_after_crash = true;
        self
    }

    /// Sets the number of concurrent instances. At least one instance is
    /// required; zero is reported as [`ScenarioError::InvalidScenario`]
    /// through the normal error path.
    pub fn with_instances(mut self, instances: usize) -> Result<Self, ScenarioError> {
        if instances == 0 {
            return Err(ScenarioError::InvalidScenario(
                "at least one instance is required".to_string(),
            ));
        }
        self.instances = instances;
        Ok(self)
    }

    /// Sets (or disables) the background memory sampling interval.
    pub fn with_sample_interval(mut self, interval: Option<f64>) -> Self {
        self.sample_interval = interval;
        self
    }
}

/// Scopes a file name to an instance so concurrent instances operate on
/// different files (paper Exp 2: "all application instances operating on
/// different files"). Names starting with `shared/` escape scoping: every
/// instance sees the same file (e.g. a hot file all fleet clients stampede
/// on).
pub fn scoped_file(name: &str, instance: usize, instances: usize) -> FileId {
    if instances <= 1 || name.starts_with("shared/") {
        FileId::new(name)
    } else {
        FileId::new(format!("i{instance:02}_{name}"))
    }
}

/// Runs a scenario to completion and returns its report.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
    if scenario.instances == 0 {
        return Err(ScenarioError::InvalidScenario(
            "at least one instance is required".to_string(),
        ));
    }
    scenario
        .application
        .validate()
        .map_err(ScenarioError::InvalidScenario)?;
    scenario
        .faults
        .validate()
        .map_err(ScenarioError::InvalidScenario)?;
    for spec in &scenario.traffic {
        spec.validate().map_err(ScenarioError::InvalidScenario)?;
    }
    {
        let mut names: Vec<&str> = scenario.traffic.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != scenario.traffic.len() {
            return Err(ScenarioError::InvalidScenario(
                "traffic generator names must be unique".to_string(),
            ));
        }
    }
    let wall_start = Instant::now();
    let sim = Simulation::new();
    let ctx = sim.context();
    let backend = Backend::build(&ctx, &scenario.platform, scenario.kind)?;
    let faults = FaultState::new(
        scenario.faults.clone(),
        scenario.platform.storage == StorageKind::Nfs,
    );

    // Initial files of every instance exist before the applications start.
    // `shared/` files scope to the same id for every instance and are
    // created once.
    let mut created = std::collections::BTreeSet::new();
    for instance in 0..scenario.instances {
        for file in &scenario.application.initial_files {
            let id = scoped_file(&file.name, instance, scenario.instances);
            if created.insert(id.clone()) {
                backend.create_file(&id, file.size)?;
            }
        }
    }

    backend.start_background();
    let done = Rc::new(Cell::new(false));

    // Optional periodic memory sampler (for the Fig. 4b profiles).
    if let Some(interval) = scenario.sample_interval {
        let backend = backend.clone();
        let done = Rc::clone(&done);
        let ctx2 = ctx.clone();
        ctx.spawn(async move {
            while !done.get() {
                backend.sample_memory();
                ctx2.sleep(interval).await;
            }
        });
    }

    // Crash watchdog: at the planned instant, discard every page of volatile
    // cache state and record the durability oracle's verdict. Exits silently
    // if the application finished first (the crash never "happened").
    if let Some(at) = scenario.faults.crash_time() {
        let backend = backend.clone();
        let faults = Rc::clone(&faults);
        let done = Rc::clone(&done);
        let ctx2 = ctx.clone();
        ctx.spawn(async move {
            ctx2.sleep(at).await;
            if done.get() || faults.crashed() {
                return;
            }
            faults.record_crash(backend.crash());
        });
    }

    // Network fault driver: at each planned instant, apply the fabric
    // mutation; events with a finite duration heal afterwards. Events that
    // never heal (infinite duration) cannot hang the run: path checks fail
    // fast and the client retry budget is bounded, so affected operations
    // complete degraded.
    if let Some(fleet) = backend.fleet() {
        for event in &scenario.faults.events {
            let net_event = matches!(
                event,
                FaultEvent::LinkDown { .. }
                    | FaultEvent::Partition { .. }
                    | FaultEvent::ServerCrash { .. }
            );
            if !net_event {
                continue;
            }
            let event = event.clone();
            let fleet = fleet.clone();
            let done = Rc::clone(&done);
            let ctx2 = ctx.clone();
            ctx.spawn(async move {
                match event {
                    FaultEvent::LinkDown { link, at, duration } => {
                        ctx2.sleep(at).await;
                        if done.get() {
                            return;
                        }
                        fleet.fabric().set_link_down(&link);
                        if duration.is_finite() {
                            ctx2.sleep(duration).await;
                            fleet.fabric().set_link_up(&link);
                        }
                    }
                    FaultEvent::Partition {
                        groups,
                        at,
                        duration,
                    } => {
                        ctx2.sleep(at).await;
                        if done.get() {
                            return;
                        }
                        let id = fleet.fabric().apply_partition(groups);
                        if duration.is_finite() {
                            ctx2.sleep(duration).await;
                            fleet.fabric().heal_partition(id);
                        }
                    }
                    FaultEvent::ServerCrash { host, at } => {
                        ctx2.sleep(at).await;
                        if done.get() {
                            return;
                        }
                        fleet.crash_server(&host);
                    }
                    _ => {}
                }
            });
        }
    }

    // Coordinator: spawns one process per instance, awaits them all, then
    // stops the background threads so the simulation can terminate. If the
    // planned crash fired and a restart was requested, a second pass re-runs
    // the whole application against the durable state, faults disarmed.
    let coordinator = {
        let backend = backend.clone();
        let ctx = ctx.clone();
        let app = scenario.application.clone();
        let instances = scenario.instances;
        let done = Rc::clone(&done);
        let faults = Rc::clone(&faults);
        let restart = scenario.restart_after_crash;
        let traffic = scenario.traffic.clone();
        sim.spawn(async move {
            let spawn_pass = |faults: Rc<FaultState>| {
                let mut handles = Vec::new();
                for instance in 0..instances {
                    // Fleet back-ends home each instance on a client host.
                    let backend = backend.for_instance(instance);
                    let ctx = ctx.clone();
                    let app = app.clone();
                    let faults = Rc::clone(&faults);
                    handles.push(ctx.clone().spawn(async move {
                        run_instance(&ctx, &backend, &app, instance, instances, &faults).await
                    }));
                }
                handles
            };
            // Traffic generators run concurrently with the main instance
            // pass (they are load, not tasks: the restart pass re-runs the
            // application only).
            let traffic_handles: Vec<_> = traffic
                .into_iter()
                .enumerate()
                .map(|(index, spec)| {
                    let ctx = ctx.clone();
                    let backend = backend.for_instance(index);
                    let faults = Rc::clone(&faults);
                    ctx.clone().spawn(async move {
                        run_generator(&ctx, &backend, &spec, index as u32, &faults).await
                    })
                })
                .collect();
            let mut reports = Vec::new();
            for handle in spawn_pass(Rc::clone(&faults)) {
                reports.push(handle.await);
            }
            let mut traffic_results = Vec::new();
            for handle in traffic_handles {
                traffic_results.push(handle.await);
            }
            let mut restart_results = Vec::new();
            if faults.crashed() && restart {
                // Discard whatever the instances dirtied between the crash
                // instant and noticing it, then re-run fault-free. The
                // durability verdict stays the one recorded at the crash.
                backend.crash();
                faults.disarm();
                for handle in spawn_pass(Rc::clone(&faults)) {
                    restart_results.push(handle.await);
                }
            }
            done.set(true);
            backend.stop_background();
            (reports, restart_results, traffic_results)
        })
    };

    sim.run();
    let (instance_results, restart_results, traffic_results) = coordinator
        .try_take_result()
        .expect("coordinator did not finish: simulation deadlocked");
    let mut instance_reports = Vec::new();
    let mut cache_snapshots = Vec::new();
    for result in instance_results {
        let (report, snapshots) = result?;
        if report.instance == 0 {
            cache_snapshots = snapshots;
        }
        instance_reports.push(report);
    }
    instance_reports.sort_by_key(|r| r.instance);
    let mut restart_reports = Vec::new();
    for result in restart_results {
        let (report, _) = result?;
        restart_reports.push(report);
    }
    restart_reports.sort_by_key(|r| r.instance);
    let traffic = if traffic_results.is_empty() {
        None
    } else {
        let mut generators = Vec::new();
        for result in traffic_results {
            generators.push(result?);
        }
        Some(TrafficReport { generators })
    };

    Ok(ScenarioReport {
        kind: scenario.kind,
        instances: scenario.instances,
        instance_reports,
        memory_trace: backend.memory_trace(),
        cache_snapshots,
        simulated_duration: sim.now().as_secs(),
        wall_clock_seconds: wall_start.elapsed().as_secs_f64(),
        writeback: backend.writeback_counters(),
        crash: faults.take_crash_report(),
        restart_reports,
        net: backend.net_report(),
        traffic,
    })
}

/// What an I/O operation of a program resolved to under the fault gate.
enum IoOutcome {
    /// The operation ran (possibly after retries) and produced stats.
    Done(pagecache::IoOpStats),
    /// An injected fault that retries could not absorb killed the operation.
    Faulted(InjectedFault),
    /// A simulated crash fired while the operation was pending.
    Crashed,
}

/// Runs every task of one application instance — each task's workload
/// program, op by op — and reports its timings.
///
/// Injected faults degrade rather than abort: a task whose operation fails
/// with an unretryable injected error is marked [`TaskStatus::Failed`] and
/// the instance continues with the next task; a simulated crash marks the
/// current task [`TaskStatus::Interrupted`] and stops the instance.
async fn run_instance(
    ctx: &des::SimContext,
    backend: &Backend,
    app: &ApplicationSpec,
    instance: usize,
    instances: usize,
    faults: &FaultState,
) -> Result<(InstanceReport, Vec<pagecache::CacheContentSnapshot>), ScenarioError> {
    let mut tasks = Vec::new();
    let mut snapshots = Vec::new();
    let take_snapshots = instance == 0;
    let scoped = |name: &str| scoped_file(name, instance, instances);
    for (task_idx, task) in app.tasks.iter().enumerate() {
        if faults.crashed() {
            break;
        }
        let program = flatten_program(&task.lower(task_idx))
            .map_err(|e| ScenarioError::InvalidScenario(format!("task '{}': {e}", task.name)))?;
        let mut report = TaskReport {
            task_name: task.name.clone(),
            read_time: 0.0,
            compute_time: 0.0,
            write_time: 0.0,
            read_stats: pagecache::IoOpStats::default(),
            write_stats: pagecache::IoOpStats::default(),
            status: TaskStatus::Completed,
            retries: 0,
        };
        let mut interrupted = false;
        for op in &program {
            if faults.crashed() {
                report.status = TaskStatus::Interrupted;
                interrupted = true;
                break;
            }
            let start = ctx.now();
            // I/O ops go through the fault gate with per-task retries; the
            // rest (compute, memory, observability) cannot fault.
            let io = match op {
                Op::Read { file, .. } => Some((OpClass::Read, Some(file.as_str()))),
                Op::Write { file, .. } => Some((OpClass::Write, Some(file.as_str()))),
                Op::Fsync(file) => Some((OpClass::Fsync, Some(file.as_str()))),
                Op::Sync => Some((OpClass::Sync, None)),
                _ => None,
            };
            if let Some((class, file)) = io {
                let scoped_id = file.map(scoped);
                let mut attempt: u32 = 1;
                let outcome = loop {
                    if faults.crashed() {
                        break IoOutcome::Crashed;
                    }
                    if let Some(fault) = faults.check(
                        ctx.now().as_secs(),
                        class,
                        file,
                        scoped_id.as_ref(),
                        attempt,
                    ) {
                        if fault.transient && attempt < task.retry.max_attempts {
                            report.retries += 1;
                            let delay = task.retry.delay(attempt);
                            if delay > 0.0 {
                                ctx.sleep(delay).await;
                            }
                            attempt += 1;
                            continue;
                        }
                        break IoOutcome::Faulted(fault);
                    }
                    let result = match op {
                        Op::Read { file, offset, len } => {
                            backend.read_range(&scoped(file), *offset, *len).await
                        }
                        Op::Write { file, offset, len } => {
                            backend.write_range(&scoped(file), *offset, *len).await
                        }
                        Op::Fsync(file) => backend.fsync(&scoped(file)).await,
                        Op::Sync => backend.sync().await,
                        _ => unreachable!("gated ops are I/O ops"),
                    };
                    match result {
                        Ok(stats) => break IoOutcome::Done(stats),
                        // Back-ends with their own robustness layer (the
                        // fleet) surface exhausted-policy failures as
                        // injected faults: the task fails degraded, the run
                        // continues.
                        Err(ScenarioError::Injected(fault)) => break IoOutcome::Faulted(fault),
                        Err(error) => return Err(error),
                    }
                };
                match outcome {
                    IoOutcome::Done(stats) => {
                        // Retry backoff accrues to the op's phase time along
                        // with the I/O itself.
                        if class == OpClass::Read {
                            report.read_stats.merge(&stats);
                            report.read_time += ctx.now().duration_since(start);
                        } else {
                            report.write_stats.merge(&stats);
                            report.write_time += ctx.now().duration_since(start);
                        }
                    }
                    IoOutcome::Faulted(fault) => {
                        report.status = TaskStatus::Failed(fault);
                        break;
                    }
                    IoOutcome::Crashed => {
                        report.status = TaskStatus::Interrupted;
                        interrupted = true;
                        break;
                    }
                }
            } else {
                match op {
                    Op::Compute(secs) => {
                        if *secs > 0.0 {
                            ctx.sleep(*secs).await;
                        }
                        report.compute_time += ctx.now().duration_since(start);
                    }
                    Op::ReleaseMemory(bytes) => {
                        backend.release_anonymous_memory(*bytes);
                    }
                    Op::Sample => {
                        backend.sample_memory();
                    }
                    Op::Snapshot(label) => {
                        if take_snapshots {
                            if let Some(snap) = backend.cache_snapshot(label) {
                                snapshots.push(snap);
                            }
                        }
                    }
                    Op::Repeat { .. } => unreachable!("flatten_program unrolls Repeat"),
                    Op::Read { .. } | Op::Write { .. } | Op::Fsync(_) | Op::Sync => {
                        unreachable!("I/O ops go through the fault gate")
                    }
                }
            }
        }
        tasks.push(report);
        if interrupted {
            break;
        }
    }
    Ok((InstanceReport { instance, tasks }, snapshots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;
    use crate::spec::TaskSpec;
    use storage_model::units::{GB, MB};
    use storage_model::DeviceSpec;

    fn platform() -> PlatformSpec {
        PlatformSpec::uniform(
            8.0 * GB,
            DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
        )
    }

    fn small_app() -> ApplicationSpec {
        ApplicationSpec::synthetic_pipeline(1.0 * GB)
    }

    #[test]
    fn scoped_file_names() {
        assert_eq!(scoped_file("f", 0, 1).name(), "f");
        assert_eq!(scoped_file("f", 3, 8).name(), "i03_f");
        assert_ne!(scoped_file("f", 1, 8), scoped_file("f", 2, 8));
    }

    #[test]
    fn cacheless_run_reports_disk_speed_io() {
        let scenario = Scenario::new(platform(), small_app(), SimulatorKind::Cacheless);
        let report = run_scenario(&scenario).unwrap();
        assert_eq!(report.instance_reports.len(), 1);
        let tasks = &report.instance_reports[0].tasks;
        assert_eq!(tasks.len(), 3);
        // Every read and write is ~1 GB at 465 MB/s ≈ 2.15 s.
        for t in tasks {
            assert!(
                (t.read_time - 1.0 * GB / (465.0 * MB)).abs() < 0.01,
                "{}",
                t.read_time
            );
            assert!(
                (t.write_time - 1.0 * GB / (465.0 * MB)).abs() < 0.01,
                "{}",
                t.write_time
            );
        }
        assert!(report.memory_trace.is_none());
        assert!(report.simulated_duration > 0.0);
    }

    #[test]
    fn pagecache_run_shows_cache_hits_on_rereads() {
        let scenario = Scenario::new(platform(), small_app(), SimulatorKind::PageCache);
        let report = run_scenario(&scenario).unwrap();
        let tasks = &report.instance_reports[0].tasks;
        // Task 1 reads a cold file from disk; tasks 2 and 3 re-read the file
        // written by the previous task, which is still in the cache.
        assert!(tasks[0].read_stats.bytes_from_disk > 0.9 * GB);
        assert!(tasks[1].read_stats.bytes_from_cache > 0.9 * GB);
        assert!(tasks[2].read_stats.bytes_from_cache > 0.9 * GB);
        assert!(tasks[1].read_time < tasks[0].read_time);
        // Writes fit in the dirty headroom of an 8 GB host: memory speed.
        assert!(tasks[0].write_time < 0.5);
        // Memory profile and cache snapshots were collected.
        assert!(report.memory_trace.is_some());
        assert_eq!(report.cache_snapshots.len(), 6);
        assert!(report.memory_trace.unwrap().max_dirty() <= 0.2 * 8.0 * GB + 1.0);
    }

    #[test]
    fn kernel_emu_run_completes_and_traces_memory() {
        let scenario = Scenario::new(platform(), small_app(), SimulatorKind::KernelEmu);
        let report = run_scenario(&scenario).unwrap();
        assert_eq!(report.instance_reports[0].tasks.len(), 3);
        assert!(report.memory_trace.is_some());
        assert!(report.cache_snapshots.len() == 6);
    }

    #[test]
    fn concurrent_instances_contend_for_the_disk() {
        let app = small_app();
        let one = run_scenario(&Scenario::new(
            platform(),
            app.clone(),
            SimulatorKind::Cacheless,
        ))
        .unwrap();
        let four = run_scenario(
            &Scenario::new(platform(), app, SimulatorKind::Cacheless)
                .with_instances(4)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(four.instance_reports.len(), 4);
        // With 4 instances sharing the disk, reads take roughly 4x longer.
        let ratio = four.mean_total_read_time() / one.mean_total_read_time();
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn prototype_matches_pagecache_for_single_instance() {
        let app = small_app();
        let proto = run_scenario(&Scenario::new(
            platform(),
            app.clone(),
            SimulatorKind::Prototype,
        ))
        .unwrap();
        let cache =
            run_scenario(&Scenario::new(platform(), app, SimulatorKind::PageCache)).unwrap();
        // Without concurrency the two models should be very close.
        let a = proto.instance_reports[0].makespan();
        let b = cache.instance_reports[0].makespan();
        assert!((a - b).abs() / b < 0.05, "prototype {a} vs pagecache {b}");
    }

    #[test]
    fn nfs_scenario_runs_with_writethrough_times() {
        let scenario = Scenario::new(platform().with_nfs(), small_app(), SimulatorKind::PageCache);
        let report = run_scenario(&scenario).unwrap();
        let tasks = &report.instance_reports[0].tasks;
        // Writes are writethrough on the server: roughly disk bandwidth, much
        // slower than the local writeback case.
        assert!(tasks[0].write_time > 1.5, "{}", tasks[0].write_time);
        // Re-reads still benefit from caches.
        assert!(tasks[1].read_time < tasks[0].write_time);
    }

    #[test]
    fn missing_initial_file_is_an_error() {
        let mut app = small_app();
        app.initial_files.clear(); // task 1 reads a file that now never exists
        let scenario = Scenario::new(platform(), app, SimulatorKind::PageCache);
        assert!(matches!(
            run_scenario(&scenario),
            Err(ScenarioError::Filesystem(simfs::FsError::FileNotFound(_)))
        ));
    }

    #[test]
    fn zero_instances_error_through_the_normal_path() {
        let err = Scenario::new(platform(), small_app(), SimulatorKind::PageCache)
            .with_instances(0)
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidScenario(_)));
        let mut scenario = Scenario::new(platform(), small_app(), SimulatorKind::PageCache);
        scenario.instances = 0;
        assert!(matches!(
            run_scenario(&scenario),
            Err(ScenarioError::InvalidScenario(_))
        ));
    }

    #[test]
    fn program_task_with_fsync_and_repeat_runs() {
        // A CAWL-style "database": repeatedly rewrite a record and fsync it.
        let app = ApplicationSpec::new("db").with_task(TaskSpec::program(
            "commit loop",
            vec![
                Op::repeat(
                    4,
                    vec![
                        Op::write_range("wal", 0.0, 64.0 * MB),
                        Op::fsync("wal"),
                        Op::compute(0.5),
                    ],
                ),
                Op::Sync,
            ],
        ));
        let report =
            run_scenario(&Scenario::new(platform(), app, SimulatorKind::PageCache)).unwrap();
        let task = &report.instance_reports[0].tasks[0];
        // Every one of the 4 iterations wrote 64 MB to the cache and fsync'd
        // it to disk.
        assert!((task.write_stats.bytes_to_cache - 256.0 * MB).abs() < MB);
        assert!(
            task.write_stats.bytes_to_disk >= 255.0 * MB,
            "fsync flushed {}",
            task.write_stats.bytes_to_disk
        );
        assert!((task.compute_time - 2.0).abs() < 1e-9);
        // fsync time is accounted to the write phase: 4 × 64 MB at 465 MB/s
        // plus the memory writes.
        assert!(task.write_time > 0.5, "{}", task.write_time);
        let wb = report.writeback.unwrap();
        assert!(wb.synchronous_flushed >= 255.0 * MB);
    }

    #[test]
    fn nan_program_operands_are_rejected_before_any_simulation() {
        // Without preflight validation a NaN write length would reach the
        // device models and trip their internal NaN asserts.
        let app = ApplicationSpec::new("bad")
            .with_task(TaskSpec::program("t", vec![Op::write("f", f64::NAN)]));
        let err =
            run_scenario(&Scenario::new(platform(), app, SimulatorKind::PageCache)).unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidScenario(_)), "{err:?}");
        assert!(err.to_string().contains("write length"), "{err}");
    }

    #[test]
    fn invalid_fault_plan_is_a_scenario_error() {
        use crate::faults::FaultPlan;
        let scenario = Scenario::new(platform(), small_app(), SimulatorKind::PageCache)
            .with_faults(FaultPlan::crash_at(-1.0));
        assert!(matches!(
            run_scenario(&scenario),
            Err(ScenarioError::InvalidScenario(_))
        ));
    }

    #[test]
    fn crash_interrupts_the_run_and_reports_durability() {
        use crate::faults::FaultPlan;
        let baseline = run_scenario(&Scenario::new(
            platform(),
            small_app(),
            SimulatorKind::PageCache,
        ))
        .unwrap();
        // Crash halfway through the fault-free makespan.
        let at = baseline.simulated_duration / 2.0;
        let report = run_scenario(
            &Scenario::new(platform(), small_app(), SimulatorKind::PageCache)
                .with_faults(FaultPlan::crash_at(at)),
        )
        .unwrap();
        let crash = report.crash.as_ref().expect("crash fired");
        assert!(!crash.files.is_empty());
        let tasks = &report.instance_reports[0].tasks;
        assert!(tasks.len() <= 3);
        assert_eq!(
            tasks.last().unwrap().status,
            crate::report::TaskStatus::Interrupted
        );
        assert!(report.simulated_duration < baseline.simulated_duration);
        let stats = report.run_stats();
        assert_eq!(stats.durable_bytes, crash.durable_bytes());
        assert_eq!(stats.lost_bytes, crash.lost_bytes());
        // Post-crash the cache is empty.
        let (cached, dirty) = {
            let trace = report.memory_trace.as_ref().unwrap();
            let last = trace.samples().last().unwrap();
            (last.cached, last.dirty)
        };
        assert!(cached < MB && dirty < MB, "cached {cached}, dirty {dirty}");
    }

    #[test]
    fn crash_after_completion_never_fires() {
        use crate::faults::FaultPlan;
        let report = run_scenario(
            &Scenario::new(platform(), small_app(), SimulatorKind::PageCache)
                .with_faults(FaultPlan::crash_at(1e6)),
        )
        .unwrap();
        assert!(report.crash.is_none());
        assert!(report.instance_reports[0]
            .tasks
            .iter()
            .all(|t| t.status.is_completed()));
        // The watchdog wakes at t = 1e6 even though the crash is skipped.
        assert!(report.simulated_duration >= 1e6);
    }

    #[test]
    fn transient_error_is_absorbed_by_retries() {
        use crate::faults::{ErrorMode, FaultEvent, FaultPlan, IoErrorSpec, OpClass, RetryPolicy};
        let app = |retry| {
            ApplicationSpec::new("retry").with_task(
                TaskSpec::program(
                    "writer",
                    vec![Op::write("out", 64.0 * MB), Op::fsync("out")],
                )
                .with_retry(retry),
            )
        };
        let plan = FaultPlan::none().with_event(FaultEvent::IoError(IoErrorSpec::nth(
            OpClass::Write,
            1,
            ErrorMode::Transient,
        )));
        // With retries the task completes; the backoff shows up as write time.
        let report = run_scenario(
            &Scenario::new(
                platform(),
                app(RetryPolicy::new(3, 0.5)),
                SimulatorKind::PageCache,
            )
            .with_faults(plan.clone()),
        )
        .unwrap();
        let task = &report.instance_reports[0].tasks[0];
        assert!(task.status.is_completed());
        assert_eq!(task.retries, 1);
        assert!((task.write_stats.bytes_to_cache - 64.0 * MB).abs() < MB);
        assert!(task.write_time >= 0.5, "{}", task.write_time);
        assert_eq!(report.total_retries(), 1);
        // Without retries the same fault kills the task.
        let report = run_scenario(
            &Scenario::new(
                platform(),
                app(RetryPolicy::none()),
                SimulatorKind::PageCache,
            )
            .with_faults(plan),
        )
        .unwrap();
        let task = &report.instance_reports[0].tasks[0];
        assert!(!task.status.is_completed());
        assert_eq!(report.failed_tasks(), vec!["writer"]);
    }

    #[test]
    fn persistent_error_degrades_but_later_tasks_still_run() {
        use crate::faults::{ErrorMode, FaultEvent, FaultPlan, IoErrorSpec, OpClass};
        // Writes to "a" fail persistently; the task writing "b" is unharmed.
        let app = ApplicationSpec::new("degraded")
            .with_task(TaskSpec::program(
                "doomed",
                vec![Op::write("a", 64.0 * MB), Op::fsync("a")],
            ))
            .with_task(TaskSpec::program(
                "survivor",
                vec![Op::write("b", 64.0 * MB), Op::fsync("b")],
            ));
        let plan = FaultPlan::none().with_event(FaultEvent::IoError(
            IoErrorSpec::at(OpClass::Write, 0.0, ErrorMode::Persistent).on_file("a"),
        ));
        let report = run_scenario(
            &Scenario::new(platform(), app, SimulatorKind::PageCache).with_faults(plan),
        )
        .unwrap();
        let tasks = &report.instance_reports[0].tasks;
        assert_eq!(tasks.len(), 2);
        assert!(!tasks[0].status.is_completed());
        // The doomed task stopped at its first op: nothing was written.
        assert_eq!(tasks[0].write_stats.bytes_to_cache, 0.0);
        assert!(tasks[1].status.is_completed());
        assert!(tasks[1].write_stats.bytes_to_disk > 63.0 * MB);
        assert_eq!(report.failed_tasks(), vec!["doomed"]);
        assert!(report.crash.is_none());
    }

    #[test]
    fn restart_after_crash_reruns_the_application() {
        use crate::faults::FaultPlan;
        let baseline = run_scenario(&Scenario::new(
            platform(),
            small_app(),
            SimulatorKind::PageCache,
        ))
        .unwrap();
        let at = baseline.simulated_duration / 2.0;
        let report = run_scenario(
            &Scenario::new(platform(), small_app(), SimulatorKind::PageCache)
                .with_faults(FaultPlan::crash_at(at))
                .with_restart_after_crash(),
        )
        .unwrap();
        assert!(report.crash.is_some());
        assert_eq!(report.restart_reports.len(), 1);
        let restart = &report.restart_reports[0];
        assert_eq!(restart.tasks.len(), 3);
        assert!(restart.tasks.iter().all(|t| t.status.is_completed()));
        // The combined run takes longer than a clean one: the crash threw
        // away warm cache state and half the work.
        assert!(report.simulated_duration > baseline.simulated_duration);
    }

    #[test]
    fn program_task_partial_reread_is_cheaper_than_cold_read() {
        let app = ApplicationSpec::new("reread")
            .with_initial_file(crate::FileSpec::new("data", 1.0 * GB))
            .with_task(TaskSpec::program(
                "scan",
                vec![Op::read("data"), Op::ReleaseMemory(1.0 * GB)],
            ))
            .with_task(TaskSpec::program(
                "hot set",
                vec![
                    Op::read_range("data", 0.0, 200.0 * MB),
                    Op::ReleaseMemory(200.0 * MB),
                ],
            ));
        let report =
            run_scenario(&Scenario::new(platform(), app, SimulatorKind::PageCache)).unwrap();
        let tasks = &report.instance_reports[0].tasks;
        assert!(tasks[0].read_stats.bytes_from_disk > 0.9 * GB);
        assert!((tasks[1].read_stats.bytes_from_cache - 200.0 * MB).abs() < MB);
        assert!(tasks[1].read_time < 0.1 * tasks[0].read_time);
    }

    // --- Traffic tier ---

    use crate::traffic::{TenantSpec, TrafficSpec};

    /// An application with no tasks: the scenario is pure traffic.
    fn no_app() -> ApplicationSpec {
        ApplicationSpec::new("traffic only")
    }

    #[test]
    fn traffic_only_scenario_serves_all_requests() {
        let spec = TrafficSpec::open("serve", 200.0, 400)
            .with_catalog(20, 4.0 * MB)
            .with_request_bytes(2.0 * MB)
            .with_seed(3);
        let scenario =
            Scenario::new(platform(), no_app(), SimulatorKind::PageCache).with_traffic(vec![spec]);
        let report = run_scenario(&scenario).unwrap();
        let traffic = report.traffic.expect("traffic report present");
        let gen = traffic.generator("serve").unwrap();
        assert_eq!(gen.issued, 400);
        assert_eq!(gen.completed, 400);
        assert_eq!(gen.failed, 0);
        assert_eq!(gen.read_latency.count + gen.write_latency.count, 400);
        assert!(gen.read_latency.p50 > 0.0);
        assert!(gen.read_latency.p99 >= gen.read_latency.p50);
        assert!(gen.read_latency.max >= gen.read_latency.p999);
        assert!(gen.throughput_rps > 0.0);
        assert!(gen.peak_in_flight >= 1);
        assert!(gen.mean_in_flight > 0.0);
        assert!(gen.bytes_read > 0.0 && gen.bytes_written > 0.0);
        // The Zipf(1) hot set of a 50-file catalog fits an 8 GB cache: most
        // read bytes come from memory.
        assert!(gen.cache_hit_ratio > 0.5, "{}", gen.cache_hit_ratio);
        assert_eq!(gen.limit_evicted, 0.0);
        assert!(report.simulated_duration > 0.0);
    }

    #[test]
    fn traffic_reports_are_bit_reproducible() {
        let scenario = || {
            Scenario::new(platform(), no_app(), SimulatorKind::KernelEmu).with_traffic(vec![
                TrafficSpec::open("a", 150.0, 200).with_seed(11),
                TrafficSpec::closed("b", 8, 0.002, 200).with_seed(12),
            ])
        };
        let r1 = run_scenario(&scenario()).unwrap().traffic.unwrap();
        let r2 = run_scenario(&scenario()).unwrap().traffic.unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn closed_loop_concurrency_is_bounded_by_clients() {
        let clients = 4;
        let spec = TrafficSpec::closed("closed", clients, 0.001, 300).with_seed(5);
        let scenario =
            Scenario::new(platform(), no_app(), SimulatorKind::PageCache).with_traffic(vec![spec]);
        let gen_report = run_scenario(&scenario).unwrap().traffic.unwrap();
        let gen = gen_report.generator("closed").unwrap();
        assert_eq!(gen.completed, 300);
        assert!(gen.peak_in_flight <= clients as u64);
        assert!(gen.mean_in_flight <= clients as f64 + 1e-9);
    }

    #[test]
    fn open_loop_outruns_closed_loop_under_saturation() {
        // An open loop keeps issuing at its target rate even when the system
        // falls behind, so queueing piles into its latency tail; a closed
        // loop with one client can never have more than one request in
        // flight.
        let open = TrafficSpec::open("open", 2000.0, 300).with_seed(7);
        let closed = TrafficSpec::closed("closed", 1, 0.0, 300).with_seed(7);
        let scenario = Scenario::new(platform(), no_app(), SimulatorKind::PageCache)
            .with_traffic(vec![open, closed]);
        let traffic = run_scenario(&scenario).unwrap().traffic.unwrap();
        let open = traffic.generator("open").unwrap();
        let closed = traffic.generator("closed").unwrap();
        assert!(open.peak_in_flight > 1);
        assert_eq!(closed.peak_in_flight, 1);
        // Queueing delay shows up only in the open loop's percentiles.
        assert!(open.read_latency.p99 > closed.read_latency.p99);
    }

    #[test]
    fn tenant_limits_cap_the_generators_cache_footprint() {
        let run = |tenant: Option<TenantSpec>| {
            let mut spec = TrafficSpec::open("tenant", 300.0, 400)
                .with_catalog(64, 32.0 * MB)
                .with_request_bytes(4.0 * MB)
                .with_read_fraction(0.5)
                .with_seed(21);
            if let Some(t) = tenant {
                spec = spec.with_tenant(t);
            }
            let scenario = Scenario::new(platform(), no_app(), SimulatorKind::PageCache)
                .with_traffic(vec![spec]);
            run_scenario(&scenario).unwrap().traffic.unwrap()
        };
        let unlimited = run(None);
        let limited = run(Some(TenantSpec::capped(64.0 * MB)));
        let u = unlimited.generator("tenant").unwrap();
        let l = limited.generator("tenant").unwrap();
        assert_eq!(u.limit_evicted + u.limit_flushed, 0.0);
        // The limit forced evictions/flushes and cost cache hits.
        assert!(l.limit_evicted > 0.0);
        assert!(l.cache_hit_ratio < u.cache_hit_ratio);
    }

    #[test]
    fn tenant_limits_work_on_the_kernel_emu_backend_too() {
        let spec = TrafficSpec::open("kt", 300.0, 300)
            .with_catalog(64, 32.0 * MB)
            .with_request_bytes(4.0 * MB)
            .with_read_fraction(0.5)
            .with_seed(22)
            .with_tenant(TenantSpec::capped(64.0 * MB));
        let scenario =
            Scenario::new(platform(), no_app(), SimulatorKind::KernelEmu).with_traffic(vec![spec]);
        let traffic = run_scenario(&scenario).unwrap().traffic.unwrap();
        let gen = traffic.generator("kt").unwrap();
        assert_eq!(gen.completed, 300);
        assert!(gen.limit_evicted > 0.0 || gen.limit_flushed > 0.0);
    }

    #[test]
    fn traffic_failures_are_counted_not_fatal() {
        use crate::faults::{ErrorMode, FaultEvent, FaultPlan, IoErrorSpec, OpClass};
        let spec = TrafficSpec::open("faulty", 200.0, 200)
            .with_read_fraction(0.5)
            .with_seed(9);
        let plan = FaultPlan::none().with_event(FaultEvent::IoError(IoErrorSpec::at(
            OpClass::Write,
            0.0,
            ErrorMode::Persistent,
        )));
        let scenario = Scenario::new(platform(), no_app(), SimulatorKind::PageCache)
            .with_traffic(vec![spec])
            .with_faults(plan);
        let traffic = run_scenario(&scenario).unwrap().traffic.unwrap();
        let gen = traffic.generator("faulty").unwrap();
        assert_eq!(gen.issued, 200);
        assert!(gen.failed > 0, "writes should be killed by the fault gate");
        assert!(gen.completed > 0, "reads are unaffected");
        assert_eq!(gen.completed + gen.failed, 200);
        assert_eq!(gen.write_latency.count, 0);
    }

    #[test]
    fn traffic_runs_alongside_application_tasks() {
        let spec = TrafficSpec::open("bg", 50.0, 100).with_seed(4);
        let scenario = Scenario::new(platform(), small_app(), SimulatorKind::PageCache)
            .with_traffic(vec![spec]);
        let report = run_scenario(&scenario).unwrap();
        assert!(report.instance_reports[0]
            .tasks
            .iter()
            .all(|t| t.status.is_completed()));
        let gen_report = report.traffic.unwrap();
        assert_eq!(gen_report.generator("bg").unwrap().completed, 100);
    }

    #[test]
    fn duplicate_traffic_names_are_rejected() {
        let scenario =
            Scenario::new(platform(), no_app(), SimulatorKind::PageCache).with_traffic(vec![
                TrafficSpec::open("dup", 10.0, 10),
                TrafficSpec::open("dup", 20.0, 10),
            ]);
        assert!(matches!(
            run_scenario(&scenario),
            Err(ScenarioError::InvalidScenario(_))
        ));
    }
}
