//! Scenario runner: builds a back-end, spawns the application instances as
//! simulated processes, and collects the report.
//!
//! This is the equivalent of a WRENCH "simulator" program: the experiments of
//! the paper are all expressed as [`Scenario`]s and executed by
//! [`run_scenario`]. Each task's workload program (see [`crate::Op`]) is
//! executed op by op; op timings and statistics are attributed to the
//! classic read/compute/write phases of the [`TaskReport`] by op category
//! (reads → read phase, writes/fsync/sync → write phase), so legacy
//! three-phase tasks report exactly what they always did and custom programs
//! reuse the same reporting shape.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use des::Simulation;
use pagecache::FileId;

use crate::backend::{Backend, IoBackend, ScenarioError, SimulatorKind};
use crate::platform::PlatformSpec;
use crate::report::{InstanceReport, ScenarioReport, TaskReport};
use crate::spec::{flatten_program, ApplicationSpec, Op};

/// A complete experiment configuration: platform + application + back-end.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The platform to simulate.
    pub platform: PlatformSpec,
    /// The application every instance runs.
    pub application: ApplicationSpec,
    /// Number of concurrent application instances (each operating on its own
    /// files, as in Exp 2 and 3).
    pub instances: usize,
    /// The simulator back-end.
    pub kind: SimulatorKind,
    /// Period of the background memory sampler, seconds (`None` disables it;
    /// samples are always taken at phase boundaries).
    pub sample_interval: Option<f64>,
}

impl Scenario {
    /// Creates a single-instance scenario.
    pub fn new(platform: PlatformSpec, application: ApplicationSpec, kind: SimulatorKind) -> Self {
        Scenario {
            platform,
            application,
            instances: 1,
            kind,
            sample_interval: Some(2.0),
        }
    }

    /// Sets the number of concurrent instances. At least one instance is
    /// required; zero is reported as [`ScenarioError::InvalidScenario`]
    /// through the normal error path.
    pub fn with_instances(mut self, instances: usize) -> Result<Self, ScenarioError> {
        if instances == 0 {
            return Err(ScenarioError::InvalidScenario(
                "at least one instance is required".to_string(),
            ));
        }
        self.instances = instances;
        Ok(self)
    }

    /// Sets (or disables) the background memory sampling interval.
    pub fn with_sample_interval(mut self, interval: Option<f64>) -> Self {
        self.sample_interval = interval;
        self
    }
}

/// Scopes a file name to an instance so concurrent instances operate on
/// different files (paper Exp 2: "all application instances operating on
/// different files").
pub fn scoped_file(name: &str, instance: usize, instances: usize) -> FileId {
    if instances <= 1 {
        FileId::new(name)
    } else {
        FileId::new(format!("i{instance:02}_{name}"))
    }
}

/// Runs a scenario to completion and returns its report.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
    if scenario.instances == 0 {
        return Err(ScenarioError::InvalidScenario(
            "at least one instance is required".to_string(),
        ));
    }
    let wall_start = Instant::now();
    let sim = Simulation::new();
    let ctx = sim.context();
    let backend = Backend::build(&ctx, &scenario.platform, scenario.kind)?;

    // Initial files of every instance exist before the applications start.
    for instance in 0..scenario.instances {
        for file in &scenario.application.initial_files {
            backend.create_file(
                &scoped_file(&file.name, instance, scenario.instances),
                file.size,
            )?;
        }
    }

    backend.start_background();
    let done = Rc::new(Cell::new(false));

    // Optional periodic memory sampler (for the Fig. 4b profiles).
    if let Some(interval) = scenario.sample_interval {
        let backend = backend.clone();
        let done = Rc::clone(&done);
        let ctx2 = ctx.clone();
        ctx.spawn(async move {
            while !done.get() {
                backend.sample_memory();
                ctx2.sleep(interval).await;
            }
        });
    }

    // Coordinator: spawns one process per instance, awaits them all, then
    // stops the background threads so the simulation can terminate.
    let coordinator = {
        let backend = backend.clone();
        let ctx = ctx.clone();
        let app = scenario.application.clone();
        let instances = scenario.instances;
        let done = Rc::clone(&done);
        sim.spawn(async move {
            let mut handles = Vec::new();
            for instance in 0..instances {
                let backend = backend.clone();
                let ctx = ctx.clone();
                let app = app.clone();
                handles.push(ctx.clone().spawn(async move {
                    run_instance(&ctx, &backend, &app, instance, instances).await
                }));
            }
            let mut reports = Vec::new();
            for handle in handles {
                reports.push(handle.await);
            }
            done.set(true);
            backend.stop_background();
            reports
        })
    };

    sim.run();
    let instance_results = coordinator
        .try_take_result()
        .expect("coordinator did not finish: simulation deadlocked");
    let mut instance_reports = Vec::new();
    let mut cache_snapshots = Vec::new();
    for result in instance_results {
        let (report, snapshots) = result?;
        if report.instance == 0 {
            cache_snapshots = snapshots;
        }
        instance_reports.push(report);
    }
    instance_reports.sort_by_key(|r| r.instance);

    Ok(ScenarioReport {
        kind: scenario.kind,
        instances: scenario.instances,
        instance_reports,
        memory_trace: backend.memory_trace(),
        cache_snapshots,
        simulated_duration: sim.now().as_secs(),
        wall_clock_seconds: wall_start.elapsed().as_secs_f64(),
        writeback: backend.writeback_counters(),
    })
}

/// Runs every task of one application instance — each task's workload
/// program, op by op — and reports its timings.
async fn run_instance(
    ctx: &des::SimContext,
    backend: &Backend,
    app: &ApplicationSpec,
    instance: usize,
    instances: usize,
) -> Result<(InstanceReport, Vec<pagecache::CacheContentSnapshot>), ScenarioError> {
    let mut tasks = Vec::new();
    let mut snapshots = Vec::new();
    let take_snapshots = instance == 0;
    let scoped = |name: &str| scoped_file(name, instance, instances);
    for (task_idx, task) in app.tasks.iter().enumerate() {
        let program = flatten_program(&task.lower(task_idx))
            .map_err(|e| ScenarioError::InvalidScenario(format!("task '{}': {e}", task.name)))?;
        let mut report = TaskReport {
            task_name: task.name.clone(),
            read_time: 0.0,
            compute_time: 0.0,
            write_time: 0.0,
            read_stats: pagecache::IoOpStats::default(),
            write_stats: pagecache::IoOpStats::default(),
        };
        for op in &program {
            let start = ctx.now();
            match op {
                Op::Read { file, offset, len } => {
                    let stats = backend.read_range(&scoped(file), *offset, *len).await?;
                    report.read_stats.merge(&stats);
                    report.read_time += ctx.now().duration_since(start);
                }
                Op::Write { file, offset, len } => {
                    let stats = backend.write_range(&scoped(file), *offset, *len).await?;
                    report.write_stats.merge(&stats);
                    report.write_time += ctx.now().duration_since(start);
                }
                Op::Fsync(file) => {
                    let stats = backend.fsync(&scoped(file)).await?;
                    report.write_stats.merge(&stats);
                    report.write_time += ctx.now().duration_since(start);
                }
                Op::Sync => {
                    let stats = backend.sync().await?;
                    report.write_stats.merge(&stats);
                    report.write_time += ctx.now().duration_since(start);
                }
                Op::Compute(secs) => {
                    if *secs > 0.0 {
                        ctx.sleep(*secs).await;
                    }
                    report.compute_time += ctx.now().duration_since(start);
                }
                Op::ReleaseMemory(bytes) => {
                    backend.release_anonymous_memory(*bytes);
                }
                Op::Sample => {
                    backend.sample_memory();
                }
                Op::Snapshot(label) => {
                    if take_snapshots {
                        if let Some(snap) = backend.cache_snapshot(label) {
                            snapshots.push(snap);
                        }
                    }
                }
                Op::Repeat { .. } => unreachable!("flatten_program unrolls Repeat"),
            }
        }
        tasks.push(report);
    }
    Ok((InstanceReport { instance, tasks }, snapshots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;
    use crate::spec::TaskSpec;
    use storage_model::units::{GB, MB};
    use storage_model::DeviceSpec;

    fn platform() -> PlatformSpec {
        PlatformSpec::uniform(
            8.0 * GB,
            DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
        )
    }

    fn small_app() -> ApplicationSpec {
        ApplicationSpec::synthetic_pipeline(1.0 * GB)
    }

    #[test]
    fn scoped_file_names() {
        assert_eq!(scoped_file("f", 0, 1).name(), "f");
        assert_eq!(scoped_file("f", 3, 8).name(), "i03_f");
        assert_ne!(scoped_file("f", 1, 8), scoped_file("f", 2, 8));
    }

    #[test]
    fn cacheless_run_reports_disk_speed_io() {
        let scenario = Scenario::new(platform(), small_app(), SimulatorKind::Cacheless);
        let report = run_scenario(&scenario).unwrap();
        assert_eq!(report.instance_reports.len(), 1);
        let tasks = &report.instance_reports[0].tasks;
        assert_eq!(tasks.len(), 3);
        // Every read and write is ~1 GB at 465 MB/s ≈ 2.15 s.
        for t in tasks {
            assert!(
                (t.read_time - 1.0 * GB / (465.0 * MB)).abs() < 0.01,
                "{}",
                t.read_time
            );
            assert!(
                (t.write_time - 1.0 * GB / (465.0 * MB)).abs() < 0.01,
                "{}",
                t.write_time
            );
        }
        assert!(report.memory_trace.is_none());
        assert!(report.simulated_duration > 0.0);
    }

    #[test]
    fn pagecache_run_shows_cache_hits_on_rereads() {
        let scenario = Scenario::new(platform(), small_app(), SimulatorKind::PageCache);
        let report = run_scenario(&scenario).unwrap();
        let tasks = &report.instance_reports[0].tasks;
        // Task 1 reads a cold file from disk; tasks 2 and 3 re-read the file
        // written by the previous task, which is still in the cache.
        assert!(tasks[0].read_stats.bytes_from_disk > 0.9 * GB);
        assert!(tasks[1].read_stats.bytes_from_cache > 0.9 * GB);
        assert!(tasks[2].read_stats.bytes_from_cache > 0.9 * GB);
        assert!(tasks[1].read_time < tasks[0].read_time);
        // Writes fit in the dirty headroom of an 8 GB host: memory speed.
        assert!(tasks[0].write_time < 0.5);
        // Memory profile and cache snapshots were collected.
        assert!(report.memory_trace.is_some());
        assert_eq!(report.cache_snapshots.len(), 6);
        assert!(report.memory_trace.unwrap().max_dirty() <= 0.2 * 8.0 * GB + 1.0);
    }

    #[test]
    fn kernel_emu_run_completes_and_traces_memory() {
        let scenario = Scenario::new(platform(), small_app(), SimulatorKind::KernelEmu);
        let report = run_scenario(&scenario).unwrap();
        assert_eq!(report.instance_reports[0].tasks.len(), 3);
        assert!(report.memory_trace.is_some());
        assert!(report.cache_snapshots.len() == 6);
    }

    #[test]
    fn concurrent_instances_contend_for_the_disk() {
        let app = small_app();
        let one = run_scenario(&Scenario::new(
            platform(),
            app.clone(),
            SimulatorKind::Cacheless,
        ))
        .unwrap();
        let four = run_scenario(
            &Scenario::new(platform(), app, SimulatorKind::Cacheless)
                .with_instances(4)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(four.instance_reports.len(), 4);
        // With 4 instances sharing the disk, reads take roughly 4x longer.
        let ratio = four.mean_total_read_time() / one.mean_total_read_time();
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn prototype_matches_pagecache_for_single_instance() {
        let app = small_app();
        let proto = run_scenario(&Scenario::new(
            platform(),
            app.clone(),
            SimulatorKind::Prototype,
        ))
        .unwrap();
        let cache =
            run_scenario(&Scenario::new(platform(), app, SimulatorKind::PageCache)).unwrap();
        // Without concurrency the two models should be very close.
        let a = proto.instance_reports[0].makespan();
        let b = cache.instance_reports[0].makespan();
        assert!((a - b).abs() / b < 0.05, "prototype {a} vs pagecache {b}");
    }

    #[test]
    fn nfs_scenario_runs_with_writethrough_times() {
        let scenario = Scenario::new(platform().with_nfs(), small_app(), SimulatorKind::PageCache);
        let report = run_scenario(&scenario).unwrap();
        let tasks = &report.instance_reports[0].tasks;
        // Writes are writethrough on the server: roughly disk bandwidth, much
        // slower than the local writeback case.
        assert!(tasks[0].write_time > 1.5, "{}", tasks[0].write_time);
        // Re-reads still benefit from caches.
        assert!(tasks[1].read_time < tasks[0].write_time);
    }

    #[test]
    fn missing_initial_file_is_an_error() {
        let mut app = small_app();
        app.initial_files.clear(); // task 1 reads a file that now never exists
        let scenario = Scenario::new(platform(), app, SimulatorKind::PageCache);
        assert!(matches!(
            run_scenario(&scenario),
            Err(ScenarioError::Filesystem(simfs::FsError::FileNotFound(_)))
        ));
    }

    #[test]
    fn zero_instances_error_through_the_normal_path() {
        let err = Scenario::new(platform(), small_app(), SimulatorKind::PageCache)
            .with_instances(0)
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidScenario(_)));
        let mut scenario = Scenario::new(platform(), small_app(), SimulatorKind::PageCache);
        scenario.instances = 0;
        assert!(matches!(
            run_scenario(&scenario),
            Err(ScenarioError::InvalidScenario(_))
        ));
    }

    #[test]
    fn program_task_with_fsync_and_repeat_runs() {
        // A CAWL-style "database": repeatedly rewrite a record and fsync it.
        let app = ApplicationSpec::new("db").with_task(TaskSpec::program(
            "commit loop",
            vec![
                Op::repeat(
                    4,
                    vec![
                        Op::write_range("wal", 0.0, 64.0 * MB),
                        Op::fsync("wal"),
                        Op::compute(0.5),
                    ],
                ),
                Op::Sync,
            ],
        ));
        let report =
            run_scenario(&Scenario::new(platform(), app, SimulatorKind::PageCache)).unwrap();
        let task = &report.instance_reports[0].tasks[0];
        // Every one of the 4 iterations wrote 64 MB to the cache and fsync'd
        // it to disk.
        assert!((task.write_stats.bytes_to_cache - 256.0 * MB).abs() < MB);
        assert!(
            task.write_stats.bytes_to_disk >= 255.0 * MB,
            "fsync flushed {}",
            task.write_stats.bytes_to_disk
        );
        assert!((task.compute_time - 2.0).abs() < 1e-9);
        // fsync time is accounted to the write phase: 4 × 64 MB at 465 MB/s
        // plus the memory writes.
        assert!(task.write_time > 0.5, "{}", task.write_time);
        let wb = report.writeback.unwrap();
        assert!(wb.synchronous_flushed >= 255.0 * MB);
    }

    #[test]
    fn program_task_partial_reread_is_cheaper_than_cold_read() {
        let app = ApplicationSpec::new("reread")
            .with_initial_file(crate::FileSpec::new("data", 1.0 * GB))
            .with_task(TaskSpec::program(
                "scan",
                vec![Op::read("data"), Op::ReleaseMemory(1.0 * GB)],
            ))
            .with_task(TaskSpec::program(
                "hot set",
                vec![
                    Op::read_range("data", 0.0, 200.0 * MB),
                    Op::ReleaseMemory(200.0 * MB),
                ],
            ));
        let report =
            run_scenario(&Scenario::new(platform(), app, SimulatorKind::PageCache)).unwrap();
        let tasks = &report.instance_reports[0].tasks;
        assert!(tasks[0].read_stats.bytes_from_disk > 0.9 * GB);
        assert!((tasks[1].read_stats.bytes_from_cache - 200.0 * MB).abs() < MB);
        assert!(tasks[1].read_time < 0.1 * tasks[0].read_time);
    }
}
