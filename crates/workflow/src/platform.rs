//! Platform descriptions: host memory, devices, and the NFS configuration.
//!
//! A [`PlatformSpec`] carries **two** device parameterisations:
//!
//! * `simulated` — the bandwidths fed to the simulators (the symmetric
//!   averages of Table III, because SimGrid 3.25 only supported symmetric
//!   bandwidths);
//! * `real` — the measured, asymmetric bandwidths of the cluster, used by the
//!   kernel-emulator ground truth.

use storage_model::DeviceSpec;

/// Devices of one host (plus the optional NFS server side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSet {
    /// Memory bus of the host.
    pub memory: DeviceSpec,
    /// Local disk of the host (or the client-side disk in NFS scenarios).
    pub disk: DeviceSpec,
    /// Disk of the NFS server (used only in NFS scenarios).
    pub remote_disk: DeviceSpec,
    /// Network bandwidth between client and server, bytes/s.
    pub network_bandwidth: f64,
    /// Network latency, seconds.
    pub network_latency: f64,
}

/// Where the application's files live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// All I/O goes to the local disk (Exp 1, 2, 4).
    #[default]
    Local,
    /// All I/O goes to an NFS mount backed by a remote disk (Exp 3).
    Nfs,
    /// All I/O goes to a replicated storage fleet over a simulated network
    /// fabric (see [`crate::net`]). Requires [`PlatformSpec::fleet`].
    Fleet,
}

/// A complete platform description.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// RAM of the host running the applications, bytes.
    pub host_memory: f64,
    /// RAM of the NFS server, bytes (ignored for local storage).
    pub server_memory: f64,
    /// Device parameters used by the simulators.
    pub simulated: DeviceSet,
    /// Device parameters used by the ground-truth emulator.
    pub real: DeviceSet,
    /// Where application files live.
    pub storage: StorageKind,
    /// Chunk size used by the I/O controller, bytes.
    pub chunk_size: f64,
    /// `vm.dirty_ratio` of the host.
    pub dirty_ratio: f64,
    /// `vm.dirty_background_ratio` of the host. Only the kernel emulator
    /// models background writeback thresholds; the macroscopic simulators
    /// ignore this knob (the paper calls out exactly this omission).
    pub dirty_background_ratio: f64,
    /// Dirty expiration age, seconds.
    pub dirty_expire: f64,
    /// Periodical flusher interval, seconds.
    pub flush_interval: f64,
    /// Initial readahead window of the kernel emulator, bytes (Linux
    /// `get_init_ra_size`). Meaningful only when `readahead_max > 0`; the
    /// macroscopic simulators are amount-based and have no notion of
    /// readahead.
    pub readahead_min: f64,
    /// Maximum readahead window of the kernel emulator, bytes (Linux
    /// `read_ahead_kb`). **Zero — the default — disables readahead**, so
    /// predictions are unchanged unless a platform opts in.
    pub readahead_max: f64,
    /// `balance_dirty_pages` pacing strength of the kernel emulator
    /// (see [`kernel_emu::KernelTuning`]). **Zero — the default — disables
    /// pacing**; the hard throttle at the dirty ratio applies regardless.
    pub throttle_pacing: f64,
    /// Replacement policy of the page cache, applied to both the simulators
    /// and the kernel emulator. The default
    /// [`TwoList`](pagecache::EvictionPolicy::TwoList) reproduces the
    /// classic active/inactive behaviour (and the historical predictions)
    /// exactly.
    pub eviction_policy: pagecache::EvictionPolicy,
    /// Shape and client policy of the replicated storage fleet. `None` —
    /// the default — means no fleet; required (and only used) when
    /// `storage` is [`StorageKind::Fleet`].
    pub fleet: Option<crate::net::FleetSpec>,
}

impl PlatformSpec {
    /// A platform where the simulated and real device sets are identical
    /// (useful for tests and for users who only care about the simulator).
    pub fn uniform(host_memory: f64, memory: DeviceSpec, disk: DeviceSpec) -> Self {
        let set = DeviceSet {
            memory,
            disk,
            remote_disk: disk,
            network_bandwidth: 3000.0 * 1e6,
            network_latency: 0.0,
        };
        PlatformSpec {
            host_memory,
            server_memory: host_memory,
            simulated: set,
            real: set,
            storage: StorageKind::Local,
            chunk_size: 100.0 * 1e6,
            dirty_ratio: 0.2,
            dirty_background_ratio: 0.1,
            dirty_expire: 30.0,
            flush_interval: 5.0,
            readahead_min: 0.0,
            readahead_max: 0.0,
            throttle_pacing: 0.0,
            eviction_policy: pagecache::EvictionPolicy::TwoList,
            fleet: None,
        }
    }

    /// Overrides the eviction policy of every cache in the platform.
    pub fn with_eviction_policy(mut self, policy: pagecache::EvictionPolicy) -> Self {
        self.eviction_policy = policy;
        self
    }

    /// Enables the kernel emulator's readahead model with the given initial
    /// and maximum window sizes (bytes). Use windows proportional to the
    /// platform's chunk size the way Linux sizes its windows relative to
    /// request sizes.
    pub fn with_readahead(mut self, min: f64, max: f64) -> Self {
        self.readahead_min = min;
        self.readahead_max = max;
        self
    }

    /// Enables the kernel emulator's `balance_dirty_pages` writer pacing
    /// (`1.0` mirrors the kernel: writers at the dirty threshold are paced
    /// down to disk write bandwidth).
    pub fn with_throttle_pacing(mut self, pacing: f64) -> Self {
        self.throttle_pacing = pacing;
        self
    }

    /// Switches the platform to NFS storage.
    pub fn with_nfs(mut self) -> Self {
        self.storage = StorageKind::Nfs;
        self
    }

    /// Switches the platform to a replicated storage fleet with the given
    /// shape and client policy (see [`crate::net`]).
    pub fn with_fleet(mut self, fleet: crate::net::FleetSpec) -> Self {
        self.storage = StorageKind::Fleet;
        self.fleet = Some(fleet);
        self
    }

    /// Overrides the chunk size.
    pub fn with_chunk_size(mut self, chunk_size: f64) -> Self {
        assert!(chunk_size > 0.0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// Overrides the dirty ratio. The background dirty ratio is clamped so
    /// the kernel invariant `dirty_background_ratio <= dirty_ratio` holds.
    pub fn with_dirty_ratio(mut self, ratio: f64) -> Self {
        self.dirty_ratio = ratio;
        self.dirty_background_ratio = self.dirty_background_ratio.min(ratio);
        self
    }

    /// Overrides the background dirty ratio (kernel-emulator back-end only).
    pub fn with_dirty_background_ratio(mut self, ratio: f64) -> Self {
        self.dirty_background_ratio = ratio;
        self
    }

    /// Validates the platform description.
    pub fn validate(&self) -> Result<(), String> {
        if self.host_memory <= 0.0 {
            return Err("host memory must be positive".to_string());
        }
        if self.chunk_size <= 0.0 {
            return Err("chunk size must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.dirty_ratio) {
            return Err("dirty ratio must be in [0, 1]".to_string());
        }
        if !(0.0..=1.0).contains(&self.dirty_background_ratio) {
            return Err("background dirty ratio must be in [0, 1]".to_string());
        }
        if self.dirty_background_ratio > self.dirty_ratio {
            return Err("background dirty ratio must not exceed the dirty ratio".to_string());
        }
        if !(self.readahead_min >= 0.0
            && self.readahead_max >= 0.0
            && self.readahead_min.is_finite()
            && self.readahead_max.is_finite())
        {
            return Err("readahead windows must be finite and non-negative".to_string());
        }
        if self.readahead_max > 0.0 && self.readahead_min <= 0.0 {
            return Err("readahead_min must be positive when readahead is enabled".to_string());
        }
        if self.readahead_min > self.readahead_max {
            return Err("readahead_min must not exceed readahead_max".to_string());
        }
        if !(self.throttle_pacing >= 0.0 && self.throttle_pacing.is_finite()) {
            return Err("throttle pacing must be finite and non-negative".to_string());
        }
        match (&self.storage, &self.fleet) {
            (StorageKind::Fleet, None) => {
                return Err("fleet storage requires a fleet spec (see with_fleet)".to_string());
            }
            (StorageKind::Fleet, Some(fleet)) => fleet.validate()?,
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_model::units::{GB, MB};

    #[test]
    fn uniform_platform_builds_and_validates() {
        let p = PlatformSpec::uniform(
            16.0 * GB,
            DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
        );
        assert!(p.validate().is_ok());
        assert_eq!(p.storage, StorageKind::Local);
        assert_eq!(p.simulated, p.real);
        let nfs = p
            .clone()
            .with_nfs()
            .with_chunk_size(50.0 * MB)
            .with_dirty_ratio(0.4);
        assert_eq!(nfs.storage, StorageKind::Nfs);
        assert_eq!(nfs.chunk_size, 50.0 * MB);
        assert_eq!(nfs.dirty_ratio, 0.4);
    }

    #[test]
    fn background_dirty_ratio_is_validated_and_clamped() {
        let p = PlatformSpec::uniform(
            16.0 * GB,
            DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
        );
        assert_eq!(p.dirty_background_ratio, 0.1);
        // Lowering the dirty ratio clamps the background ratio along with it.
        let low = p.clone().with_dirty_ratio(0.05);
        assert_eq!(low.dirty_background_ratio, 0.05);
        assert!(low.validate().is_ok());
        // An explicit background ratio above the dirty ratio is invalid.
        let bad = p.with_dirty_background_ratio(0.5);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn readahead_and_pacing_knobs_validate() {
        let p = PlatformSpec::uniform(
            16.0 * GB,
            DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY),
        );
        // Off by default; the classic 2-list policy is the default too.
        assert_eq!(p.readahead_max, 0.0);
        assert_eq!(p.throttle_pacing, 0.0);
        assert_eq!(p.eviction_policy, pagecache::EvictionPolicy::TwoList);
        assert_eq!(
            p.clone()
                .with_eviction_policy(pagecache::EvictionPolicy::MglruGen)
                .eviction_policy,
            pagecache::EvictionPolicy::MglruGen
        );
        assert!(p.validate().is_ok());
        let on = p
            .clone()
            .with_readahead(16.0 * MB, 256.0 * MB)
            .with_throttle_pacing(1.0);
        assert!(on.validate().is_ok());
        assert_eq!(on.readahead_min, 16.0 * MB);
        assert!(p
            .clone()
            .with_readahead(256.0 * MB, 16.0 * MB)
            .validate()
            .is_err());
        assert!(p.clone().with_readahead(0.0, 16.0 * MB).validate().is_err());
        assert!(p.clone().with_throttle_pacing(-1.0).validate().is_err());
    }

    #[test]
    fn validation_catches_errors() {
        let mut p = PlatformSpec::uniform(
            16.0 * GB,
            DeviceSpec::symmetric(MB, 0.0, f64::INFINITY),
            DeviceSpec::symmetric(MB, 0.0, f64::INFINITY),
        );
        p.host_memory = 0.0;
        assert!(p.validate().is_err());
        p.host_memory = GB;
        p.dirty_ratio = 2.0;
        assert!(p.validate().is_err());
        p.dirty_ratio = 0.2;
        p.chunk_size = -1.0;
        assert!(p.validate().is_err());
    }
}
