//! A dependency-free, drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the real criterion crate cannot be used. This shim implements
//! the small API surface our benches rely on — benchmark groups, per-input
//! benchmarks, `Bencher::iter` — with a simple median-of-samples timing loop.
//!
//! Differences from real criterion:
//!
//! * No statistical analysis beyond the median of `sample_size` samples.
//! * Results are printed as `group/bench: <ns> ns/iter` lines.
//! * If the `BENCH_JSON` environment variable is set, all results of the run
//!   are additionally written to that path as a JSON object mapping benchmark
//!   ids to nanoseconds per iteration (used by `scripts/bench_pr1.sh` to emit
//!   `BENCH_PR1.json`).

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterised by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark runner handed to `criterion_group!` target functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &id.id,
            10,
            Duration::from_millis(500),
            Duration::from_secs(2),
            &mut f,
        );
        self
    }
}

/// A group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (the reported value is their
    /// median).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the benchmark before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time across all samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Ends the group (kept for API compatibility; results are reported as
    /// each benchmark completes).
    pub fn finish(self) {}
}

/// Whether `$BENCH_SMOKE` requests the fast smoke mode: one tiny sample per
/// benchmark, just enough to prove the bench still runs and to expose
/// order-of-magnitude collapses in CI logs. Smoke numbers are noisy and must
/// never be compared against full runs.
fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Positional CLI arguments act as substring filters on benchmark ids,
/// mirroring real criterion: `cargo bench -- des_engine` runs only the
/// benchmarks whose id contains `des_engine`. Flags (`--bench`, `--test`,
/// ...) and their values are not filters. With no positional arguments,
/// everything runs.
fn filters() -> &'static [String] {
    use std::sync::OnceLock;
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    })
}

fn selected(id: &str) -> bool {
    let filters = filters();
    filters.is_empty() || filters.iter().any(|f| id.contains(f))
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if !selected(id) {
        return;
    }
    let (sample_size, warm_up, measurement) = if smoke_mode() {
        (1, Duration::from_millis(5), Duration::from_millis(20))
    } else {
        (sample_size, warm_up, measurement)
    };
    let mut bencher = Bencher {
        sample_size,
        warm_up,
        measurement,
        median_ns: 0.0,
    };
    f(&mut bencher);
    println!("{id}: {:.0} ns/iter", bencher.median_ns);
    RESULTS
        .lock()
        .unwrap()
        .push((id.to_string(), bencher.median_ns));
}

/// Hint for `iter_batched` input sizing. The shim always regenerates the
/// input once per iteration, so the variants only exist for API parity with
/// real criterion.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap; criterion would batch many per allocation.
    SmallInput,
    /// Inputs are expensive; criterion would batch few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times a closure, criterion-style.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    median_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median time per iteration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget elapses (at least once) and
        // estimate the per-iteration cost.
        let warm_up_end = Instant::now() + self.warm_up;
        let mut estimate_ns = f64::INFINITY;
        loop {
            let t0 = Instant::now();
            black_box(f());
            estimate_ns = estimate_ns.min(t0.elapsed().as_nanos().max(1) as f64);
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        // Size each sample so the whole measurement roughly fits the budget.
        let per_sample_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = (per_sample_ns / estimate_ns).clamp(1.0, 1e7) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }

    /// Runs `routine` on inputs produced by `setup`, timing only `routine` —
    /// criterion's API for excluding per-iteration construction cost (e.g.
    /// building a populated data structure the routine then consumes) from
    /// the measurement. The timer starts after each `setup` call returns and
    /// stops before the routine's output is dropped.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_up_end = Instant::now() + self.warm_up;
        let mut estimate_ns = f64::INFINITY;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(black_box(input)));
            estimate_ns = estimate_ns.min(t0.elapsed().as_nanos().max(1) as f64);
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        let per_sample_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = (per_sample_ns / estimate_ns).clamp(1.0, 1e7) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut total_ns: u128 = 0;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(black_box(input)));
                total_ns += t0.elapsed().as_nanos();
            }
            samples.push(total_ns as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Implementation details used by the `criterion_group!`/`criterion_main!`
/// macro expansions; not part of the public API.
pub mod private {
    use super::RESULTS;

    /// Whether the harness should run at all (skips benches under
    /// `cargo test`, which passes `--test` to harness-less targets).
    pub fn should_run() -> bool {
        !std::env::args().any(|a| a == "--test")
    }

    /// Writes collected results to `$BENCH_JSON` (if set) as a JSON object
    /// mapping benchmark ids to ns/iter.
    pub fn write_json_if_requested() {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        let results = RESULTS.lock().unwrap();
        let mut out = String::from("{\n");
        for (i, (id, ns)) in results.iter().enumerate() {
            let comma = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "  \"{}\": {:.1}{}\n",
                id.replace('"', "'"),
                ns,
                comma
            ));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("failed to write {path}: {e}");
        }
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::private::should_run() {
                return;
            }
            $( $group(); )+
            $crate::private::write_json_if_requested();
        }
    };
}
