//! Fair-sharing flow-level resource model.
//!
//! A [`SharedResource`] represents a device (disk side, memory bus, network
//! link) with a fixed bandwidth. Concurrent transfers ("flows") each receive
//! an equal share of that bandwidth, re-evaluated whenever a flow starts or
//! completes. This is the macroscopic storage model of Lebre et al. (CCGrid
//! 2015) that SimGrid — and therefore the paper's WRENCH-cache — relies on:
//! accurate enough to capture contention between concurrent applications
//! (Exp 2 and 3 of the paper) while remaining fast to simulate.
//!
//! # Complexity: the fair-queueing "fast algorithm"
//!
//! A naive implementation re-walks every flow at every event to advance its
//! residual byte count — O(n) per event, O(n²) for n overlapping flows. This
//! module instead uses the amortised formulation popularised by fair-queueing
//! schedulers (and by dslab's throughput-sharing model): the resource tracks
//! one scalar, the cumulative **virtual service** `volume` — the number of
//! bytes a hypothetical flow active since the beginning would have received.
//! Under [`SharingPolicy::FairShare`] it grows at `bandwidth / n` while `n`
//! flows are active (and at `bandwidth` under
//! [`SharingPolicy::Unlimited`]); since `n` only changes at flow start,
//! completion or cancellation, `volume` is advanced lazily from the previous
//! event with one multiplication.
//!
//! A flow that starts when the virtual service is `v` and carries `b` bytes
//! completes exactly when `volume` reaches its **finish volume** `v + b`.
//! Flows therefore sit in a min-heap keyed by finish volume:
//!
//! * flow start: push onto the heap — **O(log n)**;
//! * next-completion query: peek the heap top — **O(1)**;
//! * flow completion: pop the top (plus any flow within an epsilon of it) —
//!   **O(log n)**; no other flow is touched;
//! * flow cancellation: lazy deletion; the stale heap entry is skipped when
//!   it surfaces — amortised **O(log n)**.
//!
//! ## Invariants
//!
//! * `active` equals the number of flows not yet completed, and the heap
//!   contains exactly one live entry per active flow (plus stale entries for
//!   cancelled flows, recognised by their missing id).
//! * For every active flow, `finish_volume - volume` is its remaining bytes.
//! * `volume` is monotonically non-decreasing while flows are active, and is
//!   rebased to zero whenever the resource goes idle so that long simulations
//!   do not accumulate floating-point error (a sequential transfer always
//!   takes exactly `latency + bytes / bandwidth`).
//! * Completion times are identical to the per-event re-sync formulation:
//!   both compute the instant at which the min-remaining flow's fair share
//!   reaches its residual bytes.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use des::{SimContext, SimTime, TimerId};

/// Residual byte count under which a flow is considered complete (guards
/// against floating-point dust).
const EPSILON_BYTES: f64 = 1e-6;

/// How concurrent flows share the device bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingPolicy {
    /// Max–min fair sharing: N concurrent flows each get `bandwidth / N`
    /// (the SimGrid/WRENCH model).
    #[default]
    FairShare,
    /// No contention: every flow always gets the full bandwidth. This is the
    /// simplification made by the paper's Python prototype, which "does not
    /// simulate bandwidth sharing and thus does not support concurrency".
    Unlimited,
}

struct Flow {
    /// The virtual-service value at which this flow has no bytes left.
    finish_volume: f64,
    done: bool,
    waker: Option<Waker>,
}

/// Min-heap entry: a flow and the virtual service at which it completes.
struct HeapEntry {
    finish_volume: f64,
    id: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.finish_volume.total_cmp(&other.finish_volume) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest finish
        // volume on top. Ties break by insertion order (lower id first).
        other
            .finish_volume
            .total_cmp(&self.finish_volume)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Inner {
    name: String,
    bandwidth: f64,
    latency: f64,
    sharing: SharingPolicy,
    flows: HashMap<u64, Flow>,
    /// Live flows ordered by finish volume; may contain stale entries for
    /// cancelled flows (lazy deletion).
    queue: BinaryHeap<HeapEntry>,
    /// Number of flows not yet done.
    active: usize,
    /// Cumulative fair-share virtual service in bytes (see module docs).
    volume: f64,
    next_flow: u64,
    last_update: SimTime,
    timer: Option<TimerId>,
    epoch: u64,
    /// Bytes injected by all flows, minus the unserved residue of cancelled
    /// flows; `total_bytes()` subtracts what active flows still owe.
    total_injected: f64,
    completed_flows: u64,
}

impl Inner {
    /// Bytes of virtual service gained per second at the current flow count.
    fn rate(&self) -> f64 {
        match self.sharing {
            SharingPolicy::FairShare => self.bandwidth / self.active.max(1) as f64,
            SharingPolicy::Unlimited => self.bandwidth,
        }
    }

    /// Advances the virtual service to `now`. O(1): no flow is touched.
    fn sync(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_update);
        self.last_update = now;
        if dt > 0.0 && self.active > 0 {
            self.volume += self.rate() * dt;
        }
    }

    /// Remaining bytes of one flow at the current virtual service.
    fn remaining(&self, flow: &Flow) -> f64 {
        if flow.done {
            0.0
        } else {
            (flow.finish_volume - self.volume).max(0.0)
        }
    }

    /// Drops stale heap entries (cancelled flows) from the top.
    fn skim_stale(&mut self) {
        while let Some(top) = self.queue.peek() {
            match self.flows.get(&top.id) {
                Some(f) if !f.done => break,
                _ => {
                    self.queue.pop();
                }
            }
        }
    }

    /// Marks every flow whose finish volume has been reached as done and
    /// wakes its future. O(log n) per completed flow.
    fn complete_finished(&mut self) {
        loop {
            self.skim_stale();
            match self.queue.peek() {
                Some(top) if top.finish_volume <= self.volume + EPSILON_BYTES => {
                    let id = self.queue.pop().expect("peeked entry exists").id;
                    self.complete_flow(id);
                }
                _ => break,
            }
        }
        self.maybe_rebase();
    }

    fn complete_flow(&mut self, id: u64) {
        let flow = self.flows.get_mut(&id).expect("live entry has a flow");
        debug_assert!(!flow.done);
        flow.done = true;
        self.active -= 1;
        self.completed_flows += 1;
        if let Some(w) = flow.waker.take() {
            w.wake();
        }
    }

    /// Virtual time at which the next flow will complete, if any.
    fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.skim_stale();
        let top = self.queue.peek()?;
        let remaining = (top.finish_volume - self.volume).max(0.0);
        Some(now + remaining / self.rate())
    }

    /// Completes the flow(s) with the least remaining bytes immediately.
    ///
    /// This is the guard against a floating-point livelock: after a timer
    /// fires, rounding can leave a flow with a residue of a few micro-bytes
    /// whose transfer time is smaller than the clock's representable
    /// resolution at the current timestamp. Re-scheduling would then fire at
    /// the *same* virtual time forever. Such residues are physically
    /// meaningless, so the flow is simply declared complete. The virtual
    /// service is left untouched: other flows make no artificial progress.
    fn force_complete_smallest(&mut self) {
        self.skim_stale();
        let Some(top) = self.queue.peek() else {
            return;
        };
        let min_finish = top.finish_volume;
        loop {
            self.skim_stale();
            match self.queue.peek() {
                Some(top) if top.finish_volume <= min_finish + EPSILON_BYTES => {
                    let id = self.queue.pop().expect("peeked entry exists").id;
                    self.complete_flow(id);
                }
                _ => break,
            }
        }
        self.maybe_rebase();
    }

    /// Resets the virtual service origin whenever no flow is active, so that
    /// `volume` stays small and sequential transfers suffer no cumulative
    /// floating-point error.
    fn maybe_rebase(&mut self) {
        if self.active == 0 {
            self.volume = 0.0;
            self.queue.clear();
        }
    }

    /// Bytes transferred so far: everything injected minus what active flows
    /// still owe. O(active); only used by stats queries, never on the event
    /// path.
    fn bytes_done(&self) -> f64 {
        let owed: f64 = self.flows.values().map(|f| self.remaining(f)).sum();
        (self.total_injected - owed).max(0.0)
    }
}

/// A bandwidth-shared device. Cloning returns another handle to the same
/// underlying resource.
#[derive(Clone)]
pub struct SharedResource {
    ctx: SimContext,
    inner: Rc<RefCell<Inner>>,
}

impl SharedResource {
    /// Creates a resource with the given bandwidth (bytes/s) and per-transfer
    /// latency (seconds).
    ///
    /// # Panics
    /// Panics if the bandwidth is not strictly positive or the latency is
    /// negative.
    pub fn new(ctx: &SimContext, name: impl Into<String>, bandwidth: f64, latency: f64) -> Self {
        Self::with_policy(ctx, name, bandwidth, latency, SharingPolicy::FairShare)
    }

    /// Creates a resource with an explicit [`SharingPolicy`].
    pub fn with_policy(
        ctx: &SimContext,
        name: impl Into<String>,
        bandwidth: f64,
        latency: f64,
        sharing: SharingPolicy,
    ) -> Self {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "bandwidth must be positive and finite"
        );
        assert!(
            latency >= 0.0 && latency.is_finite(),
            "latency must be non-negative"
        );
        SharedResource {
            ctx: ctx.clone(),
            inner: Rc::new(RefCell::new(Inner {
                name: name.into(),
                bandwidth,
                latency,
                sharing,
                flows: HashMap::new(),
                queue: BinaryHeap::new(),
                active: 0,
                volume: 0.0,
                next_flow: 0,
                last_update: ctx.now(),
                timer: None,
                epoch: 0,
                total_injected: 0.0,
                completed_flows: 0,
            })),
        }
    }

    /// Device name (for traces and error messages).
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Nominal bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.inner.borrow().bandwidth
    }

    /// Fixed per-transfer latency in seconds.
    pub fn latency(&self) -> f64 {
        self.inner.borrow().latency
    }

    /// Number of transfers currently in progress.
    pub fn active_flows(&self) -> usize {
        let mut inner = self.inner.borrow_mut();
        let now = self.ctx.now();
        inner.sync(now);
        inner.active
    }

    /// Total number of bytes moved through this resource so far.
    pub fn total_bytes(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.ctx.now();
        inner.sync(now);
        inner.bytes_done()
    }

    /// Total number of completed transfers.
    pub fn completed_flows(&self) -> u64 {
        self.inner.borrow().completed_flows
    }

    /// Time a transfer of `bytes` would take on an otherwise idle device.
    pub fn ideal_time(&self, bytes: f64) -> f64 {
        let inner = self.inner.borrow();
        inner.latency + bytes.max(0.0) / inner.bandwidth
    }

    /// Transfers `bytes` through the device, sharing bandwidth fairly with all
    /// concurrent transfers. Completes after the device latency plus the
    /// (contention-dependent) transfer time. A zero or negative byte count
    /// costs only the latency.
    pub async fn transfer(&self, bytes: f64) {
        assert!(!bytes.is_nan(), "transfer size cannot be NaN");
        let latency = self.latency();
        if latency > 0.0 {
            self.ctx.sleep(latency).await;
        }
        if bytes <= 0.0 {
            return;
        }
        let id = self.add_flow(bytes);
        FlowDone {
            resource: self.clone(),
            id,
        }
        .await
    }

    /// Like [`SharedResource::transfer`], but returns an [`AbortHandle`]
    /// alongside the transfer future. Aborting removes the flow from the
    /// device mid-transfer — exactly what a dying network link does to the
    /// flows crossing it — and resolves the future with
    /// [`TransferOutcome::Aborted`]. Aborting a completed transfer is a
    /// no-op.
    pub fn transfer_abortable(&self, bytes: f64) -> (AbortableTransfer, AbortHandle) {
        let state = Rc::new(AbortState {
            aborted: std::cell::Cell::new(false),
            waker: RefCell::new(None),
        });
        let this = self.clone();
        let inner: Pin<Box<dyn Future<Output = ()>>> =
            Box::pin(async move { this.transfer(bytes).await });
        (
            AbortableTransfer {
                inner: Some(inner),
                state: Rc::clone(&state),
            },
            AbortHandle { state },
        )
    }

    fn add_flow(&self, bytes: f64) -> u64 {
        let id = {
            let mut inner = self.inner.borrow_mut();
            let now = self.ctx.now();
            inner.sync(now);
            let id = inner.next_flow;
            inner.next_flow += 1;
            let finish_volume = inner.volume + bytes;
            inner.flows.insert(
                id,
                Flow {
                    finish_volume,
                    done: false,
                    waker: None,
                },
            );
            inner.queue.push(HeapEntry { finish_volume, id });
            inner.active += 1;
            inner.total_injected += bytes;
            id
        };
        self.reschedule();
        id
    }

    /// Re-arms the completion timer after any change to the flow set.
    fn reschedule(&self) {
        let now = self.ctx.now();
        let (cancel, schedule_at, epoch) = {
            let mut inner = self.inner.borrow_mut();
            inner.epoch += 1;
            let epoch = inner.epoch;
            let cancel = inner.timer.take();
            // Flows whose completion would not advance the virtual clock are
            // finished on the spot (see `force_complete_smallest`); only a
            // strictly future completion is worth a timer.
            let at = loop {
                match inner.next_completion(now) {
                    None => break None,
                    Some(at) if at > now => break Some(at),
                    Some(_) => inner.force_complete_smallest(),
                }
            };
            (cancel, at, epoch)
        };
        if let Some(t) = cancel {
            self.ctx.cancel_timer(t);
        }
        if let Some(at) = schedule_at {
            let this = self.clone();
            let timer = self
                .ctx
                .schedule_callback(at, move |_| this.on_timer(epoch));
            self.inner.borrow_mut().timer = Some(timer);
        }
    }

    fn on_timer(&self, epoch: u64) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.epoch != epoch {
                return;
            }
            inner.timer = None;
            let now = self.ctx.now();
            inner.sync(now);
            inner.complete_finished();
        }
        self.reschedule();
    }
}

/// Future resolving when a specific flow has transferred all its bytes.
struct FlowDone {
    resource: SharedResource,
    id: u64,
}

impl Future for FlowDone {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.resource.inner.borrow_mut();
        match inner.flows.get_mut(&self.id) {
            None => Poll::Ready(()),
            Some(flow) if flow.done => {
                inner.flows.remove(&self.id);
                Poll::Ready(())
            }
            Some(flow) => {
                flow.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

impl Drop for FlowDone {
    fn drop(&mut self) {
        // Transfer futures are not normally cancelled, but if one is, remove
        // the flow so it stops consuming bandwidth. The heap entry is left
        // behind and skipped lazily when it reaches the top.
        let removed = {
            let mut inner = self.resource.inner.borrow_mut();
            if inner.flows.get(&self.id).map(|f| !f.done).unwrap_or(false) {
                let now = self.resource.ctx.now();
                inner.sync(now);
                let flow = inner.flows.remove(&self.id).expect("checked above");
                inner.total_injected -= inner.remaining(&flow);
                inner.active -= 1;
                inner.maybe_rebase();
                true
            } else {
                inner.flows.remove(&self.id);
                false
            }
        };
        if removed {
            self.resource.reschedule();
        }
    }
}

/// How an [`AbortableTransfer`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// All bytes were transferred.
    Completed,
    /// The transfer was aborted mid-flight; its remaining bytes were never
    /// served and its flow no longer consumes bandwidth.
    Aborted,
}

struct AbortState {
    aborted: std::cell::Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

/// Handle to abort one in-flight [`SharedResource::transfer_abortable`].
/// Cloning yields another handle to the same transfer.
#[derive(Clone)]
pub struct AbortHandle {
    state: Rc<AbortState>,
}

impl AbortHandle {
    /// Aborts the transfer. Idempotent; a no-op once the transfer completed.
    pub fn abort(&self) {
        if !self.state.aborted.replace(true) {
            if let Some(w) = self.state.waker.borrow_mut().take() {
                w.wake();
            }
        }
    }

    /// Whether [`AbortHandle::abort`] has been called.
    pub fn is_aborted(&self) -> bool {
        self.state.aborted.get()
    }
}

/// Future returned by [`SharedResource::transfer_abortable`].
pub struct AbortableTransfer {
    /// The plain transfer; dropped on abort, which removes the flow (see
    /// [`FlowDone`]'s `Drop`).
    inner: Option<Pin<Box<dyn Future<Output = ()>>>>,
    state: Rc<AbortState>,
}

impl Future for AbortableTransfer {
    type Output = TransferOutcome;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<TransferOutcome> {
        if self.state.aborted.get() {
            // Dropping the inner future cancels the latency sleep and/or
            // removes the flow from the resource.
            self.inner = None;
            return Poll::Ready(TransferOutcome::Aborted);
        }
        let Some(inner) = self.inner.as_mut() else {
            return Poll::Ready(TransferOutcome::Aborted);
        };
        match inner.as_mut().poll(cx) {
            Poll::Ready(()) => {
                self.inner = None;
                Poll::Ready(TransferOutcome::Completed)
            }
            Poll::Pending => {
                *self.state.waker.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn single_transfer_takes_bytes_over_bandwidth() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 100.0, 0.0);
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move {
                res.transfer(1000.0).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 10.0);
    }

    #[test]
    fn latency_is_added_once_per_transfer() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 100.0, 0.5);
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move {
                res.transfer(100.0).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 1.5);
    }

    #[test]
    fn zero_byte_transfer_costs_only_latency() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 100.0, 0.25);
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move {
                res.transfer(0.0).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 0.25);
    }

    #[test]
    fn two_concurrent_transfers_share_bandwidth() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 100.0, 0.0);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let res = res.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(async move {
                res.transfer(1000.0).await;
                ctx.now().as_secs()
            }));
        }
        sim.run();
        // Two equal flows on a 100 B/s device: each sees 50 B/s => 20 s.
        for h in handles {
            approx(h.try_take_result().unwrap(), 20.0);
        }
    }

    #[test]
    fn staggered_transfers_get_correct_shares() {
        // Flow A (1000 B) starts at t=0, flow B (500 B) starts at t=5.
        // 0-5 s : A alone at 100 B/s -> A has 500 B left.
        // 5-15 s: A and B at 50 B/s  -> B finishes at t=15, A finishes at t=15.
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 100.0, 0.0);
        let a = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                res.transfer(1000.0).await;
                ctx.now().as_secs()
            }
        });
        let b = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                ctx.sleep(5.0).await;
                res.transfer(500.0).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx(a.try_take_result().unwrap(), 15.0);
        approx(b.try_take_result().unwrap(), 15.0);
    }

    #[test]
    fn short_flow_completion_speeds_up_remaining_flow() {
        // A: 1000 B and B: 200 B both start at t=0 on 100 B/s.
        // Until B finishes both get 50 B/s; B finishes at t=4 with A at 800 B
        // remaining; A then runs alone and finishes at t=4 + 800/100 = 12.
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 100.0, 0.0);
        let a = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                res.transfer(1000.0).await;
                ctx.now().as_secs()
            }
        });
        let b = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                res.transfer(200.0).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx(b.try_take_result().unwrap(), 4.0);
        approx(a.try_take_result().unwrap(), 12.0);
    }

    #[test]
    fn n_concurrent_transfers_scale_linearly() {
        for n in [1usize, 4, 8, 16, 32] {
            let sim = Simulation::new();
            let ctx = sim.context();
            let res = SharedResource::new(&ctx, "disk", 1000.0, 0.0);
            let mut handles = Vec::new();
            for _ in 0..n {
                let res = res.clone();
                let ctx = ctx.clone();
                handles.push(sim.spawn(async move {
                    res.transfer(1000.0).await;
                    ctx.now().as_secs()
                }));
            }
            sim.run();
            for h in handles {
                approx(h.try_take_result().unwrap(), n as f64);
            }
        }
    }

    #[test]
    fn accounting_tracks_bytes_and_flows() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 100.0, 0.0);
        {
            let res = res.clone();
            sim.spawn(async move {
                res.transfer(300.0).await;
                res.transfer(200.0).await;
            });
        }
        sim.run();
        approx(res.total_bytes(), 500.0);
        assert_eq!(res.completed_flows(), 2);
        assert_eq!(res.active_flows(), 0);
    }

    #[test]
    fn partial_progress_is_reported_mid_transfer() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 100.0, 0.0);
        {
            let res = res.clone();
            sim.spawn(async move { res.transfer(1000.0).await });
        }
        {
            let res = res.clone();
            let ctx = ctx.clone();
            sim.spawn(async move {
                ctx.sleep(5.0).await;
                // Half way through its 10 s, the flow has moved 500 bytes.
                approx(res.total_bytes(), 500.0);
                assert_eq!(res.active_flows(), 1);
            });
        }
        sim.run();
        approx(res.total_bytes(), 1000.0);
    }

    #[test]
    fn ideal_time_reports_uncontended_duration() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "disk", 200.0, 0.1);
        approx(res.ideal_time(1000.0), 5.1);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let sim = Simulation::new();
        let _ = SharedResource::new(&sim.context(), "bad", 0.0, 0.0);
    }
}

#[cfg(test)]
mod sharing_policy_tests {
    use super::*;
    use des::Simulation;

    #[test]
    fn unlimited_policy_gives_every_flow_full_bandwidth() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::with_policy(&ctx, "proto", 100.0, 0.0, SharingPolicy::Unlimited);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let res = res.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(async move {
                res.transfer(1000.0).await;
                ctx.now().as_secs()
            }));
        }
        sim.run();
        for h in handles {
            let t = h.try_take_result().unwrap();
            assert!((t - 10.0).abs() < 1e-6, "expected 10, got {t}");
        }
    }

    #[test]
    fn unlimited_policy_staggered_flows_keep_full_bandwidth() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::with_policy(&ctx, "proto", 100.0, 0.0, SharingPolicy::Unlimited);
        let a = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                res.transfer(1000.0).await;
                ctx.now().as_secs()
            }
        });
        let b = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                ctx.sleep(4.0).await;
                res.transfer(200.0).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx_rel(a.try_take_result().unwrap(), 10.0);
        approx_rel(b.try_take_result().unwrap(), 6.0);
    }

    fn approx_rel(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn default_policy_is_fair_share() {
        assert_eq!(SharingPolicy::default(), SharingPolicy::FairShare);
    }
}

#[cfg(test)]
mod float_robustness_tests {
    use super::*;
    use des::Simulation;

    /// Regression test: chunked transfers at the paper's measured (non-round)
    /// bandwidths used to livelock when a flow's residual bytes were smaller
    /// than the virtual clock's resolution. The scenario below mirrors the
    /// kernel-emulator read path (10 x 100 MB at 510 MB/s, then 10 x 100 MB at
    /// 6860 MB/s) and must terminate with the analytically expected duration.
    #[test]
    fn chunked_transfers_at_measured_bandwidths_terminate() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let disk = SharedResource::new(&ctx, "disk.read", 510.0e6, 0.0);
        let memory = SharedResource::new(&ctx, "memory.read", 6860.0e6, 0.0);
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move {
                for _ in 0..10 {
                    disk.transfer(100.0e6).await;
                }
                for _ in 0..10 {
                    memory.transfer(100.0e6).await;
                }
                ctx.now().as_secs()
            }
        });
        sim.run();
        let end = h.try_take_result().unwrap();
        let expected = 1000.0 / 510.0 + 1000.0 / 6860.0;
        assert!(
            (end - expected).abs() < 1e-6,
            "end {end}, expected {expected}"
        );
    }

    /// Same robustness requirement far from t = 0, where the clock's ulp is
    /// larger and residues are more likely to be unrepresentable.
    #[test]
    fn transfers_late_in_the_simulation_terminate() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "dev", 2764.0e6, 0.0);
        let h = sim.spawn({
            let ctx = ctx.clone();
            async move {
                ctx.sleep(100_000.0).await;
                for _ in 0..50 {
                    res.transfer(33.7e6).await;
                }
                ctx.now().as_secs()
            }
        });
        sim.run();
        let end = h.try_take_result().unwrap();
        let expected = 100_000.0 + 50.0 * 33.7e6 / 2764.0e6;
        assert!(
            (end - expected).abs() < 1e-6 * expected,
            "end {end}, expected {expected}"
        );
    }

    /// Concurrent flows with awkward sizes and bandwidths all complete and
    /// account for every byte.
    #[test]
    fn concurrent_awkward_flows_all_complete() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "dev", 445.3e6, 0.0);
        let sizes = [13.31e6, 97.7e6, 0.003e6, 250.123e6, 1.0, 499.999e6];
        for &s in &sizes {
            let res = res.clone();
            sim.spawn(async move { res.transfer(s).await });
        }
        sim.run();
        assert_eq!(res.completed_flows(), sizes.len() as u64);
        assert_eq!(res.active_flows(), 0);
        let total: f64 = sizes.iter().sum();
        assert!((res.total_bytes() - total).abs() < 1.0);
    }

    /// A thousand concurrent flows complete in N * size / bandwidth with the
    /// heap-based algorithm just as with per-event re-syncing.
    #[test]
    fn thousand_concurrent_flows_finish_at_fair_share_time() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "dev", 1000.0e6, 0.0);
        let n = 1000usize;
        for i in 0..n {
            let res = res.clone();
            // Slightly distinct sizes so completions are staggered.
            let bytes = 1.0e6 + i as f64;
            sim.spawn(async move { res.transfer(bytes).await });
        }
        let end = sim.run().as_secs();
        let total: f64 = (0..n).map(|i| 1.0e6 + i as f64).sum();
        let expected = total / 1000.0e6;
        assert!(
            (end - expected).abs() < 1e-6 * expected,
            "end {end}, expected {expected}"
        );
        assert_eq!(res.completed_flows(), n as u64);
    }
}

#[cfg(test)]
mod abort_tests {
    use super::*;
    use des::Simulation;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn aborting_mid_transfer_frees_bandwidth_for_other_flows() {
        // Two 1000 B flows on 100 B/s share 50 B/s each. Aborting one at
        // t=5 leaves the survivor alone: 750 B left at 100 B/s => t=12.5.
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "link", 100.0, 0.0);
        let survivor = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                res.transfer(1000.0).await;
                ctx.now().as_secs()
            }
        });
        let victim = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                let (fut, handle) = res.transfer_abortable(1000.0);
                ctx.schedule_callback(des::SimTime::from_secs(5.0), move |_| handle.abort());
                (fut.await, ctx.now().as_secs())
            }
        });
        sim.run();
        let (outcome, at) = victim.try_take_result().unwrap();
        assert_eq!(outcome, TransferOutcome::Aborted);
        approx(at, 5.0);
        approx(survivor.try_take_result().unwrap(), 12.5);
        assert_eq!(res.active_flows(), 0);
        assert_eq!(res.completed_flows(), 1);
    }

    #[test]
    fn abort_after_completion_is_a_no_op() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "link", 100.0, 0.0);
        let h = sim.spawn({
            let res = res.clone();
            async move {
                let (fut, handle) = res.transfer_abortable(100.0);
                let out = fut.await;
                handle.abort(); // transfer already done
                handle.abort(); // idempotent
                (out, handle.is_aborted())
            }
        });
        sim.run();
        let (out, flagged) = h.try_take_result().unwrap();
        assert_eq!(out, TransferOutcome::Completed);
        assert!(flagged);
        approx(res.total_bytes(), 100.0);
    }

    #[test]
    fn abort_during_latency_phase_costs_nothing() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "link", 100.0, 10.0);
        let h = sim.spawn({
            let res = res.clone();
            let ctx = ctx.clone();
            async move {
                let (fut, handle) = res.transfer_abortable(500.0);
                ctx.schedule_callback(des::SimTime::from_secs(2.0), move |_| handle.abort());
                (fut.await, ctx.now().as_secs())
            }
        });
        sim.run();
        let (out, at) = h.try_take_result().unwrap();
        assert_eq!(out, TransferOutcome::Aborted);
        approx(at, 2.0);
        // The flow never entered the device; nothing was transferred and the
        // abandoned latency timer must not drag the clock to t=10.
        approx(res.total_bytes(), 0.0);
        assert_eq!(sim.now().as_secs(), 2.0);
    }
}

/// Randomized differential test for fair sharing under dynamic flow churn:
/// the heap-based "fast algorithm" against a naive model that re-syncs every
/// flow's residual bytes at every event, including flows force-removed
/// mid-transfer the way a dying link removes the flows crossing it.
#[cfg(test)]
mod churn_differential_tests {
    use super::*;
    use des::Simulation;

    /// Deterministic in-repo PRNG (xorshift64*), no external crates.
    struct XorShift(u64);

    impl XorShift {
        fn new(seed: u64) -> Self {
            XorShift(seed.max(1))
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
        /// Uniform in [0, 1).
        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
        fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * self.next_f64()
        }
    }

    #[derive(Clone, Copy)]
    struct FlowSpec {
        start: f64,
        bytes: f64,
        abort_at: Option<f64>,
    }

    /// Naive reference: advance every flow's residual bytes at every
    /// breakpoint (flow start, completion, or forced removal) at the current
    /// fair share. O(n) per event — correct by construction.
    fn naive_completions(bandwidth: f64, specs: &[FlowSpec]) -> Vec<Option<f64>> {
        #[derive(Clone, Copy)]
        enum Ev {
            Add(usize),
            Remove(usize),
        }
        let mut events: Vec<(f64, Ev)> = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            events.push((s.start, Ev::Add(i)));
            if let Some(at) = s.abort_at {
                events.push((at, Ev::Remove(i)));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut remaining: Vec<Option<f64>> = vec![None; specs.len()];
        let mut done: Vec<Option<f64>> = vec![None; specs.len()];
        let mut t = 0.0_f64;
        let mut idx = 0;
        loop {
            let active: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.map(|_| i))
                .collect();
            let next_ev = events.get(idx).map(|e| e.0).unwrap_or(f64::INFINITY);
            if active.is_empty() {
                if idx >= events.len() {
                    break;
                }
                t = next_ev;
            } else {
                let rate = bandwidth / active.len() as f64;
                let min_rem = active
                    .iter()
                    .map(|&i| remaining[i].unwrap())
                    .fold(f64::INFINITY, f64::min);
                let tc = t + min_rem / rate;
                if tc <= next_ev {
                    for &i in &active {
                        let r = remaining[i].unwrap() - (tc - t) * rate;
                        if r <= 1e-6 {
                            remaining[i] = None;
                            done[i] = Some(tc);
                        } else {
                            remaining[i] = Some(r);
                        }
                    }
                    t = tc;
                    continue;
                }
                for &i in &active {
                    remaining[i] = Some(remaining[i].unwrap() - (next_ev - t) * rate);
                }
                t = next_ev;
            }
            match events[idx].1 {
                Ev::Add(i) => remaining[i] = Some(specs[i].bytes),
                Ev::Remove(i) => remaining[i] = None, // force-removed, never completes
            }
            idx += 1;
        }
        done
    }

    fn sim_completions(bandwidth: f64, specs: &[FlowSpec]) -> Vec<Option<f64>> {
        let sim = Simulation::new();
        let ctx = sim.context();
        let res = SharedResource::new(&ctx, "churn", bandwidth, 0.0);
        let mut handles = Vec::new();
        for spec in specs.iter().copied() {
            let res = res.clone();
            let ctx = ctx.clone();
            handles.push(sim.spawn(async move {
                ctx.sleep_until(des::SimTime::from_secs(spec.start)).await;
                let (fut, handle) = res.transfer_abortable(spec.bytes);
                if let Some(at) = spec.abort_at {
                    ctx.schedule_callback(des::SimTime::from_secs(at), move |_| handle.abort());
                }
                match fut.await {
                    TransferOutcome::Completed => Some(ctx.now().as_secs()),
                    TransferOutcome::Aborted => None,
                }
            }));
        }
        sim.run();
        assert_eq!(res.active_flows(), 0, "flows left active after churn");
        handles
            .into_iter()
            .map(|h| h.try_take_result().unwrap())
            .collect()
    }

    #[test]
    fn fast_algorithm_matches_naive_resync_under_flow_churn() {
        let bandwidth = 97.3e6;
        for seed in 1..=25u64 {
            let mut rng = XorShift::new(seed.wrapping_mul(0x9E3779B97F4A7C15));
            let n = 10 + (rng.next_u64() % 30) as usize;
            let specs: Vec<FlowSpec> = (0..n)
                .map(|_| {
                    let start = rng.range(0.0, 8.0);
                    let bytes = rng.range(0.1e6, 80.0e6);
                    // A third of the flows are force-removed mid-transfer,
                    // some so late the abort is a no-op (flow already done).
                    let abort_at = (rng.next_f64() < 0.33)
                        .then(|| start + rng.range(0.01, 1.5 * bytes / bandwidth * n as f64));
                    FlowSpec {
                        start,
                        bytes,
                        abort_at,
                    }
                })
                .collect();
            let expected = naive_completions(bandwidth, &specs);
            let got = sim_completions(bandwidth, &specs);
            for (i, (e, g)) in expected.iter().zip(got.iter()).enumerate() {
                match (e, g) {
                    (None, None) => {}
                    (Some(te), Some(tg)) => assert!(
                        (te - tg).abs() < 1e-6 * te.max(1.0),
                        "seed {seed} flow {i}: naive {te}, fast {tg}"
                    ),
                    _ => panic!("seed {seed} flow {i}: naive {e:?} but fast {g:?}"),
                }
            }
        }
    }
}
