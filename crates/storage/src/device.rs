//! Concrete simulated devices built on [`SharedResource`]: disks, the memory
//! bus, and network links.
//!
//! Each device has separate read and write channels so asymmetric bandwidths
//! can be modelled (the paper notes SimGrid 3.25 only supported symmetric
//! bandwidths and had to average them; we support both, and the experiment
//! configurations choose which to use).

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use des::SimContext;

use crate::resource::{SharedResource, SharingPolicy};

/// Describes the performance and capacity of a storage or memory device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Read bandwidth in bytes per second.
    pub read_bandwidth: f64,
    /// Write bandwidth in bytes per second.
    pub write_bandwidth: f64,
    /// Fixed per-operation latency in seconds.
    pub latency: f64,
    /// Usable capacity in bytes (`f64::INFINITY` for "unbounded").
    pub capacity: f64,
    /// How concurrent transfers share the device.
    pub sharing: SharingPolicy,
}

impl DeviceSpec {
    /// Creates a spec with symmetric read/write bandwidth, as used by the
    /// paper's simulators ("the mean of the measured read and write
    /// bandwidths").
    pub fn symmetric(bandwidth: f64, latency: f64, capacity: f64) -> Self {
        DeviceSpec {
            read_bandwidth: bandwidth,
            write_bandwidth: bandwidth,
            latency,
            capacity,
            sharing: SharingPolicy::FairShare,
        }
    }

    /// Creates a spec with distinct read and write bandwidths, as measured on
    /// the real cluster (Table III, "Cluster (real)" column).
    pub fn asymmetric(
        read_bandwidth: f64,
        write_bandwidth: f64,
        latency: f64,
        capacity: f64,
    ) -> Self {
        DeviceSpec {
            read_bandwidth,
            write_bandwidth,
            latency,
            capacity,
            sharing: SharingPolicy::FairShare,
        }
    }

    /// Disables bandwidth sharing on this device (every transfer gets the
    /// full bandwidth), reproducing the paper's Python prototype model.
    pub fn without_contention(mut self) -> Self {
        self.sharing = SharingPolicy::Unlimited;
        self
    }
}

/// Error returned when a disk does not have enough free capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskFullError {
    /// Name of the disk that rejected the allocation.
    pub disk: String,
    /// Bytes that were requested.
    pub requested: f64,
    /// Bytes that were available.
    pub available: f64,
}

impl fmt::Display for DiskFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "disk '{}' is full: requested {} bytes but only {} bytes are free",
            self.disk, self.requested, self.available
        )
    }
}

impl std::error::Error for DiskFullError {}

/// A simulated disk: bandwidth-shared read and write channels plus capacity
/// accounting.
#[derive(Clone)]
pub struct Disk {
    name: String,
    read: SharedResource,
    write: SharedResource,
    capacity: f64,
    used: Rc<Cell<f64>>,
}

impl Disk {
    /// Creates a disk from a [`DeviceSpec`].
    pub fn new(ctx: &SimContext, name: impl Into<String>, spec: DeviceSpec) -> Self {
        let name = name.into();
        Disk {
            read: SharedResource::with_policy(
                ctx,
                format!("{name}.read"),
                spec.read_bandwidth,
                spec.latency,
                spec.sharing,
            ),
            write: SharedResource::with_policy(
                ctx,
                format!("{name}.write"),
                spec.write_bandwidth,
                spec.latency,
                spec.sharing,
            ),
            capacity: spec.capacity,
            used: Rc::new(Cell::new(0.0)),
            name,
        }
    }

    /// Disk name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reads `bytes` from the disk, sharing read bandwidth with concurrent
    /// readers.
    pub async fn read(&self, bytes: f64) {
        self.read.transfer(bytes).await;
    }

    /// Writes `bytes` to the disk, sharing write bandwidth with concurrent
    /// writers.
    pub async fn write(&self, bytes: f64) {
        self.write.transfer(bytes).await;
    }

    /// The read channel (for inspection or direct composition).
    pub fn read_channel(&self) -> &SharedResource {
        &self.read
    }

    /// The write channel (for inspection or direct composition).
    pub fn write_channel(&self) -> &SharedResource {
        &self.write
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Bytes currently allocated on the disk.
    pub fn used(&self) -> f64 {
        self.used.get()
    }

    /// Bytes still free on the disk.
    pub fn available(&self) -> f64 {
        (self.capacity - self.used.get()).max(0.0)
    }

    /// Reserves space for a file. Call before writing new data.
    pub fn allocate(&self, bytes: f64) -> Result<(), DiskFullError> {
        if bytes <= self.available() {
            self.used.set(self.used.get() + bytes);
            Ok(())
        } else {
            Err(DiskFullError {
                disk: self.name.clone(),
                requested: bytes,
                available: self.available(),
            })
        }
    }

    /// Releases previously allocated space (e.g. a deleted file). Saturates at
    /// zero.
    pub fn free(&self, bytes: f64) {
        self.used.set((self.used.get() - bytes).max(0.0));
    }

    /// Time an uncontended read of `bytes` would take.
    pub fn ideal_read_time(&self, bytes: f64) -> f64 {
        self.read.ideal_time(bytes)
    }

    /// Time an uncontended write of `bytes` would take.
    pub fn ideal_write_time(&self, bytes: f64) -> f64 {
        self.write.ideal_time(bytes)
    }

    /// Total bytes read since the start of the simulation.
    pub fn total_bytes_read(&self) -> f64 {
        self.read.total_bytes()
    }

    /// Total bytes written since the start of the simulation.
    pub fn total_bytes_written(&self) -> f64 {
        self.write.total_bytes()
    }
}

/// The memory bus: cache hits and cache writes move data at memory bandwidth.
#[derive(Clone)]
pub struct MemoryDevice {
    read: SharedResource,
    write: SharedResource,
}

impl MemoryDevice {
    /// Creates the memory bus from a [`DeviceSpec`] (capacity is ignored here;
    /// the page cache's `MemoryManager` owns capacity accounting).
    pub fn new(ctx: &SimContext, spec: DeviceSpec) -> Self {
        MemoryDevice {
            read: SharedResource::with_policy(
                ctx,
                "memory.read",
                spec.read_bandwidth,
                spec.latency,
                spec.sharing,
            ),
            write: SharedResource::with_policy(
                ctx,
                "memory.write",
                spec.write_bandwidth,
                spec.latency,
                spec.sharing,
            ),
        }
    }

    /// Reads `bytes` from memory (a page-cache hit).
    pub async fn read(&self, bytes: f64) {
        self.read.transfer(bytes).await;
    }

    /// Writes `bytes` to memory (writing into the page cache).
    pub async fn write(&self, bytes: f64) {
        self.write.transfer(bytes).await;
    }

    /// The read channel.
    pub fn read_channel(&self) -> &SharedResource {
        &self.read
    }

    /// The write channel.
    pub fn write_channel(&self) -> &SharedResource {
        &self.write
    }

    /// Time an uncontended memory read of `bytes` would take.
    pub fn ideal_read_time(&self, bytes: f64) -> f64 {
        self.read.ideal_time(bytes)
    }

    /// Time an uncontended memory write of `bytes` would take.
    pub fn ideal_write_time(&self, bytes: f64) -> f64 {
        self.write.ideal_time(bytes)
    }
}

/// A network link connecting two hosts (e.g. NFS client and server).
///
/// Modelled as a single shared channel: concurrent transfers in either
/// direction share the link bandwidth, which matches the paper's symmetric
/// 25 Gbps cluster interconnect.
#[derive(Clone)]
pub struct NetworkLink {
    link: SharedResource,
}

impl NetworkLink {
    /// Creates a link with the given bandwidth (bytes/s) and latency (s).
    pub fn new(ctx: &SimContext, name: impl Into<String>, bandwidth: f64, latency: f64) -> Self {
        NetworkLink {
            link: SharedResource::new(ctx, name, bandwidth, latency),
        }
    }

    /// Wraps an existing shared channel as a link. Used by the network
    /// fabric to hand out `NetworkLink` views of fabric-owned links (e.g.
    /// the degenerate one-client/one-server NFS fabric).
    pub fn from_channel(link: SharedResource) -> Self {
        NetworkLink { link }
    }

    /// Sends `bytes` across the link.
    pub async fn transfer(&self, bytes: f64) {
        self.link.transfer(bytes).await;
    }

    /// The underlying shared channel.
    pub fn channel(&self) -> &SharedResource {
        &self.link
    }

    /// Time an uncontended transfer of `bytes` would take.
    pub fn ideal_time(&self, bytes: f64) -> f64 {
        self.link.ideal_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GB, MB};
    use des::Simulation;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn disk_read_write_times_follow_spec() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let disk = Disk::new(
            &ctx,
            "ssd0",
            DeviceSpec::asymmetric(500.0 * MB, 250.0 * MB, 0.0, GB),
        );
        let h = sim.spawn({
            let disk = disk.clone();
            let ctx = ctx.clone();
            async move {
                disk.read(500.0 * MB).await;
                let t_read = ctx.now().as_secs();
                disk.write(500.0 * MB).await;
                (t_read, ctx.now().as_secs())
            }
        });
        sim.run();
        let (t_read, t_end) = h.try_take_result().unwrap();
        approx(t_read, 1.0);
        approx(t_end - t_read, 2.0);
    }

    #[test]
    fn disk_reads_and_writes_do_not_contend_with_each_other() {
        // Separate channels: a concurrent read and write each run at full
        // bandwidth.
        let sim = Simulation::new();
        let ctx = sim.context();
        let disk = Disk::new(&ctx, "ssd0", DeviceSpec::symmetric(100.0 * MB, 0.0, GB));
        let r = sim.spawn({
            let disk = disk.clone();
            let ctx = ctx.clone();
            async move {
                disk.read(100.0 * MB).await;
                ctx.now().as_secs()
            }
        });
        let w = sim.spawn({
            let disk = disk.clone();
            let ctx = ctx.clone();
            async move {
                disk.write(100.0 * MB).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx(r.try_take_result().unwrap(), 1.0);
        approx(w.try_take_result().unwrap(), 1.0);
    }

    #[test]
    fn disk_capacity_accounting() {
        let sim = Simulation::new();
        let disk = Disk::new(
            &sim.context(),
            "ssd0",
            DeviceSpec::symmetric(100.0 * MB, 0.0, 10.0 * GB),
        );
        assert_eq!(disk.available(), 10.0 * GB);
        disk.allocate(4.0 * GB).unwrap();
        assert_eq!(disk.used(), 4.0 * GB);
        let err = disk.allocate(7.0 * GB).unwrap_err();
        assert_eq!(err.disk, "ssd0");
        assert!(err.to_string().contains("is full"));
        disk.free(2.0 * GB);
        assert_eq!(disk.used(), 2.0 * GB);
        disk.allocate(7.0 * GB).unwrap();
        // Freeing more than used saturates at zero.
        disk.free(100.0 * GB);
        assert_eq!(disk.used(), 0.0);
    }

    #[test]
    fn memory_device_transfers() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let mem = MemoryDevice::new(&ctx, DeviceSpec::symmetric(4812.0 * MB, 0.0, f64::INFINITY));
        let h = sim.spawn({
            let mem = mem.clone();
            let ctx = ctx.clone();
            async move {
                mem.read(4812.0 * MB).await;
                mem.write(2.0 * 4812.0 * MB).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx(h.try_take_result().unwrap(), 3.0);
    }

    #[test]
    fn network_link_shares_bandwidth_between_directions() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let link = NetworkLink::new(&ctx, "eth0", 100.0 * MB, 0.0);
        let a = sim.spawn({
            let link = link.clone();
            let ctx = ctx.clone();
            async move {
                link.transfer(100.0 * MB).await;
                ctx.now().as_secs()
            }
        });
        let b = sim.spawn({
            let link = link.clone();
            let ctx = ctx.clone();
            async move {
                link.transfer(100.0 * MB).await;
                ctx.now().as_secs()
            }
        });
        sim.run();
        approx(a.try_take_result().unwrap(), 2.0);
        approx(b.try_take_result().unwrap(), 2.0);
    }

    #[test]
    fn ideal_times() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let disk = Disk::new(&ctx, "d", DeviceSpec::asymmetric(200.0, 100.0, 0.5, GB));
        approx(disk.ideal_read_time(1000.0), 5.5);
        approx(disk.ideal_write_time(1000.0), 10.5);
        let link = NetworkLink::new(&ctx, "n", 1000.0, 0.1);
        approx(link.ideal_time(500.0), 0.6);
    }
}
