//! Byte and bandwidth unit helpers.
//!
//! Everything in the simulator is expressed in **bytes** and **bytes per
//! second** as `f64`. The paper mixes decimal units (file sizes in GB,
//! bandwidths in MBps) and binary units (RAM in GiB); both families are
//! provided so experiment configurations can quote the paper literally.

/// One kilobyte (10^3 bytes).
pub const KB: f64 = 1e3;
/// One megabyte (10^6 bytes).
pub const MB: f64 = 1e6;
/// One gigabyte (10^9 bytes).
pub const GB: f64 = 1e9;
/// One terabyte (10^12 bytes).
pub const TB: f64 = 1e12;

/// One kibibyte (2^10 bytes).
pub const KIB: f64 = 1024.0;
/// One mebibyte (2^20 bytes).
pub const MIB: f64 = 1024.0 * 1024.0;
/// One gibibyte (2^30 bytes).
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Size of a Linux page (4 KiB), the granularity of the kernel emulator.
pub const PAGE_SIZE: f64 = 4096.0;

/// Converts a bandwidth given in MB per second to bytes per second.
#[inline]
pub fn mbps(v: f64) -> f64 {
    v * MB
}

/// Converts a bandwidth given in Gbit per second to bytes per second.
#[inline]
pub fn gbit_per_s(v: f64) -> f64 {
    v * 1e9 / 8.0
}

/// Formats a byte count using the most natural decimal unit.
pub fn format_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= TB {
        format!("{:.2} TB", bytes / TB)
    } else if abs >= GB {
        format!("{:.2} GB", bytes / GB)
    } else if abs >= MB {
        format!("{:.2} MB", bytes / MB)
    } else if abs >= KB {
        format!("{:.2} KB", bytes / KB)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(GB, 1000.0 * MB);
        assert_eq!(MB, 1000.0 * KB);
        assert_eq!(GIB, 1024.0 * MIB);
        assert_eq!(PAGE_SIZE, 4.0 * KIB);
    }

    #[test]
    fn bandwidth_helpers() {
        assert_eq!(mbps(465.0), 465e6);
        assert_eq!(gbit_per_s(25.0), 3.125e9);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(20.0 * GB), "20.00 GB");
        assert_eq!(format_bytes(1.5 * MB), "1.50 MB");
        assert_eq!(format_bytes(2.0 * TB), "2.00 TB");
        assert_eq!(format_bytes(3.0 * KB), "3.00 KB");
    }
}
