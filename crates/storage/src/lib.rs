//! # `storage-model` — flow-level storage, memory and network models
//!
//! Macroscopic (SimGrid-style) performance models for the devices the
//! page-cache simulator runs on. Devices are characterised by bandwidth,
//! latency and capacity; concurrent transfers share bandwidth fairly and are
//! re-scheduled whenever a transfer starts or completes.
//!
//! The paper relies on exactly this family of models (Lebre et al., "Adding
//! storage simulation capacities to the SimGrid toolkit", CCGrid 2015) for
//! disk and memory accesses; this crate reimplements them on top of the
//! [`des`] engine.
//!
//! ```
//! use des::Simulation;
//! use storage_model::{DeviceSpec, Disk, units::MB};
//!
//! let sim = Simulation::new();
//! let ctx = sim.context();
//! let disk = Disk::new(&ctx, "ssd0", DeviceSpec::symmetric(465.0 * MB, 0.0, f64::INFINITY));
//! let done = sim.spawn({
//!     let disk = disk.clone();
//!     async move { disk.read(465.0 * MB).await; }
//! });
//! sim.run();
//! assert!(done.is_finished());
//! assert_eq!(sim.now().as_secs(), 1.0);
//! ```

#![warn(missing_docs)]

mod device;
mod resource;
pub mod units;

pub use device::{DeviceSpec, Disk, DiskFullError, MemoryDevice, NetworkLink};
pub use resource::{
    AbortHandle, AbortableTransfer, SharedResource, SharingPolicy, TransferOutcome,
};
