//! Filesystem error types.

use std::fmt;

use pagecache::FileId;
use storage_model::DiskFullError;

/// Errors returned by the simulated filesystems.
#[derive(Debug, Clone, PartialEq)]
pub enum FsError {
    /// The file is not registered in the filesystem.
    FileNotFound(FileId),
    /// The backing disk has no room for the file.
    DiskFull(DiskFullError),
    /// A file with this name already exists.
    AlreadyExists(FileId),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::FileNotFound(file) => write!(f, "file '{file}' not found"),
            FsError::DiskFull(e) => write!(f, "{e}"),
            FsError::AlreadyExists(file) => write!(f, "file '{file}' already exists"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<DiskFullError> for FsError {
    fn from(e: DiskFullError) -> Self {
        FsError::DiskFull(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FsError::FileNotFound("missing".into());
        assert!(e.to_string().contains("missing"));
        let e = FsError::AlreadyExists("dup".into());
        assert!(e.to_string().contains("already exists"));
        let e: FsError = DiskFullError {
            disk: "d0".into(),
            requested: 10.0,
            available: 5.0,
        }
        .into();
        assert!(e.to_string().contains("full"));
    }
}
