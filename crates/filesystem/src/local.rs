//! Local filesystems: page-cached (the paper's model) and direct (the
//! cacheless behaviour of vanilla WRENCH).

use des::SimContext;
use pagecache::{FileId, IoController, IoOpStats, MemoryManager};
use storage_model::Disk;

use crate::error::FsError;
use crate::registry::FileRegistry;

/// A local filesystem whose I/O goes through the simulated page cache
/// (WRENCH-cache behaviour).
#[derive(Clone)]
pub struct CachedFileSystem {
    io: IoController,
    disk: Disk,
    registry: FileRegistry,
}

impl CachedFileSystem {
    /// Creates a cached filesystem on `disk`, using the given I/O controller
    /// (which owns the host's Memory Manager).
    pub fn new(io: IoController, disk: Disk) -> Self {
        CachedFileSystem {
            io,
            disk,
            registry: FileRegistry::new(),
        }
    }

    /// The host's Memory Manager.
    pub fn memory_manager(&self) -> &MemoryManager {
        self.io.memory_manager()
    }

    /// The I/O controller.
    pub fn io_controller(&self) -> &IoController {
        &self.io
    }

    /// The backing disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The file registry.
    pub fn registry(&self) -> &FileRegistry {
        &self.registry
    }

    /// Registers an existing file (e.g. the initial input of a workflow)
    /// without simulating any I/O.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), FsError> {
        self.disk.allocate(size)?;
        self.registry.create(file, size)
    }

    /// Reads a whole file through the page cache.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        let size = self.registry.size(file)?;
        Ok(self.io.read_file(file, size).await)
    }

    /// Writes (creates or overwrites) a file of `size` bytes through the page
    /// cache.
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, FsError> {
        if let Some(old) = self.registry.create_or_replace(file, size) {
            self.disk.free(old);
        }
        self.disk.allocate(size)?;
        Ok(self.io.write_file(file, size).await)
    }

    /// Deletes a file: drops its cached data and frees its disk space.
    pub fn delete_file(&self, file: &FileId) -> Result<(), FsError> {
        let size = self.registry.remove(file)?;
        self.disk.free(size);
        self.memory_manager().invalidate_file(file);
        Ok(())
    }
}

/// A local filesystem that bypasses the page cache entirely: every read and
/// write is a disk access at disk bandwidth. This reproduces the behaviour of
/// the original (cacheless) WRENCH simulator the paper compares against.
#[derive(Clone)]
pub struct DirectFileSystem {
    ctx: SimContext,
    disk: Disk,
    registry: FileRegistry,
}

impl DirectFileSystem {
    /// Creates a direct (cacheless) filesystem on `disk`.
    pub fn new(ctx: &SimContext, disk: Disk) -> Self {
        DirectFileSystem {
            ctx: ctx.clone(),
            disk,
            registry: FileRegistry::new(),
        }
    }

    /// The backing disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The file registry.
    pub fn registry(&self) -> &FileRegistry {
        &self.registry
    }

    /// Registers an existing file without simulating any I/O.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), FsError> {
        self.disk.allocate(size)?;
        self.registry.create(file, size)
    }

    /// Reads a whole file directly from disk.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        let size = self.registry.size(file)?;
        let start = self.ctx.now();
        self.disk.read(size).await;
        Ok(IoOpStats {
            bytes_from_disk: size,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    /// Writes a file directly to disk.
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, FsError> {
        if let Some(old) = self.registry.create_or_replace(file, size) {
            self.disk.free(old);
        }
        self.disk.allocate(size)?;
        let start = self.ctx.now();
        self.disk.write(size).await;
        Ok(IoOpStats {
            bytes_to_disk: size,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    /// Deletes a file and frees its disk space.
    pub fn delete_file(&self, file: &FileId) -> Result<(), FsError> {
        let size = self.registry.remove(file)?;
        self.disk.free(size);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use pagecache::PageCacheConfig;
    use storage_model::{units::MB, DeviceSpec, MemoryDevice};

    const MEM_BW: f64 = 1000.0 * 1e6;
    const DISK_BW: f64 = 100.0 * 1e6;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    fn cached_fs(sim: &Simulation, memory_mb: f64, disk_capacity: f64) -> CachedFileSystem {
        let ctx = sim.context();
        let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(MEM_BW, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "disk0",
            DeviceSpec::symmetric(DISK_BW, 0.0, disk_capacity),
        );
        let mm = MemoryManager::new(
            &ctx,
            PageCacheConfig::with_memory(memory_mb * MB),
            memory,
            disk.clone(),
        );
        CachedFileSystem::new(IoController::new(&ctx, mm), disk)
    }

    #[test]
    fn cached_fs_read_write_and_cache_hit() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 10_000.0, f64::INFINITY);
        fs.create_file(&"input".into(), 500.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let cold = fs.read_file(&"input".into()).await.unwrap();
                let warm = fs.read_file(&"input".into()).await.unwrap();
                let write = fs.write_file(&"output".into(), 300.0 * MB).await.unwrap();
                (cold, warm, write)
            }
        });
        sim.run();
        let (cold, warm, write) = h.try_take_result().unwrap();
        approx(cold.bytes_from_disk, 500.0 * MB);
        approx(warm.bytes_from_cache, 500.0 * MB);
        approx(write.bytes_to_cache, 300.0 * MB);
        assert!(warm.duration < cold.duration);
        assert!(fs.registry().exists(&"output".into()));
        approx(fs.disk().used(), 800.0 * MB);
    }

    #[test]
    fn cached_fs_missing_file_and_delete() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 1_000.0, f64::INFINITY);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_file(&"nope".into()).await }
        });
        sim.run();
        assert!(matches!(
            h.try_take_result().unwrap(),
            Err(FsError::FileNotFound(_))
        ));

        fs.create_file(&"f".into(), 100.0 * MB).unwrap();
        fs.memory_manager().add_to_cache(&"f".into(), 100.0 * MB);
        fs.delete_file(&"f".into()).unwrap();
        approx(fs.disk().used(), 0.0);
        approx(fs.memory_manager().cached(), 0.0);
        assert!(fs.delete_file(&"f".into()).is_err());
    }

    #[test]
    fn cached_fs_overwrite_frees_old_space() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 10_000.0, 1_000.0 * MB);
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                fs.write_file(&"f".into(), 800.0 * MB).await.unwrap();
                // Overwriting with a smaller file must free the old allocation
                // first, otherwise this would exceed the 1 GB disk.
                fs.write_file(&"f".into(), 600.0 * MB).await.unwrap();
            }
        });
        sim.run();
        assert!(h.is_finished());
        approx(fs.disk().used(), 600.0 * MB);
    }

    #[test]
    fn cached_fs_disk_full() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 1_000.0, 100.0 * MB);
        assert!(matches!(
            fs.create_file(&"big".into(), 200.0 * MB),
            Err(FsError::DiskFull(_))
        ));
    }

    #[test]
    fn direct_fs_reads_and_writes_at_disk_bandwidth() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let disk = Disk::new(
            &ctx,
            "d0",
            DeviceSpec::symmetric(DISK_BW, 0.0, f64::INFINITY),
        );
        let fs = DirectFileSystem::new(&ctx, disk);
        fs.create_file(&"input".into(), 500.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let r1 = fs.read_file(&"input".into()).await.unwrap();
                // A second read is just as slow: no cache.
                let r2 = fs.read_file(&"input".into()).await.unwrap();
                let w = fs.write_file(&"out".into(), 200.0 * MB).await.unwrap();
                (r1, r2, w)
            }
        });
        sim.run();
        let (r1, r2, w) = h.try_take_result().unwrap();
        approx(r1.duration, 5.0);
        approx(r2.duration, 5.0);
        approx(r1.bytes_from_disk, 500.0 * MB);
        approx(w.duration, 2.0);
        approx(w.bytes_to_disk, 200.0 * MB);
        fs.delete_file(&"out".into()).unwrap();
        approx(fs.disk().used(), 500.0 * MB);
        assert!(matches!(
            fs.delete_file(&"missing".into()),
            Err(FsError::FileNotFound(_))
        ));
    }
}
