//! Local filesystems: page-cached (the paper's model) and direct (the
//! cacheless behaviour of vanilla WRENCH).

use des::SimContext;
use pagecache::{clamp_io_range, FileId, IoController, IoOpStats, MemoryManager};
use storage_model::Disk;

use crate::error::FsError;
use crate::registry::FileRegistry;

/// Grows the registration of `file` so it covers a write of `len` bytes at
/// `offset`, allocating the extra disk space on `disk`. Creates the file
/// when it does not exist; never shrinks it (range writes extend, deleting
/// and rewriting truncates). Rejects non-finite ranges — a write, unlike a
/// read, has no end-of-file to clamp to. Returns the clamped `(offset,
/// len)` actually written.
///
/// Shared by every filesystem whose registration is a [`FileRegistry`]
/// (the local filesystems, NFS, and `workflow`'s cacheless NFS mount), so
/// the extend-never-shrink rule lives in one place.
pub fn extend_for_write(
    registry: &FileRegistry,
    disk: &Disk,
    file: &FileId,
    offset: f64,
    len: f64,
) -> Result<(f64, f64), FsError> {
    if !offset.is_finite() || !len.is_finite() {
        return Err(FsError::InvalidRange { offset, len });
    }
    let offset = offset.max(0.0);
    let len = len.max(0.0);
    let new_end = offset + len;
    match registry.size(file) {
        Ok(old) if new_end > old => {
            disk.allocate(new_end - old)?;
            registry.create_or_replace(file, new_end);
        }
        Ok(_) => {}
        Err(_) => {
            disk.allocate(new_end)?;
            registry.create(file, new_end)?;
        }
    }
    Ok((offset, len))
}

/// A local filesystem whose I/O goes through the simulated page cache
/// (WRENCH-cache behaviour).
#[derive(Clone)]
pub struct CachedFileSystem {
    io: IoController,
    disk: Disk,
    registry: FileRegistry,
}

impl CachedFileSystem {
    /// Creates a cached filesystem on `disk`, using the given I/O controller
    /// (which owns the host's Memory Manager).
    pub fn new(io: IoController, disk: Disk) -> Self {
        CachedFileSystem {
            io,
            disk,
            registry: FileRegistry::new(),
        }
    }

    /// The host's Memory Manager.
    pub fn memory_manager(&self) -> &MemoryManager {
        self.io.memory_manager()
    }

    /// The I/O controller.
    pub fn io_controller(&self) -> &IoController {
        &self.io
    }

    /// The backing disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The file registry.
    pub fn registry(&self) -> &FileRegistry {
        &self.registry
    }

    /// Registers an existing file (e.g. the initial input of a workflow)
    /// without simulating any I/O.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), FsError> {
        self.disk.allocate(size)?;
        self.registry.create(file, size)
    }

    /// Reads a whole file through the page cache. A corollary of
    /// [`CachedFileSystem::read_range`] over `[0, size)`.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        self.read_range(file, 0.0, f64::INFINITY).await
    }

    /// Reads `len` bytes of `file` starting at `offset` through the page
    /// cache (`len = f64::INFINITY` reads to end of file; the range is
    /// clamped to the file). The macroscopic cache model is amount-based, so
    /// a partial re-read hits the cache for up to `min(len, cached_amount)`
    /// bytes.
    pub async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, FsError> {
        let size = self.registry.size(file)?;
        let (_start, amount) = clamp_io_range(offset, len, size);
        Ok(self.io.read_amount(file, size, amount).await)
    }

    /// Writes (creates or overwrites) a file of `size` bytes through the page
    /// cache. Unlike [`CachedFileSystem::write_range`], this replaces the
    /// file registration: the old size is freed first (truncate semantics).
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, FsError> {
        if !size.is_finite() {
            return Err(FsError::InvalidRange {
                offset: 0.0,
                len: size,
            });
        }
        if let Some(old) = self.registry.create_or_replace(file, size) {
            self.disk.free(old);
        }
        self.disk.allocate(size)?;
        Ok(self.io.write_amount(file, size).await)
    }

    /// Writes `len` bytes at `offset` through the page cache, creating the
    /// file or extending it to `offset + len` as needed. Range writes never
    /// shrink a file; delete and rewrite to truncate.
    pub async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, FsError> {
        let (_offset, len) = extend_for_write(&self.registry, &self.disk, file, offset, len)?;
        Ok(self.io.write_amount(file, len).await)
    }

    /// Flushes the file's dirty cached data to disk synchronously (`fsync`).
    /// On this writeback filesystem the flush happens at disk bandwidth and
    /// the flushed data stays cached (clean).
    pub async fn fsync(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        self.registry.size(file)?;
        Ok(self.io.fsync(file).await)
    }

    /// Flushes all dirty cached data of the host to disk (`sync`).
    pub async fn sync(&self) -> IoOpStats {
        self.io.sync().await
    }

    /// Deletes a file: drops its cached data and frees its disk space.
    pub fn delete_file(&self, file: &FileId) -> Result<(), FsError> {
        let size = self.registry.remove(file)?;
        self.disk.free(size);
        self.memory_manager().invalidate_file(file);
        Ok(())
    }
}

/// A local filesystem that bypasses the page cache entirely: every read and
/// write is a disk access at disk bandwidth. This reproduces the behaviour of
/// the original (cacheless) WRENCH simulator the paper compares against.
#[derive(Clone)]
pub struct DirectFileSystem {
    ctx: SimContext,
    disk: Disk,
    registry: FileRegistry,
}

impl DirectFileSystem {
    /// Creates a direct (cacheless) filesystem on `disk`.
    pub fn new(ctx: &SimContext, disk: Disk) -> Self {
        DirectFileSystem {
            ctx: ctx.clone(),
            disk,
            registry: FileRegistry::new(),
        }
    }

    /// The backing disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The file registry.
    pub fn registry(&self) -> &FileRegistry {
        &self.registry
    }

    /// Registers an existing file without simulating any I/O.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), FsError> {
        self.disk.allocate(size)?;
        self.registry.create(file, size)
    }

    /// Reads a whole file directly from disk. A corollary of
    /// [`DirectFileSystem::read_range`] over `[0, size)`.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        self.read_range(file, 0.0, f64::INFINITY).await
    }

    /// Reads `len` bytes at `offset` directly from disk (no cache: every
    /// byte pays the disk bandwidth).
    pub async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, FsError> {
        let size = self.registry.size(file)?;
        let (_start, amount) = clamp_io_range(offset, len, size);
        let start = self.ctx.now();
        if amount > 0.0 {
            self.disk.read(amount).await;
        }
        Ok(IoOpStats {
            bytes_from_disk: amount,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    /// Writes a file directly to disk (truncate semantics).
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, FsError> {
        if !size.is_finite() {
            return Err(FsError::InvalidRange {
                offset: 0.0,
                len: size,
            });
        }
        if let Some(old) = self.registry.create_or_replace(file, size) {
            self.disk.free(old);
        }
        self.disk.allocate(size)?;
        self.write_amount(size).await
    }

    /// Writes `len` bytes at `offset` directly to disk, creating or
    /// extending the file as needed (never shrinking it).
    pub async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, FsError> {
        let (_offset, len) = extend_for_write(&self.registry, &self.disk, file, offset, len)?;
        self.write_amount(len).await
    }

    async fn write_amount(&self, amount: f64) -> Result<IoOpStats, FsError> {
        let start = self.ctx.now();
        if amount > 0.0 {
            self.disk.write(amount).await;
        }
        Ok(IoOpStats {
            bytes_to_disk: amount,
            duration: self.ctx.now().duration_since(start),
            ..IoOpStats::default()
        })
    }

    /// `fsync` on the cacheless filesystem is a no-op: every write already
    /// went to disk synchronously.
    pub async fn fsync(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        self.registry.size(file)?;
        Ok(IoOpStats::default())
    }

    /// `sync` on the cacheless filesystem is a no-op (nothing is ever
    /// dirty).
    pub async fn sync(&self) -> IoOpStats {
        IoOpStats::default()
    }

    /// Deletes a file and frees its disk space.
    pub fn delete_file(&self, file: &FileId) -> Result<(), FsError> {
        let size = self.registry.remove(file)?;
        self.disk.free(size);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use pagecache::PageCacheConfig;
    use storage_model::{units::MB, DeviceSpec, MemoryDevice};

    const MEM_BW: f64 = 1000.0 * 1e6;
    const DISK_BW: f64 = 100.0 * 1e6;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    fn cached_fs(sim: &Simulation, memory_mb: f64, disk_capacity: f64) -> CachedFileSystem {
        let ctx = sim.context();
        let memory = MemoryDevice::new(&ctx, DeviceSpec::symmetric(MEM_BW, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "disk0",
            DeviceSpec::symmetric(DISK_BW, 0.0, disk_capacity),
        );
        let mm = MemoryManager::new(
            &ctx,
            PageCacheConfig::with_memory(memory_mb * MB),
            memory,
            disk.clone(),
        );
        CachedFileSystem::new(IoController::new(&ctx, mm), disk)
    }

    #[test]
    fn cached_fs_read_write_and_cache_hit() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 10_000.0, f64::INFINITY);
        fs.create_file(&"input".into(), 500.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let cold = fs.read_file(&"input".into()).await.unwrap();
                let warm = fs.read_file(&"input".into()).await.unwrap();
                let write = fs.write_file(&"output".into(), 300.0 * MB).await.unwrap();
                (cold, warm, write)
            }
        });
        sim.run();
        let (cold, warm, write) = h.try_take_result().unwrap();
        approx(cold.bytes_from_disk, 500.0 * MB);
        approx(warm.bytes_from_cache, 500.0 * MB);
        approx(write.bytes_to_cache, 300.0 * MB);
        assert!(warm.duration < cold.duration);
        assert!(fs.registry().exists(&"output".into()));
        approx(fs.disk().used(), 800.0 * MB);
    }

    #[test]
    fn cached_fs_missing_file_and_delete() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 1_000.0, f64::INFINITY);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_file(&"nope".into()).await }
        });
        sim.run();
        assert!(matches!(
            h.try_take_result().unwrap(),
            Err(FsError::FileNotFound(_))
        ));

        fs.create_file(&"f".into(), 100.0 * MB).unwrap();
        fs.memory_manager().add_to_cache(&"f".into(), 100.0 * MB);
        fs.delete_file(&"f".into()).unwrap();
        approx(fs.disk().used(), 0.0);
        approx(fs.memory_manager().cached(), 0.0);
        assert!(fs.delete_file(&"f".into()).is_err());
    }

    #[test]
    fn cached_fs_overwrite_frees_old_space() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 10_000.0, 1_000.0 * MB);
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                fs.write_file(&"f".into(), 800.0 * MB).await.unwrap();
                // Overwriting with a smaller file must free the old allocation
                // first, otherwise this would exceed the 1 GB disk.
                fs.write_file(&"f".into(), 600.0 * MB).await.unwrap();
            }
        });
        sim.run();
        assert!(h.is_finished());
        approx(fs.disk().used(), 600.0 * MB);
    }

    #[test]
    fn cached_fs_disk_full() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 1_000.0, 100.0 * MB);
        assert!(matches!(
            fs.create_file(&"big".into(), 200.0 * MB),
            Err(FsError::DiskFull(_))
        ));
    }

    #[test]
    fn cached_fs_range_ops_and_fsync() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 10_000.0, f64::INFINITY);
        fs.create_file(&"f".into(), 500.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                // Whole read, then a partial re-read: full cache hit.
                fs.read_file(&"f".into()).await.unwrap();
                let partial = fs
                    .read_range(&"f".into(), 100.0 * MB, 200.0 * MB)
                    .await
                    .unwrap();
                // A range write extends the file and dirties the cache.
                let w = fs
                    .write_range(&"g".into(), 100.0 * MB, 50.0 * MB)
                    .await
                    .unwrap();
                let fsync = fs.fsync(&"g".into()).await.unwrap();
                let fsync_again = fs.fsync(&"g".into()).await.unwrap();
                (partial, w, fsync, fsync_again)
            }
        });
        sim.run();
        let (partial, w, fsync, fsync_again) = h.try_take_result().unwrap();
        approx(partial.bytes_from_cache, 200.0 * MB);
        approx(partial.bytes_from_disk, 0.0);
        approx(w.bytes_to_cache, 50.0 * MB);
        assert_eq!(fs.registry().size(&"g".into()).unwrap(), 150.0 * MB);
        approx(fs.disk().used(), 650.0 * MB);
        approx(fsync.bytes_to_disk, 50.0 * MB);
        approx(fsync_again.bytes_to_disk, 0.0);
        approx(fs.memory_manager().dirty(), 0.0);
    }

    #[test]
    fn cached_fs_range_read_clamps_to_file() {
        let sim = Simulation::new();
        let fs = cached_fs(&sim, 10_000.0, f64::INFINITY);
        fs.create_file(&"f".into(), 100.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let tail = fs
                    .read_range(&"f".into(), 80.0 * MB, f64::INFINITY)
                    .await
                    .unwrap();
                let beyond = fs
                    .read_range(&"f".into(), 200.0 * MB, 10.0 * MB)
                    .await
                    .unwrap();
                (tail, beyond)
            }
        });
        sim.run();
        let (tail, beyond) = h.try_take_result().unwrap();
        approx(tail.bytes_from_disk, 20.0 * MB);
        assert_eq!(beyond.total_bytes(), 0.0);
    }

    #[test]
    fn direct_fs_reads_and_writes_at_disk_bandwidth() {
        let sim = Simulation::new();
        let ctx = sim.context();
        let disk = Disk::new(
            &ctx,
            "d0",
            DeviceSpec::symmetric(DISK_BW, 0.0, f64::INFINITY),
        );
        let fs = DirectFileSystem::new(&ctx, disk);
        fs.create_file(&"input".into(), 500.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let r1 = fs.read_file(&"input".into()).await.unwrap();
                // A second read is just as slow: no cache.
                let r2 = fs.read_file(&"input".into()).await.unwrap();
                let w = fs.write_file(&"out".into(), 200.0 * MB).await.unwrap();
                (r1, r2, w)
            }
        });
        sim.run();
        let (r1, r2, w) = h.try_take_result().unwrap();
        approx(r1.duration, 5.0);
        approx(r2.duration, 5.0);
        approx(r1.bytes_from_disk, 500.0 * MB);
        approx(w.duration, 2.0);
        approx(w.bytes_to_disk, 200.0 * MB);
        fs.delete_file(&"out".into()).unwrap();
        approx(fs.disk().used(), 500.0 * MB);
        assert!(matches!(
            fs.delete_file(&"missing".into()),
            Err(FsError::FileNotFound(_))
        ));
    }
}
