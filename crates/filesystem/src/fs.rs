//! A unified filesystem façade over the three `simfs` back-ends, for users
//! driving the filesystems directly (the `workflow` layer now dispatches
//! through its own `IoBackend` trait instead, which also covers the kernel
//! emulator and the cacheless NFS mount).

use pagecache::{FileId, IoOpStats, MemoryManager};

use crate::error::FsError;
use crate::local::{CachedFileSystem, DirectFileSystem};
use crate::nfs::NfsFileSystem;
use crate::registry::FileRegistry;

/// Any of the simulated filesystems.
#[derive(Clone)]
pub enum FileSystem {
    /// Local filesystem with page caching (WRENCH-cache behaviour).
    Cached(CachedFileSystem),
    /// Local filesystem without page caching (vanilla WRENCH behaviour).
    Direct(DirectFileSystem),
    /// NFS mount (client read cache, writethrough server).
    Nfs(NfsFileSystem),
}

impl FileSystem {
    /// Registers a pre-existing file without simulating any I/O.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), FsError> {
        match self {
            FileSystem::Cached(fs) => fs.create_file(file, size),
            FileSystem::Direct(fs) => fs.create_file(file, size),
            FileSystem::Nfs(fs) => fs.create_file(file, size),
        }
    }

    /// Reads a whole file.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        match self {
            FileSystem::Cached(fs) => fs.read_file(file).await,
            FileSystem::Direct(fs) => fs.read_file(file).await,
            FileSystem::Nfs(fs) => fs.read_file(file).await,
        }
    }

    /// Writes (creates or overwrites) a file of `size` bytes.
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, FsError> {
        match self {
            FileSystem::Cached(fs) => fs.write_file(file, size).await,
            FileSystem::Direct(fs) => fs.write_file(file, size).await,
            FileSystem::Nfs(fs) => fs.write_file(file, size).await,
        }
    }

    /// Reads `len` bytes of `file` starting at `offset` (clamped to the
    /// file; `len = f64::INFINITY` reads to end of file).
    pub async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, FsError> {
        match self {
            FileSystem::Cached(fs) => fs.read_range(file, offset, len).await,
            FileSystem::Direct(fs) => fs.read_range(file, offset, len).await,
            FileSystem::Nfs(fs) => fs.read_range(file, offset, len).await,
        }
    }

    /// Writes `len` bytes at `offset`, creating or extending the file as
    /// needed (never shrinking it).
    pub async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, FsError> {
        match self {
            FileSystem::Cached(fs) => fs.write_range(file, offset, len).await,
            FileSystem::Direct(fs) => fs.write_range(file, offset, len).await,
            FileSystem::Nfs(fs) => fs.write_range(file, offset, len).await,
        }
    }

    /// Flushes the file's dirty cached data to stable storage (`fsync`).
    /// A no-op on the direct and NFS filesystems, whose writes are already
    /// synchronous/writethrough.
    pub async fn fsync(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        match self {
            FileSystem::Cached(fs) => fs.fsync(file).await,
            FileSystem::Direct(fs) => fs.fsync(file).await,
            FileSystem::Nfs(fs) => fs.fsync(file).await,
        }
    }

    /// Flushes all dirty cached data (`sync`). A no-op except on the cached
    /// local filesystem.
    pub async fn sync(&self) -> IoOpStats {
        match self {
            FileSystem::Cached(fs) => fs.sync().await,
            FileSystem::Direct(fs) => fs.sync().await,
            FileSystem::Nfs(fs) => fs.sync().await,
        }
    }

    /// Deletes a file.
    pub fn delete_file(&self, file: &FileId) -> Result<(), FsError> {
        match self {
            FileSystem::Cached(fs) => fs.delete_file(file),
            FileSystem::Direct(fs) => fs.delete_file(file),
            FileSystem::Nfs(fs) => fs.delete_file(file),
        }
    }

    /// The Memory Manager of the host running the application, when the
    /// filesystem has one (the cacheless filesystem does not model memory).
    pub fn memory_manager(&self) -> Option<&MemoryManager> {
        match self {
            FileSystem::Cached(fs) => Some(fs.memory_manager()),
            FileSystem::Direct(_) => None,
            FileSystem::Nfs(fs) => Some(fs.client_memory_manager()),
        }
    }

    /// The file registry of the filesystem.
    pub fn registry(&self) -> &FileRegistry {
        match self {
            FileSystem::Cached(fs) => fs.registry(),
            FileSystem::Direct(fs) => fs.registry(),
            FileSystem::Nfs(fs) => fs.registry(),
        }
    }

    /// Short label used in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            FileSystem::Cached(_) => "cached-local",
            FileSystem::Direct(_) => "direct-local",
            FileSystem::Nfs(_) => "nfs",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use pagecache::{IoController, PageCacheConfig};
    use storage_model::{units::MB, DeviceSpec, Disk, MemoryDevice};

    fn cached(sim: &Simulation) -> FileSystem {
        let ctx = sim.context();
        let memory =
            MemoryDevice::new(&ctx, DeviceSpec::symmetric(1000.0 * MB, 0.0, f64::INFINITY));
        let disk = Disk::new(
            &ctx,
            "d",
            DeviceSpec::symmetric(100.0 * MB, 0.0, f64::INFINITY),
        );
        let mm = MemoryManager::new(
            &ctx,
            PageCacheConfig::with_memory(4000.0 * MB),
            memory,
            disk.clone(),
        );
        FileSystem::Cached(CachedFileSystem::new(IoController::new(&ctx, mm), disk))
    }

    fn direct(sim: &Simulation) -> FileSystem {
        let ctx = sim.context();
        let disk = Disk::new(
            &ctx,
            "d",
            DeviceSpec::symmetric(100.0 * MB, 0.0, f64::INFINITY),
        );
        FileSystem::Direct(DirectFileSystem::new(&ctx, disk))
    }

    #[test]
    fn facade_dispatches_to_cached_backend() {
        let sim = Simulation::new();
        let fs = cached(&sim);
        assert_eq!(fs.kind(), "cached-local");
        assert!(fs.memory_manager().is_some());
        fs.create_file(&"f".into(), 100.0 * MB).unwrap();
        assert!(fs.registry().exists(&"f".into()));
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let r = fs.read_file(&"f".into()).await.unwrap();
                let w = fs.write_file(&"g".into(), 50.0 * MB).await.unwrap();
                (r, w)
            }
        });
        sim.run();
        let (r, w) = h.try_take_result().unwrap();
        assert!(r.bytes_from_disk > 0.0);
        assert!(w.bytes_to_cache > 0.0);
        fs.delete_file(&"g".into()).unwrap();
        assert!(!fs.registry().exists(&"g".into()));
    }

    #[test]
    fn facade_forwards_range_ops_and_fsync() {
        let sim = Simulation::new();
        let fs = cached(&sim);
        fs.create_file(&"f".into(), 100.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                let tail = fs
                    .read_range(&"f".into(), 60.0 * MB, f64::INFINITY)
                    .await
                    .unwrap();
                let w = fs
                    .write_range(&"g".into(), 10.0 * MB, 20.0 * MB)
                    .await
                    .unwrap();
                let fsync = fs.fsync(&"g".into()).await.unwrap();
                let sync = fs.sync().await;
                (tail, w, fsync, sync)
            }
        });
        sim.run();
        let (tail, w, fsync, sync) = h.try_take_result().unwrap();
        assert!((tail.bytes_from_disk - 40.0 * MB).abs() < 1.0);
        assert!((w.bytes_to_cache - 20.0 * MB).abs() < 1.0);
        assert!((fsync.bytes_to_disk - 20.0 * MB).abs() < 1.0);
        assert_eq!(sync.bytes_to_disk, 0.0); // fsync already cleaned everything
        assert!(fs.registry().size(&"g".into()).unwrap() == 30.0 * MB);
    }

    #[test]
    fn facade_dispatches_to_direct_backend() {
        let sim = Simulation::new();
        let fs = direct(&sim);
        assert_eq!(fs.kind(), "direct-local");
        assert!(fs.memory_manager().is_none());
        fs.create_file(&"f".into(), 100.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_file(&"f".into()).await.unwrap() }
        });
        sim.run();
        let r = h.try_take_result().unwrap();
        assert_eq!(r.bytes_from_cache, 0.0);
        assert!(r.bytes_from_disk > 0.0);
    }
}
