//! # `simfs` — simulated filesystems
//!
//! Filesystem-level abstractions on top of the [`pagecache`] model and the
//! [`storage_model`] devices:
//!
//! * [`CachedFileSystem`] — a local filesystem whose I/O goes through the
//!   simulated Linux page cache (the paper's WRENCH-cache behaviour);
//! * [`DirectFileSystem`] — a local filesystem that always hits the disk
//!   (the cacheless behaviour of vanilla WRENCH, used as the baseline);
//! * [`NfsFileSystem`] / [`NfsServer`] — a network filesystem with a client
//!   read cache and a writethrough server cache (the paper's Exp 3 setup);
//! * [`FileSystem`] — an enum façade so direct `simfs` users can drive any
//!   of the three with the same code (the workflow layer dispatches through
//!   its own `IoBackend` trait instead).

#![warn(missing_docs)]

mod error;
mod fs;
mod local;
mod nfs;
mod registry;

pub use error::FsError;
pub use fs::FileSystem;
pub use local::{extend_for_write, CachedFileSystem, DirectFileSystem};
pub use nfs::{NfsFileSystem, NfsServer};
pub use registry::FileRegistry;
