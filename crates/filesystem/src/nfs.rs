//! NFS model: a client host accessing files stored on a remote server over a
//! network link (paper Exp 3).
//!
//! The configuration follows §III-D of the paper, which mirrors common HPC
//! deployments:
//!
//! * there is **no client write cache** — writes travel over the network and
//!   are written through on the server;
//! * the **server cache is writethrough**: written data is persisted to the
//!   server disk synchronously but stays in the server's page cache, so later
//!   reads can hit it;
//! * **read caches are enabled on both sides**: data read by the client is
//!   added to the client's page cache, and data read from the server disk is
//!   added to the server's page cache.

use des::SimContext;
use pagecache::{FileId, IoOpStats, MemoryManager, DEFAULT_CHUNK_SIZE, EPSILON};
use storage_model::{Disk, NetworkLink};

use crate::error::FsError;
use crate::local::extend_for_write;
use crate::registry::FileRegistry;

/// The NFS server: a remote host with a disk and a (writethrough) page cache.
#[derive(Clone)]
pub struct NfsServer {
    mm: MemoryManager,
    disk: Disk,
}

impl NfsServer {
    /// Creates a server from its Memory Manager (normally configured in
    /// writethrough mode) and its disk.
    pub fn new(mm: MemoryManager, disk: Disk) -> Self {
        NfsServer { mm, disk }
    }

    /// The server's Memory Manager.
    pub fn memory_manager(&self) -> &MemoryManager {
        &self.mm
    }

    /// The server's disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Serves `amount` bytes of a read of `file` (whose full size is
    /// `file_size`): data cached on the server is read from memory, the rest
    /// from the server disk (and added to the server read cache). Returns
    /// `(from_disk, from_cache)`.
    pub async fn serve_read(&self, file: &FileId, file_size: f64, amount: f64) -> (f64, f64) {
        if amount <= EPSILON {
            return (0.0, 0.0);
        }
        let cached = self.mm.cached_amount(file);
        let uncached = (file_size - cached).max(0.0);
        let from_disk = amount.min(uncached);
        let from_cache = amount - from_disk;
        if from_disk > EPSILON {
            self.mm.evict(from_disk - self.mm.free_memory(), Some(file));
            let still_missing = from_disk - self.mm.free_memory();
            if still_missing > EPSILON {
                self.mm.evict(still_missing, None);
            }
            self.disk.read(from_disk).await;
            self.mm.add_to_cache(file, from_disk);
        }
        if from_cache > EPSILON {
            self.mm.read_from_cache(file, from_cache).await;
        }
        (from_disk, from_cache)
    }

    /// Serves a writethrough write of `amount` bytes: synchronous disk write,
    /// then the data is kept in the server cache as clean data.
    pub async fn serve_write(&self, file: &FileId, amount: f64) {
        if amount <= EPSILON {
            return;
        }
        self.disk.write(amount).await;
        self.mm.evict(amount - self.mm.free_memory(), None);
        let to_cache = amount.min(self.mm.free_memory());
        if to_cache > EPSILON {
            self.mm.add_to_cache(file, to_cache);
        }
    }
}

/// An NFS-mounted filesystem as seen from the client host.
#[derive(Clone)]
pub struct NfsFileSystem {
    ctx: SimContext,
    link: NetworkLink,
    server: NfsServer,
    client_mm: MemoryManager,
    registry: FileRegistry,
    chunk_size: f64,
}

impl NfsFileSystem {
    /// Creates an NFS mount: `client_mm` is the client's Memory Manager (used
    /// only as a read cache), `link` the network between client and server.
    pub fn new(
        ctx: &SimContext,
        client_mm: MemoryManager,
        link: NetworkLink,
        server: NfsServer,
    ) -> Self {
        NfsFileSystem {
            ctx: ctx.clone(),
            link,
            server,
            client_mm,
            registry: FileRegistry::new(),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Overrides the chunk size used for network requests.
    pub fn with_chunk_size(mut self, chunk_size: f64) -> Self {
        assert!(chunk_size > 0.0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// The client-side Memory Manager (read cache and anonymous memory).
    pub fn client_memory_manager(&self) -> &MemoryManager {
        &self.client_mm
    }

    /// The server.
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// The network link.
    pub fn link(&self) -> &NetworkLink {
        &self.link
    }

    /// The file registry of the mount.
    pub fn registry(&self) -> &FileRegistry {
        &self.registry
    }

    /// Registers a pre-existing file on the server without simulating I/O.
    pub fn create_file(&self, file: &FileId, size: f64) -> Result<(), FsError> {
        self.server.disk.allocate(size)?;
        self.registry.create(file, size)
    }

    /// Deletes a file: releases server disk space and both caches.
    pub fn delete_file(&self, file: &FileId) -> Result<(), FsError> {
        let size = self.registry.remove(file)?;
        self.server.disk.free(size);
        self.server.mm.invalidate_file(file);
        self.client_mm.invalidate_file(file);
        Ok(())
    }

    /// Reads a whole file over NFS. Client-cached data is read from client
    /// memory; the rest is served by the server (from its cache or disk) and
    /// travels over the network, after which it enters the client read cache.
    /// A corollary of [`NfsFileSystem::read_range`] over `[0, size)`.
    pub async fn read_file(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        self.read_range(file, 0.0, f64::INFINITY).await
    }

    /// Reads `len` bytes at `offset` over NFS. Both caches are amount-based
    /// (macroscopic model), so a partial re-read is served client-side for up
    /// to `min(len, client_cached)` bytes.
    pub async fn read_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, FsError> {
        let size = self.registry.size(file)?;
        let (_start, amount) = pagecache::clamp_io_range(offset, len, size);
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();
        let mut remaining = amount;
        while remaining > EPSILON {
            let chunk = remaining.min(self.chunk_size);
            let client_cached = self.client_mm.cached_amount(file);
            let uncached = (size - client_cached).max(0.0);
            let from_remote = chunk.min(uncached);
            let from_client_cache = chunk - from_remote;

            // Make room on the client for the anonymous copy plus the newly
            // cached data (the client cache only holds clean data, so eviction
            // is enough).
            let required = chunk + from_remote;
            self.client_mm
                .evict(required - self.client_mm.free_memory(), Some(file));
            let still_missing = required - self.client_mm.free_memory();
            if still_missing > EPSILON {
                self.client_mm.evict(still_missing, None);
            }

            if from_remote > EPSILON {
                let (from_disk, from_server_cache) =
                    self.server.serve_read(file, size, from_remote).await;
                self.link.transfer(from_remote).await;
                self.client_mm.add_to_cache(file, from_remote);
                stats.bytes_from_disk += from_disk;
                stats.bytes_from_cache += from_server_cache;
                stats.bytes_to_cache += from_remote;
            }
            if from_client_cache > EPSILON {
                let read = self
                    .client_mm
                    .read_from_cache(file, from_client_cache)
                    .await;
                stats.bytes_from_cache += read;
            }
            self.client_mm.use_anonymous_memory(chunk);
            remaining -= chunk;
        }
        stats.duration = self.ctx.now().duration_since(start);
        Ok(stats)
    }

    /// Writes a whole file over NFS: data travels over the network and is
    /// written through on the server (no client write cache). Truncate
    /// semantics: the old registration is replaced.
    pub async fn write_file(&self, file: &FileId, size: f64) -> Result<IoOpStats, FsError> {
        if !size.is_finite() {
            return Err(FsError::InvalidRange {
                offset: 0.0,
                len: size,
            });
        }
        if let Some(old) = self.registry.create_or_replace(file, size) {
            self.server.disk.free(old);
        }
        self.server.disk.allocate(size)?;
        Ok(self.write_amount(file, size).await)
    }

    /// Writes `len` bytes at `offset` over NFS, creating the file or
    /// extending it to `offset + len` as needed (never shrinking it).
    pub async fn write_range(
        &self,
        file: &FileId,
        offset: f64,
        len: f64,
    ) -> Result<IoOpStats, FsError> {
        let (_offset, len) =
            extend_for_write(&self.registry, &self.server.disk, file, offset, len)?;
        Ok(self.write_amount(file, len).await)
    }

    async fn write_amount(&self, file: &FileId, amount: f64) -> IoOpStats {
        let start = self.ctx.now();
        let mut stats = IoOpStats::default();
        let mut remaining = amount;
        while remaining > EPSILON {
            let chunk = remaining.min(self.chunk_size);
            self.link.transfer(chunk).await;
            self.server.serve_write(file, chunk).await;
            stats.bytes_to_disk += chunk;
            remaining -= chunk;
        }
        stats.duration = self.ctx.now().duration_since(start);
        stats
    }

    /// `fsync` over this NFS mount is a no-op: there is no client write
    /// cache and the server cache is writethrough, so every written byte is
    /// already persistent on the server disk when the write returns.
    pub async fn fsync(&self, file: &FileId) -> Result<IoOpStats, FsError> {
        self.registry.size(file)?;
        Ok(IoOpStats::default())
    }

    /// `sync` is likewise a no-op on this writethrough mount.
    pub async fn sync(&self) -> IoOpStats {
        IoOpStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::Simulation;
    use pagecache::PageCacheConfig;
    use storage_model::{units::MB, DeviceSpec, MemoryDevice};

    const MEM_BW: f64 = 1000.0 * 1e6;
    const DISK_BW: f64 = 100.0 * 1e6;
    const NET_BW: f64 = 500.0 * 1e6;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() < 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    fn setup(client_mem_mb: f64, server_mem_mb: f64) -> (Simulation, NfsFileSystem) {
        let sim = Simulation::new();
        let ctx = sim.context();
        let client_memory =
            MemoryDevice::new(&ctx, DeviceSpec::symmetric(MEM_BW, 0.0, f64::INFINITY));
        // The client never flushes (read cache only); its "disk" is unused but
        // required by the MemoryManager constructor.
        let client_disk = Disk::new(
            &ctx,
            "client-disk",
            DeviceSpec::symmetric(DISK_BW, 0.0, f64::INFINITY),
        );
        let client_mm = MemoryManager::new(
            &ctx,
            PageCacheConfig::with_memory(client_mem_mb * MB),
            client_memory,
            client_disk,
        );
        let server_memory =
            MemoryDevice::new(&ctx, DeviceSpec::symmetric(MEM_BW, 0.0, f64::INFINITY));
        let server_disk = Disk::new(
            &ctx,
            "server-disk",
            DeviceSpec::symmetric(DISK_BW, 0.0, f64::INFINITY),
        );
        let server_mm = MemoryManager::new(
            &ctx,
            PageCacheConfig::with_memory(server_mem_mb * MB).writethrough(),
            server_memory,
            server_disk.clone(),
        );
        let server = NfsServer::new(server_mm, server_disk);
        let link = NetworkLink::new(&ctx, "eth0", NET_BW, 0.0);
        let fs = NfsFileSystem::new(&ctx, client_mm, link, server);
        (sim, fs)
    }

    #[test]
    fn cold_read_hits_server_disk_and_network() {
        let (sim, fs) = setup(10_000.0, 10_000.0);
        fs.create_file(&"f".into(), 500.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_file(&"f".into()).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_from_disk, 500.0 * MB);
        // server disk (5 s) + network (1 s); chunked sequentially.
        approx(stats.duration, 6.0);
        // Both caches now hold the file.
        approx(
            fs.client_memory_manager().cached_amount(&"f".into()),
            500.0 * MB,
        );
        approx(
            fs.server().memory_manager().cached_amount(&"f".into()),
            500.0 * MB,
        );
    }

    #[test]
    fn second_read_hits_client_cache_without_network() {
        let (sim, fs) = setup(10_000.0, 10_000.0);
        fs.create_file(&"f".into(), 500.0 * MB).unwrap();
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                fs.read_file(&"f".into()).await.unwrap();
                let net_before = fs.link().channel().total_bytes();
                let warm = fs.read_file(&"f".into()).await.unwrap();
                (warm, fs.link().channel().total_bytes() - net_before)
            }
        });
        sim.run();
        let (warm, net_bytes) = h.try_take_result().unwrap();
        approx(warm.bytes_from_cache, 500.0 * MB);
        approx(net_bytes, 0.0);
        approx(warm.duration, 0.5); // client memory bandwidth only
    }

    #[test]
    fn write_is_writethrough_and_populates_server_cache_only() {
        let (sim, fs) = setup(10_000.0, 10_000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.write_file(&"out".into(), 300.0 * MB).await.unwrap() }
        });
        sim.run();
        let stats = h.try_take_result().unwrap();
        approx(stats.bytes_to_disk, 300.0 * MB);
        // network (0.6 s) + server disk (3 s), sequential per chunk.
        approx(stats.duration, 3.6);
        // No dirty data anywhere; no client cache for writes.
        approx(fs.server().memory_manager().dirty(), 0.0);
        approx(
            fs.server().memory_manager().cached_amount(&"out".into()),
            300.0 * MB,
        );
        approx(fs.client_memory_manager().cached_amount(&"out".into()), 0.0);
        approx(fs.server().disk().used(), 300.0 * MB);
    }

    #[test]
    fn read_after_write_hits_server_cache_not_disk() {
        let (sim, fs) = setup(10_000.0, 10_000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move {
                fs.write_file(&"out".into(), 300.0 * MB).await.unwrap();
                let disk_before = fs.server().disk().total_bytes_read();
                let r = fs.read_file(&"out".into()).await.unwrap();
                (r, fs.server().disk().total_bytes_read() - disk_before)
            }
        });
        sim.run();
        let (r, disk_read) = h.try_take_result().unwrap();
        approx(disk_read, 0.0);
        approx(r.bytes_from_cache, 300.0 * MB);
        approx(r.bytes_from_disk, 0.0);
    }

    #[test]
    fn missing_file_and_delete() {
        let (sim, fs) = setup(1_000.0, 1_000.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.read_file(&"missing".into()).await }
        });
        sim.run();
        assert!(matches!(
            h.try_take_result().unwrap(),
            Err(FsError::FileNotFound(_))
        ));
        fs.create_file(&"f".into(), 100.0 * MB).unwrap();
        fs.delete_file(&"f".into()).unwrap();
        approx(fs.server().disk().used(), 0.0);
        assert!(fs.delete_file(&"f".into()).is_err());
    }

    #[test]
    fn small_server_memory_limits_server_cache() {
        // Server has 200 MB of RAM; a 500 MB file cannot be fully cached.
        let (sim, fs) = setup(10_000.0, 200.0);
        let h = sim.spawn({
            let fs = fs.clone();
            async move { fs.write_file(&"big".into(), 500.0 * MB).await.unwrap() }
        });
        sim.run();
        assert!(h.is_finished());
        assert!(fs.server().memory_manager().cached() <= 200.0 * MB + 1.0);
        fs.server().memory_manager().check_invariants().unwrap();
    }
}
