//! File metadata registry shared by all handles to one filesystem.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use pagecache::FileId;

use crate::error::FsError;

/// Size bookkeeping for the files of one filesystem.
#[derive(Clone, Default)]
pub struct FileRegistry {
    files: Rc<RefCell<BTreeMap<FileId, f64>>>,
}

impl FileRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a file with the given size. Fails if it already exists.
    pub fn create(&self, file: &FileId, size: f64) -> Result<(), FsError> {
        let mut files = self.files.borrow_mut();
        if files.contains_key(file) {
            return Err(FsError::AlreadyExists(file.clone()));
        }
        files.insert(file.clone(), size.max(0.0));
        Ok(())
    }

    /// Registers a file, or replaces its size if it already exists. Returns
    /// the previous size, if any.
    pub fn create_or_replace(&self, file: &FileId, size: f64) -> Option<f64> {
        self.files.borrow_mut().insert(file.clone(), size.max(0.0))
    }

    /// Size of a file.
    pub fn size(&self, file: &FileId) -> Result<f64, FsError> {
        self.files
            .borrow()
            .get(file)
            .copied()
            .ok_or_else(|| FsError::FileNotFound(file.clone()))
    }

    /// Whether the file exists.
    pub fn exists(&self, file: &FileId) -> bool {
        self.files.borrow().contains_key(file)
    }

    /// Removes a file, returning its size.
    pub fn remove(&self, file: &FileId) -> Result<f64, FsError> {
        self.files
            .borrow_mut()
            .remove(file)
            .ok_or_else(|| FsError::FileNotFound(file.clone()))
    }

    /// Names and sizes of all registered files.
    pub fn list(&self) -> Vec<(FileId, f64)> {
        self.files
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Total bytes registered.
    pub fn total_bytes(&self) -> f64 {
        self.files.borrow().values().sum()
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.borrow().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.files.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_remove() {
        let reg = FileRegistry::new();
        assert!(reg.is_empty());
        reg.create(&"a".into(), 100.0).unwrap();
        assert_eq!(reg.size(&"a".into()).unwrap(), 100.0);
        assert!(reg.exists(&"a".into()));
        assert!(!reg.exists(&"b".into()));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.total_bytes(), 100.0);
        assert_eq!(reg.remove(&"a".into()).unwrap(), 100.0);
        assert!(reg.is_empty());
    }

    #[test]
    fn duplicate_create_fails_but_replace_succeeds() {
        let reg = FileRegistry::new();
        reg.create(&"a".into(), 100.0).unwrap();
        assert!(matches!(
            reg.create(&"a".into(), 50.0),
            Err(FsError::AlreadyExists(_))
        ));
        assert_eq!(reg.create_or_replace(&"a".into(), 50.0), Some(100.0));
        assert_eq!(reg.size(&"a".into()).unwrap(), 50.0);
    }

    #[test]
    fn missing_file_errors() {
        let reg = FileRegistry::new();
        assert!(matches!(
            reg.size(&"missing".into()),
            Err(FsError::FileNotFound(_))
        ));
        assert!(matches!(
            reg.remove(&"missing".into()),
            Err(FsError::FileNotFound(_))
        ));
    }

    #[test]
    fn negative_sizes_are_clamped() {
        let reg = FileRegistry::new();
        reg.create(&"a".into(), -5.0).unwrap();
        assert_eq!(reg.size(&"a".into()).unwrap(), 0.0);
    }

    #[test]
    fn handles_share_state() {
        let reg = FileRegistry::new();
        let reg2 = reg.clone();
        reg.create(&"a".into(), 10.0).unwrap();
        assert!(reg2.exists(&"a".into()));
        assert_eq!(reg2.list(), vec![("a".into(), 10.0)]);
    }
}
